//! Integration tests pinning the paper's quantitative anchor points —
//! every number the paper states in prose is checked here against the
//! implementation.

use frapp::baselines::{CutAndPaste, Mask};
use frapp::core::perturb::GammaDiagonal;
use frapp::core::privacy::{worst_case_posterior, PrivacyRequirement, RandomizedPosterior};
use frapp::linalg::structured::UniformDiagonal;

fn assert_close(a: f64, b: f64, tol: f64) {
    assert!((a - b).abs() <= tol, "expected {b}, got {a}");
}

/// Section 7: "(rho1, rho2) = (5%, 50%) ... results in gamma = 19".
#[test]
fn paper_privacy_setting_yields_gamma_19() {
    assert_close(
        PrivacyRequirement::new(0.05, 0.50).unwrap().gamma(),
        19.0,
        1e-9,
    );
}

/// Section 4.1: "if P(Q(u)) = 5%, gamma = 19, the posterior probability
/// can be computed to be 50% for perturbation with the gamma-diagonal
/// matrix".
#[test]
fn paper_posterior_example() {
    assert_close(worst_case_posterior(0.05, 19.0), 0.50, 1e-9);
}

/// Section 4.1: "for P(Q(u)) = 5%, gamma = 19, alpha = gamma*x/2 ...
/// the posterior probability lies in the range [33%, 60%]".
#[test]
fn paper_randomized_posterior_range() {
    let n = 2000;
    let x = 1.0 / (19.0 + n as f64 - 1.0);
    let rp = RandomizedPosterior {
        prior: 0.05,
        gamma: 19.0,
        n,
        alpha: 19.0 * x / 2.0,
    };
    let (lo, hi) = rp.range();
    assert_close(lo, 0.33, 0.005);
    assert_close(hi, 0.60, 0.005);
}

/// Section 7: "Value of p turns out be 0.5610 and 0.5524 respectively
/// for CENSUS and HEALTH datasets for gamma = 19".
#[test]
fn paper_mask_parameters() {
    let census = Mask::from_gamma(&frapp::data::census::schema(), 19.0).unwrap();
    assert_close(census.p(), 0.5610, 5e-4);
    let health = Mask::from_gamma(&frapp::data::health::schema(), 19.0).unwrap();
    assert_close(health.p(), 0.5524, 5e-4);
}

/// Section 3: the gamma-diagonal condition number is
/// `(gamma + n - 1)/(gamma - 1)` = `1 + |S_U|/(gamma-1)` ... wait — the
/// paper writes it both ways; the exact closed form is the former,
/// which for CENSUS (n = 2000) gives ~112.
#[test]
fn paper_gamma_diagonal_condition_numbers() {
    let census = UniformDiagonal::gamma_diagonal(2000, 19.0);
    assert_close(census.condition_number(), (19.0 + 1999.0) / 18.0, 1e-9);
    let health = UniformDiagonal::gamma_diagonal(7500, 19.0);
    assert_close(health.condition_number(), (19.0 + 7499.0) / 18.0, 1e-9);
}

/// Section 7 / Figure 4: "the condition number for MASK and C&P
/// increase exponentially with increasing itemset length" while
/// "the condition number for DET-GD and RAN-GD is not only low but also
/// constant over all lengths of frequent itemsets".
#[test]
fn paper_condition_number_shapes() {
    let schema = frapp::data::census::schema();
    let gd = GammaDiagonal::new(&schema, 19.0).unwrap();
    let flat: Vec<f64> = (1..=6)
        .map(|_k| gd.as_uniform_diagonal().condition_number())
        .collect();
    for w in flat.windows(2) {
        assert_close(w[0], w[1], 1e-9);
    }
    // Marginal matrices share the same condition number (Equation 28).
    for attrs in [vec![0usize], vec![0, 1, 2], vec![0, 1, 2, 3, 4, 5]] {
        assert_close(
            gd.marginal_matrix(&attrs).condition_number(),
            flat[0],
            1e-6 * flat[0],
        );
    }

    let mask = Mask::from_gamma(&schema, 19.0).unwrap();
    let mask_conds: Vec<f64> = (1..=6).map(|k| mask.itemset_condition_number(k)).collect();
    for w in mask_conds.windows(2) {
        // Exponential: constant multiplicative factor 1/(2p-1) ~ 8.2.
        assert_close(w[1] / w[0], mask_conds[0], 1e-6 * mask_conds[0]);
    }
    // Paper: MASK condition numbers reach ~1e5 at the longest lengths.
    assert!(mask_conds[5] > 1e5, "mask cond at k=6: {}", mask_conds[5]);

    let cnp = CutAndPaste::paper_params(&schema).unwrap();
    let c3 = cnp.itemset_condition_number(3);
    let c4 = cnp.itemset_condition_number(4);
    // Paper: C&P condition numbers blow up (~1e7 scale and beyond);
    // that is why it "does not work after 3-length itemsets".
    assert!(c3 < 1e4, "c3 = {c3}");
    assert!(c4 > 1e6, "c4 = {c4}");
}

/// Section 3's optimality theorem, checked empirically on a small
/// domain: no symmetric Markov matrix within the gamma constraint beats
/// `(gamma + n - 1)/(gamma - 1)`.
#[test]
fn gamma_diagonal_is_condition_number_optimal_small_domain() {
    use frapp::linalg::{condition_number_2, Matrix};
    let n = 6;
    let gamma = 4.0;
    let optimal = (gamma + n as f64 - 1.0) / (gamma - 1.0);
    // A few hand-crafted feasible alternatives.
    let x = 1.0 / (gamma + n as f64 - 1.0);
    let candidates = vec![
        // Uniform matrix (gamma_eff = 1 < 4: feasible); singular.
        Matrix::filled(n, n, 1.0 / n as f64),
        // Damped gamma-diagonal (diag 3x instead of 4x, rescaled).
        {
            let d = 3.0;
            let xx = 1.0 / (d + n as f64 - 1.0);
            Matrix::from_fn(n, n, |i, j| if i == j { d * xx } else { xx })
        },
        // Two-level Toeplitz within the constraint.
        {
            let row = [4.0, 2.0, 1.0, 1.0, 1.0, 2.0];
            let s: f64 = row.iter().sum();
            Matrix::from_fn(n, n, |i, j| row[(i + n - j) % n] / s)
        },
    ];
    let _ = x;
    for m in candidates {
        assert!(m.is_column_stochastic(1e-9));
        assert!(m.amplification() <= gamma * (1.0 + 1e-9));
        let c = condition_number_2(&m).unwrap();
        assert!(
            c >= optimal * (1.0 - 1e-9),
            "feasible matrix beat the optimal bound: {c} < {optimal}"
        );
    }
}

/// The paper's Table 3 calibration targets: our synthetic datasets'
/// *expected* profiles land near the published counts.
#[test]
fn table_3_calibration_holds() {
    let census = frapp::data::census::model().frequent_profile(0.02);
    assert_eq!(census.len(), 6);
    let paper_census = [19usize, 102, 203, 165, 64, 10];
    for (ours, paper) in census.iter().zip(paper_census) {
        let tol = (paper as f64 * 0.25).max(4.0);
        assert!(
            (*ours as f64 - paper as f64).abs() <= tol,
            "census profile {census:?} vs paper {paper_census:?}"
        );
    }
    let health = frapp::data::health::model().frequent_profile(0.02);
    assert_eq!(health.len(), 7);
    let paper_health = [23usize, 123, 292, 361, 250, 86, 12];
    for (ours, paper) in health.iter().zip(paper_health) {
        let tol = (paper as f64 * 0.25).max(6.0);
        assert!(
            (*ours as f64 - paper as f64).abs() <= tol,
            "health profile {health:?} vs paper {paper_health:?}"
        );
    }
}

/// Section 5's efficiency claim: the dependent-column perturbation runs
/// in time proportional to the *sum* of the attribute cardinalities —
/// in particular, it must handle a 2^31-sized domain that the naive
/// CDF walk could never touch.
#[test]
fn section_5_sampler_handles_astronomical_domains() {
    use frapp::core::perturb::Perturber;
    use frapp::core::Schema;
    use rand::SeedableRng;
    // 31 boolean attributes: |S_U| = 2^31 (the paper's own example).
    let specs: Vec<(&str, u32)> = (0..31).map(|_| ("b", 2u32)).collect();
    let schema = Schema::new(specs).unwrap();
    assert_eq!(schema.domain_size(), 1usize << 31);
    let gd = GammaDiagonal::new(&schema, 19.0).unwrap();
    let record: Vec<u32> = (0..31).map(|i| i % 2).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    for _ in 0..100 {
        let v = gd.perturb_record_columnwise(&record, &mut rng).unwrap();
        assert_eq!(v.len(), 31);
        let v2 = gd.perturb_record(&record, &mut rng).unwrap();
        assert_eq!(v2.len(), 31);
    }
}
