//! Facade-level end-to-end check of the collection service: everything
//! reachable through `frapp::service`, over a real loopback connection,
//! cross-validated against the offline reconstruction path.

use frapp::core::perturb::{GammaDiagonal, Perturber};
use frapp::core::reconstruct::GammaDiagonalReconstructor;
use frapp::core::{Dataset, Schema};
use frapp::service::client::{Client, SessionSpec};
use frapp::service::session::ReconstructionMethod;
use frapp::service::{Mechanism, Server, ServiceConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn facade_service_roundtrip_matches_offline_path() {
    let schema = Schema::new(vec![("color", 5), ("size", 4), ("shape", 3)]).unwrap();
    let gamma = 12.0;

    // Pre-perturb client-side so the comparison is exact.
    let gd = GammaDiagonal::new(&schema, gamma).unwrap();
    let mut rng = StdRng::seed_from_u64(17);
    let originals: Vec<Vec<u32>> = (0..20_000)
        .map(|i| vec![(i % 5) as u32, ((i / 5) % 4) as u32, ((i / 20) % 3) as u32])
        .collect();
    let perturbed: Vec<Vec<u32>> = originals
        .iter()
        .map(|r| gd.perturb_record(r, &mut rng).unwrap())
        .collect();

    let handle = Server::bind(ServiceConfig::default())
        .unwrap()
        .spawn()
        .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    let spec = SessionSpec {
        schema: vec![("color".into(), 5), ("size".into(), 4), ("shape".into(), 3)],
        mechanism: Mechanism::Deterministic { gamma },
        shards: Some(3),
        seed: Some(1),
    };
    let session = client.create_session(&spec).unwrap();
    assert_eq!(client.list_sessions().unwrap(), vec![session]);

    for batch in perturbed.chunks(512) {
        client.submit_batch(session, batch, true).unwrap();
    }
    let stats = client.stats(session).unwrap();
    assert_eq!(stats.total, 20_000);
    assert_eq!(stats.per_shard.len(), 3);

    // Service reconstruction (closed form and cached LU) equals the
    // offline reconstructor on the same perturbed counts.
    let counts = Dataset::from_trusted(schema, perturbed).count_vector();
    let offline = GammaDiagonalReconstructor::new(&gd).reconstruct(&counts);
    for method in [
        ReconstructionMethod::ClosedForm,
        ReconstructionMethod::CachedLu,
    ] {
        let rec = client.reconstruct(session, method, false).unwrap();
        assert_eq!(rec.n, 20_000);
        for (s, o) in rec.estimates.iter().zip(&offline) {
            assert!(
                (s - o).abs() < 1e-6 * (1.0 + o.abs()),
                "{method:?}: {s} vs {o}"
            );
        }
    }

    // Second cached-LU query hits the session's factorization cache.
    let again = client
        .reconstruct(session, ReconstructionMethod::CachedLu, false)
        .unwrap();
    assert!(again.lu_cache_hit);

    assert!(client.close_session(session).unwrap());
    assert!(client.list_sessions().unwrap().is_empty());
    handle.shutdown().unwrap();
}
