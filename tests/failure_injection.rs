//! Failure-injection and misuse tests: what happens when the pipeline
//! is driven with wrong parameters, mismatched matrices or malformed
//! inputs. A production library must fail loudly on structural misuse
//! and degrade predictably on statistical misuse.

use frapp::core::perturb::{ExplicitMatrix, GammaDiagonal, Perturber, RandomizedGammaDiagonal};
use frapp::core::reconstruct::GammaDiagonalReconstructor;
use frapp::core::{Dataset, FrappError, Schema};
use frapp::linalg::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn schema() -> Schema {
    Schema::new(vec![("a", 3), ("b", 2)]).unwrap()
}

#[test]
fn structural_misuse_is_rejected_with_typed_errors() {
    let s = schema();
    // Out-of-domain record.
    let gd = GammaDiagonal::new(&s, 19.0).unwrap();
    let mut rng = StdRng::seed_from_u64(1);
    let err = gd.perturb_record(&[3, 0], &mut rng).unwrap_err();
    assert!(matches!(err, FrappError::InvalidRecord { .. }));

    // Invalid gamma values.
    for bad in [1.0, 0.0, -3.0, f64::NAN] {
        assert!(matches!(
            GammaDiagonal::new(&s, bad),
            Err(FrappError::InvalidParameter { name: "gamma", .. })
        ));
    }

    // Oversized randomization.
    assert!(RandomizedGammaDiagonal::new(&s, 19.0, 100.0).is_err());

    // Non-stochastic explicit matrix.
    let not_markov = Matrix::identity(6).scaled(0.9);
    assert!(ExplicitMatrix::new(&s, not_markov).is_err());

    // Dataset with a record violating the schema.
    assert!(Dataset::new(s, vec![vec![0, 5]]).is_err());
}

#[test]
fn reconstructing_with_wrong_gamma_biases_predictably() {
    // The miner must know the clients' true gamma; reconstructing with
    // a wrong one systematically distorts estimates. Inject the
    // mismatch and verify the direction: assuming a *smaller* gamma
    // (more perturbation than actually happened) over-corrects and
    // inflates heavy cells.
    let s = schema();
    let true_gd = GammaDiagonal::new(&s, 19.0).unwrap();
    let wrong_gd = GammaDiagonal::new(&s, 5.0).unwrap();

    let mut records = Vec::new();
    for i in 0..40_000usize {
        records.push(if i % 2 == 0 { vec![0, 0] } else { vec![2, 1] });
    }
    let ds = Dataset::new(s.clone(), records).unwrap();
    let mut rng = StdRng::seed_from_u64(2);
    let perturbed =
        Dataset::from_trusted(s, true_gd.perturb_dataset(ds.records(), &mut rng).unwrap());
    let y = perturbed.count_vector();

    let right = GammaDiagonalReconstructor::new(&true_gd).reconstruct(&y);
    let wrong = GammaDiagonalReconstructor::new(&wrong_gd).reconstruct(&y);
    // Correct reconstruction lands near 20,000 for cell [0,0] (index 0).
    assert!((right[0] - 20_000.0).abs() < 2_000.0, "right {}", right[0]);
    // Wrong reconstruction inflates the heavy cell well beyond the
    // truth (analytically ~31,700 for this configuration).
    assert!(
        wrong[0] > 28_000.0,
        "expected heavy inflation, got {}",
        wrong[0]
    );
}

#[test]
fn mismatched_alpha_assumption_is_harmless_for_reconstruction() {
    // RAN-GD's reconstruction uses only the *expected* matrix, so a
    // miner who mistakes the alpha value still reconstructs correctly —
    // one of the scheme's practical virtues. Verify estimates from
    // alpha = 0.2gx and alpha = 0.8gx data agree within noise when both
    // are reconstructed with the expected matrix. (Domain must be large
    // enough that alpha = 0.8gx keeps off-diagonals nonnegative.)
    let s = Schema::new(vec![("a", 10), ("b", 10)]).unwrap();
    let mut records = Vec::new();
    for i in 0..40_000usize {
        records.push(if i % 4 == 0 { vec![1, 1] } else { vec![0, 0] });
    }
    let ds = Dataset::new(s.clone(), records).unwrap();
    let gd = GammaDiagonal::new(&s, 19.0).unwrap();
    let reconstructor = GammaDiagonalReconstructor::new(&gd);
    let mut estimates = Vec::new();
    for (fraction, seed) in [(0.2, 3u64), (0.8, 4u64)] {
        let rgd = RandomizedGammaDiagonal::with_alpha_fraction(&s, 19.0, fraction).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let perturbed = Dataset::from_trusted(
            s.clone(),
            rgd.perturb_dataset(ds.records(), &mut rng).unwrap(),
        );
        estimates.push(reconstructor.reconstruct(&perturbed.count_vector()));
    }
    let cell = s.encode(&[1, 1]).unwrap();
    for est in &estimates {
        assert!(
            (est[cell] - 10_000.0).abs() < 1_500.0,
            "cell estimate {}",
            est[cell]
        );
    }
}

#[test]
fn csv_round_trip_rejects_corruption() {
    let s = schema();
    let ds = Dataset::new(s.clone(), vec![vec![0, 1], vec![2, 0]]).unwrap();
    let mut text = frapp::data::csv::to_csv(&ds);
    assert!(frapp::data::csv::from_csv(&s, &text).is_ok());
    // Corrupt a value beyond the domain.
    text = text.replace("2,0", "9,0");
    assert!(frapp::data::csv::from_csv(&s, &text).is_err());
    // Swap the header.
    let bad_header = text.replacen("a,b", "b,a", 1);
    assert!(frapp::data::csv::from_csv(&s, &bad_header).is_err());
}

#[test]
fn condensed_representations_cover_reconstructed_results() {
    // Maximal/closed extraction must work on reconstructed (noisy)
    // mining output, not just exact output.
    use frapp::mining::apriori::{apriori, AprioriParams};
    use frapp::mining::condense::{closed_itemsets, maximal_itemsets};
    use frapp::mining::estimators::GammaDiagonalSupport;

    let ds = frapp::data::census::census_like_n(10_000, 53);
    let gd = GammaDiagonal::new(ds.schema(), 19.0).unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let perturbed = Dataset::from_trusted(
        ds.schema().clone(),
        gd.perturb_dataset(ds.records(), &mut rng).unwrap(),
    );
    let est = GammaDiagonalSupport::new(&perturbed, &gd);
    let mined = apriori(
        &est,
        &AprioriParams {
            min_support: 0.05,
            max_length: 0,
            max_candidates: 100_000,
        },
    );
    let max = maximal_itemsets(&mined);
    let closed = closed_itemsets(&mined, 1e-9);
    assert!(!max.is_empty());
    assert!(closed.len() >= max.len());
    for (itemset, _) in mined.iter() {
        assert!(max.iter().any(|&(m, _)| m.contains(itemset)));
    }
}
