//! Property-based tests (proptest) over the workspace's core data
//! structures and invariants.

use frapp::baselines::{combinatorics, CutAndPaste, Mask};
use frapp::core::perturb::GammaDiagonal;
use frapp::core::reconstruct::{reconstruct_itemset_support, GammaDiagonalReconstructor};
use frapp::core::Schema;
use frapp::linalg::structured::UniformDiagonal;
use frapp::linalg::{lu, Matrix};
use frapp::mining::ItemSet;
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Strategy: a small random schema (1-5 attributes, cardinalities 2-6).
fn schema_strategy() -> impl Strategy<Value = Schema> {
    prop::collection::vec(2u32..=6, 1..=5).prop_map(|cards| {
        let specs: Vec<(&str, u32)> = cards.iter().map(|&c| ("a", c)).collect();
        Schema::new(specs).expect("valid cardinalities")
    })
}

proptest! {
    /// encode/decode is a bijection on the whole domain.
    #[test]
    fn schema_encode_decode_roundtrip(schema in schema_strategy()) {
        let mut seen = vec![false; schema.domain_size()];
        for (idx, seen_slot) in seen.iter_mut().enumerate() {
            let rec = schema.decode(idx);
            let back = schema.encode(&rec).expect("decoded record is valid");
            prop_assert_eq!(back, idx);
            prop_assert!(!*seen_slot);
            *seen_slot = true;
        }
    }

    /// Projections are consistent with full encoding: two records equal
    /// on the projected attributes project to the same index.
    #[test]
    fn schema_projection_consistency(
        schema in schema_strategy(),
        raw_idx in 0usize..10_000,
        mask in 0u8..32,
    ) {
        let idx = raw_idx % schema.domain_size();
        let rec = schema.decode(idx);
        let attrs: Vec<usize> =
            (0..schema.num_attributes()).filter(|&j| mask >> j & 1 == 1).collect();
        let proj = schema.encode_projection(&rec, &attrs);
        prop_assert!(proj < schema.subdomain_size(&attrs).max(1));
        // Changing a non-projected attribute must not change the index.
        if attrs.len() < schema.num_attributes() {
            let other = (0..schema.num_attributes()).find(|j| !attrs.contains(j)).unwrap();
            let mut rec2 = rec.clone();
            rec2[other] = (rec2[other] + 1) % schema.cardinality(other);
            prop_assert_eq!(schema.encode_projection(&rec2, &attrs), proj);
        }
    }

    /// The gamma-diagonal family: `A⁻¹ A x = x` for arbitrary vectors,
    /// sizes and gamma values.
    #[test]
    fn uniform_diagonal_inverse_roundtrip(
        n in 2usize..60,
        gamma in 1.01f64..200.0,
        seed in 0u64..1000,
    ) {
        let gd = UniformDiagonal::gamma_diagonal(n, gamma);
        prop_assert!(gd.is_markov(1e-9));
        let x: Vec<f64> = (0..n).map(|i| ((i as u64 * 2654435761 + seed) % 997) as f64).collect();
        let y = gd.mul_vec(&x).expect("matching length");
        let back = gd.solve(&y).expect("invertible");
        for (b, orig) in back.iter().zip(&x) {
            prop_assert!((b - orig).abs() < 1e-6 * (1.0 + orig.abs()));
        }
    }

    /// The closed-form reconstructor agrees with a dense LU solve for
    /// arbitrary count vectors.
    #[test]
    fn gamma_reconstructor_matches_lu(
        cards in prop::collection::vec(2u32..=4, 1..=3),
        gamma in 1.5f64..50.0,
        seed in 0u64..1000,
    ) {
        let specs: Vec<(&str, u32)> = cards.iter().map(|&c| ("a", c)).collect();
        let schema = Schema::new(specs).unwrap();
        let gd = GammaDiagonal::new(&schema, gamma).unwrap();
        let n = schema.domain_size();
        let y: Vec<f64> = (0..n).map(|i| ((i as u64 * 97 + seed * 31) % 500) as f64).collect();
        let closed = GammaDiagonalReconstructor::new(&gd).reconstruct(&y);
        let dense = gd.as_uniform_diagonal().to_dense();
        let solved = lu::solve(&dense, &y).unwrap();
        for (c, s) in closed.iter().zip(&solved) {
            prop_assert!((c - s).abs() < 1e-6 * (1.0 + s.abs()), "closed {c} vs lu {s}");
        }
    }

    /// The marginalized O(1) support formula agrees with solving the
    /// dense marginal matrix, for every cell of every subset.
    #[test]
    fn marginal_support_formula_matches_dense(
        gamma in 1.5f64..50.0,
        seed in 0u64..100,
    ) {
        let schema = Schema::new(vec![("a", 3), ("b", 2), ("c", 2)]).unwrap();
        let gd = GammaDiagonal::new(&schema, gamma).unwrap();
        let attrs = [0usize, 2];
        let n_cs = schema.subdomain_size(&attrs);
        // Random support distribution summing to 1.
        let mut sup: Vec<f64> =
            (0..n_cs).map(|i| 1.0 + ((i as u64 * 131 + seed) % 17) as f64).collect();
        let total: f64 = sup.iter().sum();
        for s in &mut sup { *s /= total; }
        let dense = gd.marginal_matrix(&attrs).to_dense();
        let solved = lu::solve(&dense, &sup).unwrap();
        for (cell, &sv) in sup.iter().enumerate() {
            let fast = reconstruct_itemset_support(sv, schema.domain_size(), n_cs, gamma);
            prop_assert!((fast - solved[cell]).abs() < 1e-8, "{fast} vs {}", solved[cell]);
        }
    }

    /// LU solves random diagonally-dominant systems to high accuracy.
    #[test]
    fn lu_solves_diagonally_dominant_systems(
        n in 1usize..20,
        seed in 0u64..1000,
    ) {
        let m = Matrix::from_fn(n, n, |i, j| {
            let v = ((i * 31 + j * 17 + seed as usize) % 13) as f64 / 13.0;
            if i == j { v + n as f64 } else { v }
        });
        let x: Vec<f64> = (0..n).map(|i| (i as f64) - (n as f64) / 2.0).collect();
        let b = m.mul_vec(&x).unwrap();
        let solved = lu::solve(&m, &b).unwrap();
        for (s, orig) in solved.iter().zip(&x) {
            prop_assert!((s - orig).abs() < 1e-8);
        }
    }

    /// MASK's Kronecker-factored reconstruction inverts the forward
    /// pattern map for arbitrary p and k.
    #[test]
    fn mask_pattern_reconstruction_inverts_forward(
        p in 0.55f64..0.95,
        k in 1usize..6,
        seed in 0u64..1000,
    ) {
        let schema = Schema::new(vec![("a", 2)]).unwrap();
        let mask = Mask::new(&schema, p).unwrap();
        let x: Vec<f64> =
            (0..(1usize << k)).map(|i| ((i as u64 * 37 + seed) % 100) as f64).collect();
        let forward = mask.itemset_matrix(k).mul_vec(&x).unwrap();
        let back = mask.reconstruct_patterns(&forward);
        for (b, orig) in back.iter().zip(&x) {
            prop_assert!((b - orig).abs() < 1e-6 * (1.0 + orig.abs()));
        }
    }

    /// C&P transition matrices are column-stochastic for arbitrary
    /// parameters.
    #[test]
    fn cnp_transition_matrices_are_stochastic(
        k_cutoff in 0usize..6,
        rho in 0.05f64..0.95,
        k in 1usize..6,
        m in 1usize..8,
    ) {
        let schema = Schema::new(vec![("a", 2), ("b", 2), ("c", 2)]).unwrap();
        let cnp = CutAndPaste::new(&schema, k_cutoff, rho).unwrap();
        let p = cnp.itemset_transition_matrix(k, m);
        prop_assert!(p.is_column_stochastic(1e-9), "k={k} m={m}: not stochastic");
    }

    /// Hypergeometric and binomial pmfs are distributions.
    #[test]
    fn combinatorics_pmfs_sum_to_one(
        m in 1usize..12,
        l_raw in 0usize..12,
        j_raw in 0usize..12,
        p in 0.0f64..1.0,
    ) {
        let l = l_raw % (m + 1);
        let j = j_raw % (m + 1);
        let hyp_total: f64 = (0..=j).map(|q| combinatorics::hypergeometric(q, m, l, j)).sum();
        prop_assert!((hyp_total - 1.0).abs() < 1e-9, "hyp total {hyp_total}");
        let bin_total: f64 = (0..=m).map(|s| combinatorics::binomial_pmf(s, m, p)).sum();
        prop_assert!((bin_total - 1.0).abs() < 1e-9, "bin total {bin_total}");
    }

    /// ItemSet behaves exactly like a BTreeSet<usize> model under
    /// union / intersection / difference / containment.
    #[test]
    fn itemset_matches_set_model(
        a_items in prop::collection::btree_set(0usize..64, 0..10),
        b_items in prop::collection::btree_set(0usize..64, 0..10),
    ) {
        let a = ItemSet::from_items(&a_items.iter().copied().collect::<Vec<_>>());
        let b = ItemSet::from_items(&b_items.iter().copied().collect::<Vec<_>>());
        let model_union: BTreeSet<usize> = a_items.union(&b_items).copied().collect();
        let model_inter: BTreeSet<usize> = a_items.intersection(&b_items).copied().collect();
        let model_diff: BTreeSet<usize> = a_items.difference(&b_items).copied().collect();
        prop_assert_eq!(a.union(b).to_vec(), model_union.into_iter().collect::<Vec<_>>());
        prop_assert_eq!(a.intersect(b).to_vec(), model_inter.into_iter().collect::<Vec<_>>());
        prop_assert_eq!(a.difference(b).to_vec(), model_diff.into_iter().collect::<Vec<_>>());
        prop_assert_eq!(a.contains(b), b_items.is_subset(&a_items));
        prop_assert_eq!(a.len(), a_items.len());
    }

    /// Dataset count vectors always sum to N and projections marginalise
    /// correctly.
    #[test]
    fn dataset_counts_are_consistent(
        schema in schema_strategy(),
        seeds in prop::collection::vec(0usize..10_000, 1..200),
    ) {
        let records: Vec<Vec<u32>> =
            seeds.iter().map(|&s| schema.decode(s % schema.domain_size())).collect();
        let n = records.len() as f64;
        let ds = frapp::core::Dataset::new(schema.clone(), records).unwrap();
        prop_assert!((ds.count_vector().iter().sum::<f64>() - n).abs() < 1e-9);
        for j in 0..schema.num_attributes() {
            let marg = ds.projected_counts(&[j]);
            prop_assert!((marg.iter().sum::<f64>() - n).abs() < 1e-9);
        }
    }
}

proptest! {
    /// SVD invariants on random diagonally-dominant matrices: U, V
    /// orthonormal, singular values sorted and nonnegative, and
    /// `U Σ Vᵀ` reassembles the input.
    #[test]
    fn svd_invariants_hold(
        n in 2usize..10,
        seed in 0u64..500,
    ) {
        use frapp::linalg::Svd;
        let m = Matrix::from_fn(n, n, |i, j| {
            let v = ((i * 37 + j * 61 + seed as usize) % 11) as f64 / 11.0 - 0.5;
            if i == j { v + n as f64 } else { v }
        });
        let svd = Svd::new(&m).expect("convergent");
        // Sorted, nonnegative spectrum.
        for w in svd.sigma.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
        prop_assert!(svd.sigma.iter().all(|&s| s >= 0.0));
        // Orthonormal factors.
        for f in [&svd.u, &svd.v] {
            let gram = f.transpose().mul_mat(f).expect("square");
            let diff = &gram - &Matrix::identity(n);
            prop_assert!(diff.max_abs() < 1e-9, "gram deviation {}", diff.max_abs());
        }
        // Reassembly.
        let back = svd.reconstruct();
        let diff = &back - &m;
        prop_assert!(diff.max_abs() < 1e-8 * (n as f64), "deviation {}", diff.max_abs());
    }

    /// Select-a-size transition matrices are column-stochastic for every
    /// family member and the cut-and-paste member matches CutAndPaste.
    #[test]
    fn select_a_size_invariants(
        keep_p in 0.05f64..0.95,
        rho in 0.05f64..0.95,
        k in 1usize..5,
    ) {
        use frapp::baselines::SelectASize;
        let schema = Schema::new(vec![("a", 2), ("b", 2), ("c", 2)]).unwrap();
        let binom = SelectASize::binomial_keeps(&schema, keep_p, rho).unwrap();
        prop_assert!(binom.itemset_transition_matrix(k).is_column_stochastic(1e-9));
        let sas_cnp = SelectASize::cut_and_paste(&schema, 3, rho).unwrap();
        let cnp = CutAndPaste::new(&schema, 3, rho).unwrap();
        let a = sas_cnp.itemset_transition_matrix(k);
        let b = cnp.itemset_transition_matrix(k, 3);
        let diff = &a - &b;
        prop_assert!(diff.max_abs() < 1e-12);
    }

    /// Gamma-diagonal perturbation followed by reconstruction is
    /// unbiased: the estimated support of any single-attribute itemset
    /// converges on the true support (tested at moderate N with a
    /// generous tolerance).
    #[test]
    fn gd_support_estimates_are_unbiased(
        seed in 0u64..30,
        heavy_value in 0u32..3,
    ) {
        use frapp::core::perturb::Perturber;
        use frapp::core::reconstruct::reconstruct_itemset_support;
        use rand::SeedableRng;
        let schema = Schema::new(vec![("a", 3), ("b", 2)]).unwrap();
        let records: Vec<Vec<u32>> = (0..20_000u32)
            .map(|i| if i % 5 < 3 { vec![heavy_value, 0] } else { vec![(i % 3), 1] })
            .collect();
        let ds = frapp::core::Dataset::new(schema.clone(), records).unwrap();
        let true_sup = ds.itemset_support(&[0], &[heavy_value]);
        let gd = GammaDiagonal::new(&schema, 19.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let perturbed = frapp::core::Dataset::from_trusted(
            schema.clone(),
            gd.perturb_dataset(ds.records(), &mut rng).unwrap(),
        );
        let sup_v = perturbed.itemset_support(&[0], &[heavy_value]);
        let est = reconstruct_itemset_support(sup_v, schema.domain_size(), 3, 19.0);
        prop_assert!((est - true_sup).abs() < 0.12, "est {est} vs true {true_sup}");
    }
}
