//! End-to-end integration tests spanning all workspace crates: generate
//! → perturb → mine → reconstruct → score, for every method.

use frapp::baselines::{CutAndPaste, Mask};
use frapp::core::perturb::{GammaDiagonal, Perturber, RandomizedGammaDiagonal};
use frapp::core::{Dataset, PrivacyRequirement};
use frapp::mining::apriori::{apriori, AprioriParams, FrequentItemsets};
use frapp::mining::estimators::{CnpSupport, ExactSupport, GammaDiagonalSupport, MaskSupport};
use frapp::mining::metrics::compare;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn params() -> AprioriParams {
    AprioriParams {
        min_support: 0.02,
        max_length: 0,
        max_candidates: 100_000,
    }
}

fn census(n: usize) -> Dataset {
    frapp::data::census::census_like_n(n, 11)
}

fn truth_of(ds: &Dataset) -> FrequentItemsets {
    apriori(&ExactSupport::from_dataset(ds), &params())
}

#[test]
fn det_gd_pipeline_recovers_most_short_itemsets() {
    let ds = census(20_000);
    let truth = truth_of(&ds);
    let gd = GammaDiagonal::from_requirement(ds.schema(), &PrivacyRequirement::paper_default());
    let mut rng = StdRng::seed_from_u64(1);
    let perturbed = Dataset::from_trusted(
        ds.schema().clone(),
        gd.perturb_dataset(ds.records(), &mut rng).unwrap(),
    );
    let est = GammaDiagonalSupport::new(&perturbed, &gd);
    let mined = apriori(&est, &params());
    let metrics = compare(&truth, &mined);
    // Short itemsets must be recovered reasonably: at gamma = 19 on 20k
    // records the singles' identification should be mostly right.
    let l1 = metrics.of_length(1).expect("singles present");
    assert!(l1.false_negatives <= 40.0, "sigma- {l1:?}");
    // And the mining must reach at least length 4.
    assert!(
        mined.max_length() >= 4,
        "profile {:?}",
        mined.length_profile()
    );
}

#[test]
fn ran_gd_is_close_to_det_gd() {
    // The paper's headline Section-4 result: randomization costs only a
    // marginal amount of accuracy. Compare total correct
    // identifications across lengths 1-3.
    let ds = census(20_000);
    let truth = truth_of(&ds);
    let schema = ds.schema();
    let gd = GammaDiagonal::new(schema, 19.0).unwrap();
    let rgd = RandomizedGammaDiagonal::with_alpha_fraction(schema, 19.0, 0.5).unwrap();

    let correct_fraction = |mined: &FrequentItemsets| -> f64 {
        let m = compare(&truth, mined);
        let (mut correct, mut total) = (0usize, 0usize);
        for lm in m.per_length.iter().filter(|lm| lm.length <= 3) {
            correct += lm.correct_count;
            total += lm.true_count;
        }
        correct as f64 / total as f64
    };

    let mut rng = StdRng::seed_from_u64(2);
    let det_perturbed = Dataset::from_trusted(
        schema.clone(),
        gd.perturb_dataset(ds.records(), &mut rng).unwrap(),
    );
    let det_mined = apriori(&GammaDiagonalSupport::new(&det_perturbed, &gd), &params());

    let ran_perturbed = Dataset::from_trusted(
        schema.clone(),
        rgd.perturb_dataset(ds.records(), &mut rng).unwrap(),
    );
    let ran_mined = apriori(
        &GammaDiagonalSupport::new(&ran_perturbed, rgd.expected()),
        &params(),
    );

    let det_frac = correct_fraction(&det_mined);
    let ran_frac = correct_fraction(&ran_mined);
    assert!(det_frac > 0.4, "det fraction {det_frac}");
    // "Marginally lower": allow a modest gap, not a collapse.
    assert!(
        ran_frac > det_frac - 0.25,
        "ran {ran_frac} vs det {det_frac}"
    );
}

#[test]
fn mask_finds_singles_but_fails_on_long_itemsets() {
    let ds = census(20_000);
    let truth = truth_of(&ds);
    let mask = Mask::from_gamma(ds.schema(), 19.0).unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let rows = mask.perturb_dataset(ds.records(), &mut rng).unwrap();
    let mined = apriori(&MaskSupport::new(&mask, &rows), &params());
    let metrics = compare(&truth, &mined);
    let l1 = metrics.of_length(1).expect("singles present");
    assert!(l1.false_negatives <= 25.0, "sigma- {l1:?}");
    // The paper: MASK finds nothing above length 4 on CENSUS.
    if let Some(l6) = metrics.of_length(6) {
        assert_eq!(
            l6.correct_count, 0,
            "MASK should not survive to length 6: {l6:?}"
        );
    }
}

#[test]
fn cnp_fails_beyond_length_three() {
    let ds = census(20_000);
    let truth = truth_of(&ds);
    let cnp = CutAndPaste::paper_params(ds.schema()).unwrap();
    let mut rng = StdRng::seed_from_u64(4);
    let rows = cnp.perturb_dataset(ds.records(), &mut rng).unwrap();
    let mined = apriori(&CnpSupport::new(&cnp, &rows), &params());
    let metrics = compare(&truth, &mined);
    // The paper: "C&P does not work after 3-length itemsets".
    for k in 5..=6 {
        if let Some(lm) = metrics.of_length(k) {
            assert!(
                lm.correct_count <= lm.true_count / 10,
                "C&P unexpectedly accurate at length {k}: {lm:?}"
            );
        }
    }
}

#[test]
fn gd_beats_baselines_on_long_itemsets() {
    // The paper's central comparative claim, as a single assertion:
    // at lengths >= 4, DET-GD correctly identifies more itemsets than
    // MASK and C&P.
    let ds = census(30_000);
    let truth = truth_of(&ds);
    let schema = ds.schema();
    let mut rng = StdRng::seed_from_u64(5);

    let gd = GammaDiagonal::new(schema, 19.0).unwrap();
    let gd_perturbed = Dataset::from_trusted(
        schema.clone(),
        gd.perturb_dataset(ds.records(), &mut rng).unwrap(),
    );
    let gd_mined = apriori(&GammaDiagonalSupport::new(&gd_perturbed, &gd), &params());

    let mask = Mask::from_gamma(schema, 19.0).unwrap();
    let mask_rows = mask.perturb_dataset(ds.records(), &mut rng).unwrap();
    let mask_mined = apriori(&MaskSupport::new(&mask, &mask_rows), &params());

    let cnp = CutAndPaste::paper_params(schema).unwrap();
    let cnp_rows = cnp.perturb_dataset(ds.records(), &mut rng).unwrap();
    let cnp_mined = apriori(&CnpSupport::new(&cnp, &cnp_rows), &params());

    let long_correct = |mined: &FrequentItemsets| -> usize {
        compare(&truth, mined)
            .per_length
            .iter()
            .filter(|lm| lm.length >= 4)
            .map(|lm| lm.correct_count)
            .sum()
    };
    let gd_score = long_correct(&gd_mined);
    let mask_score = long_correct(&mask_mined);
    let cnp_score = long_correct(&cnp_mined);
    assert!(
        gd_score > mask_score && gd_score > cnp_score,
        "gd {gd_score}, mask {mask_score}, cnp {cnp_score}"
    );
}

#[test]
fn pipeline_is_deterministic_given_seeds() {
    let ds = census(5_000);
    let gd = GammaDiagonal::new(ds.schema(), 19.0).unwrap();
    let run = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        let perturbed = Dataset::from_trusted(
            ds.schema().clone(),
            gd.perturb_dataset(ds.records(), &mut rng).unwrap(),
        );
        apriori(&GammaDiagonalSupport::new(&perturbed, &gd), &params()).length_profile()
    };
    assert_eq!(run(9), run(9));
}

#[test]
fn health_pipeline_smoke() {
    let ds = frapp::data::health::health_like_n(15_000, 13);
    let truth = truth_of(&ds);
    assert!(
        truth.max_length() >= 5,
        "profile {:?}",
        truth.length_profile()
    );
    let gd = GammaDiagonal::new(ds.schema(), 19.0).unwrap();
    let mut rng = StdRng::seed_from_u64(6);
    let perturbed = Dataset::from_trusted(
        ds.schema().clone(),
        gd.perturb_dataset(ds.records(), &mut rng).unwrap(),
    );
    let mined = apriori(&GammaDiagonalSupport::new(&perturbed, &gd), &params());
    let metrics = compare(&truth, &mined);
    assert!(!metrics.per_length.is_empty());
}
