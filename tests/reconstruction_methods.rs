//! Integration tests comparing reconstruction operators and miners
//! across crates: inversion vs EM, Apriori vs FP-growth.

use frapp::core::em::{em_reconstruct, em_reconstruct_gamma, EmParams};
use frapp::core::perturb::{GammaDiagonal, Perturber};
use frapp::core::reconstruct::{clamp_counts, GammaDiagonalReconstructor};
use frapp::core::Dataset;
use frapp::mining::apriori::{apriori, AprioriParams};
use frapp::mining::estimators::ExactSupport;
use frapp::mining::fp_growth;
use frapp::mining::itemset::row_to_mask;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn fp_growth_matches_apriori_on_census_sample() {
    let ds = frapp::data::census::census_like_n(8_000, 31);
    let masks: Vec<u64> = ds.to_boolean().iter().map(|r| row_to_mask(r)).collect();
    let fp = fp_growth(&masks, ds.schema().boolean_width(), 0.02);
    let ap = apriori(
        &ExactSupport::from_dataset(&ds),
        &AprioriParams {
            min_support: 0.02,
            max_length: 0,
            max_candidates: 0,
        },
    );
    assert_eq!(fp.length_profile(), ap.length_profile());
    for (itemset, sup) in ap.iter() {
        let fp_sup = fp
            .support_of(itemset)
            .expect("fp-growth found the same itemset");
        assert!((fp_sup - sup).abs() < 1e-12);
    }
}

#[test]
fn fp_growth_matches_apriori_on_health_sample() {
    let ds = frapp::data::health::health_like_n(6_000, 37);
    let masks: Vec<u64> = ds.to_boolean().iter().map(|r| row_to_mask(r)).collect();
    let fp = fp_growth(&masks, ds.schema().boolean_width(), 0.05);
    let ap = apriori(
        &ExactSupport::from_dataset(&ds),
        &AprioriParams {
            min_support: 0.05,
            max_length: 0,
            max_candidates: 0,
        },
    );
    assert_eq!(fp.length_profile(), ap.length_profile());
}

/// Per-cell recovery is only meaningful on small domains: at the
/// paper's CENSUS scale (2000 cells, cond 112) per-cell noise swamps
/// individual counts, which is exactly why Section 6 reconstructs
/// itemset supports over small sub-domains instead. This test uses a
/// 12-cell domain where cell recovery is well-posed.
#[test]
fn em_and_inversion_agree_on_well_sampled_cells() {
    let schema = frapp::core::Schema::new(vec![("a", 3), ("b", 2), ("c", 2)]).unwrap();
    let mut records = Vec::new();
    for i in 0..30_000usize {
        records.push(match i % 10 {
            0..=5 => vec![0, 0, 0],
            6..=8 => vec![1, 1, 1],
            _ => vec![2, 0, 1],
        });
    }
    let ds = Dataset::new(schema.clone(), records).unwrap();
    let gd = GammaDiagonal::new(ds.schema(), 19.0).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let perturbed =
        Dataset::from_trusted(schema, gd.perturb_dataset(ds.records(), &mut rng).unwrap());
    let y = perturbed.count_vector();
    let x_true = ds.count_vector();

    let mut inv = GammaDiagonalReconstructor::new(&gd).reconstruct(&y);
    clamp_counts(&mut inv, ds.len() as f64);
    let em = em_reconstruct_gamma(&gd, &y, &EmParams::default()).unwrap();

    // On the heaviest true cells, both estimates land in the same
    // neighbourhood of the truth.
    let mut heavy: Vec<usize> = (0..x_true.len()).collect();
    heavy.sort_by(|&a, &b| x_true[b].partial_cmp(&x_true[a]).unwrap());
    for &cell in heavy.iter().take(3) {
        let t = x_true[cell];
        assert!(t > 2000.0, "test needs heavy cells, got {t}");
        assert!(
            (inv[cell] - t).abs() < 0.3 * t,
            "inversion cell {cell}: {} vs {t}",
            inv[cell]
        );
        assert!(
            (em.estimate[cell] - t).abs() < 0.3 * t,
            "em cell {cell}: {} vs {t}",
            em.estimate[cell]
        );
    }
    // EM is nonnegative everywhere by construction.
    assert!(em.estimate.iter().all(|&e| e >= 0.0));
}

/// EM against a dense *marginal* matrix on a small domain: the marginal
/// distribution over a 2-attribute subset is recovered from the
/// perturbed projection counts.
#[test]
fn em_dense_recovers_marginal_distribution_small_domain() {
    let schema = frapp::core::Schema::new(vec![("a", 3), ("b", 2), ("c", 2)]).unwrap();
    let mut records = Vec::new();
    for i in 0..40_000usize {
        records.push(match i % 10 {
            0..=5 => vec![0, 0, 0],
            6..=8 => vec![1, 1, 1],
            _ => vec![2, 0, 1],
        });
    }
    let ds = Dataset::new(schema.clone(), records).unwrap();
    let gd = GammaDiagonal::new(ds.schema(), 19.0).unwrap();
    let mut rng = StdRng::seed_from_u64(8);
    let perturbed =
        Dataset::from_trusted(schema, gd.perturb_dataset(ds.records(), &mut rng).unwrap());
    let attrs = [0usize, 1]; // a x b: 6 cells
    let y_marg = perturbed.projected_counts(&attrs);
    let dense = gd.marginal_matrix(&attrs).to_dense();
    let em_marginal = em_reconstruct(&dense, &y_marg, &EmParams::default()).unwrap();

    let truth = ds.projected_counts(&attrs);
    // Heavy marginal cells (a=0,b=0: 60%; a=1,b=1: 30%) recovered well.
    for (e, t) in em_marginal.estimate.iter().zip(&truth) {
        if *t > 8_000.0 {
            assert!(
                (e - t).abs() < 0.25 * t,
                "marginal cell: em {e} vs truth {t} (all: {:?} vs {truth:?})",
                em_marginal.estimate
            );
        }
    }
}
