//! Singular value decomposition via one-sided Jacobi rotations.
//!
//! Figure 4 of the FRAPP paper compares condition numbers
//! `σ_max/σ_min` of reconstruction matrices that are *not* symmetric
//! (the Cut-and-Paste partial-support matrices), so a general SVD is
//! the natural tool. One-sided Jacobi orthogonalises the columns of `A`
//! by plane rotations; at convergence the column norms are the singular
//! values. It is slower than Golub–Kahan bidiagonalisation but simple,
//! remarkably accurate for small singular values, and entirely
//! dependency-free — the right trade-off for the ≤ 2⁷-sized matrices
//! this workspace inverts.

use crate::{LinalgError, Matrix, Result};

/// Maximum number of sweeps before declaring non-convergence.
const MAX_SWEEPS: usize = 60;

/// The singular value decomposition `A = U Σ Vᵀ` of a square matrix.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors (columns of `U`), orthonormal.
    pub u: Matrix,
    /// Singular values in descending order, all nonnegative.
    pub sigma: Vec<f64>,
    /// Right singular vectors (columns of `V`), orthonormal.
    pub v: Matrix,
}

impl Svd {
    /// Computes the SVD of a square matrix with one-sided Jacobi.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        // Work on B = A (columns get rotated); V accumulates rotations.
        let mut b = a.clone();
        let mut v = Matrix::identity(n);
        // Standard one-sided Jacobi stopping rule: rotate a column pair
        // only while the Gram cross-term is significant *relative* to
        // the column norms (|apq|² > eps²·app·aqq); a sweep with no
        // rotations means convergence. An absolute threshold would
        // never be reached for large column norms due to rounding noise
        // in the freshly computed Gram entries.
        let eps = 1e-14_f64;

        for _sweep in 0..MAX_SWEEPS {
            let mut rotated = false;
            for p in 0..n {
                for q in (p + 1)..n {
                    // Gram entries of columns p, q.
                    let mut app = 0.0;
                    let mut aqq = 0.0;
                    let mut apq = 0.0;
                    for i in 0..n {
                        app += b[(i, p)] * b[(i, p)];
                        aqq += b[(i, q)] * b[(i, q)];
                        apq += b[(i, p)] * b[(i, q)];
                    }
                    if apq * apq <= eps * eps * app * aqq || apq == 0.0 {
                        continue;
                    }
                    rotated = true;
                    // Jacobi rotation zeroing the (p,q) Gram entry.
                    let theta = (aqq - app) / (2.0 * apq);
                    let t = if theta >= 0.0 {
                        1.0 / (theta + (1.0 + theta * theta).sqrt())
                    } else {
                        -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                    };
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = t * c;
                    for i in 0..n {
                        let bp = b[(i, p)];
                        let bq = b[(i, q)];
                        b[(i, p)] = c * bp - s * bq;
                        b[(i, q)] = s * bp + c * bq;
                        let vp = v[(i, p)];
                        let vq = v[(i, q)];
                        v[(i, p)] = c * vp - s * vq;
                        v[(i, q)] = s * vp + c * vq;
                    }
                }
            }
            if !rotated {
                return Ok(Self::finish(b, v));
            }
        }
        Err(LinalgError::NonConvergence {
            iterations: MAX_SWEEPS,
        })
    }

    /// Extracts `(U, Σ, V)` from the column-orthogonal `B` and the
    /// accumulated rotations, sorting by descending singular value.
    fn finish(b: Matrix, v: Matrix) -> Svd {
        let n = b.rows();
        let mut order: Vec<usize> = (0..n).collect();
        let norms: Vec<f64> = (0..n)
            .map(|j| (0..n).map(|i| b[(i, j)] * b[(i, j)]).sum::<f64>().sqrt())
            .collect();
        order.sort_by(|&x, &y| norms[y].partial_cmp(&norms[x]).expect("finite norms"));
        let mut u = Matrix::zeros(n, n);
        let mut vv = Matrix::zeros(n, n);
        let mut sigma = Vec::with_capacity(n);
        for (new_j, &old_j) in order.iter().enumerate() {
            let s = norms[old_j];
            sigma.push(s);
            for i in 0..n {
                u[(i, new_j)] = if s > 0.0 { b[(i, old_j)] / s } else { 0.0 };
                vv[(i, new_j)] = v[(i, old_j)];
            }
        }
        Svd { u, sigma, v: vv }
    }

    /// Largest singular value.
    pub fn sigma_max(&self) -> f64 {
        self.sigma.first().copied().unwrap_or(0.0)
    }

    /// Smallest singular value.
    pub fn sigma_min(&self) -> f64 {
        self.sigma.last().copied().unwrap_or(0.0)
    }

    /// 2-norm condition number `σ_max/σ_min`; infinite when singular.
    pub fn condition_number(&self) -> f64 {
        let min = self.sigma_min();
        if min <= 0.0 {
            f64::INFINITY
        } else {
            self.sigma_max() / min
        }
    }

    /// Numerical rank: number of singular values above
    /// `tol · σ_max`.
    pub fn rank(&self, tol: f64) -> usize {
        let cutoff = tol * self.sigma_max();
        self.sigma.iter().filter(|&&s| s > cutoff).count()
    }

    /// Reassembles `U Σ Vᵀ` (for testing).
    pub fn reconstruct(&self) -> Matrix {
        let n = self.sigma.len();
        let mut us = self.u.clone();
        for j in 0..n {
            for i in 0..n {
                us[(i, j)] *= self.sigma[j];
            }
        }
        us.mul_mat(&self.v.transpose()).expect("square factors")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eigen;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * b.abs().max(1.0),
            "expected {b}, got {a}"
        );
    }

    fn assert_orthonormal(m: &Matrix) {
        let gram = m.transpose().mul_mat(m).unwrap();
        let diff = &gram - &Matrix::identity(m.rows());
        assert!(
            diff.max_abs() < 1e-10,
            "not orthonormal: deviation {}",
            diff.max_abs()
        );
    }

    #[test]
    fn svd_of_diagonal_matrix() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, -2.0]]);
        let svd = Svd::new(&a).unwrap();
        assert_close(svd.sigma[0], 3.0, 1e-12);
        assert_close(svd.sigma[1], 2.0, 1e-12);
        assert_orthonormal(&svd.u);
        assert_orthonormal(&svd.v);
    }

    #[test]
    fn svd_reconstructs_original() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 0.5], &[-3.0, 0.1, 4.0], &[2.0, 2.0, -1.0]]);
        let svd = Svd::new(&a).unwrap();
        let back = svd.reconstruct();
        let diff = &back - &a;
        assert!(diff.max_abs() < 1e-10, "deviation {}", diff.max_abs());
    }

    #[test]
    fn singular_values_match_eigenvalues_of_gram() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[0.5, 3.0]]);
        let svd = Svd::new(&a).unwrap();
        let gram = a.transpose().mul_mat(&a).unwrap();
        let eig = eigen::jacobi_eigenvalues(&gram).unwrap();
        assert_close(svd.sigma[0], eig[1].sqrt(), 1e-10);
        assert_close(svd.sigma[1], eig[0].sqrt(), 1e-10);
    }

    #[test]
    fn condition_number_agrees_with_eigen_path() {
        let a = Matrix::from_rows(&[&[4.0, 1.0, 0.0], &[1.0, 3.0, 0.5], &[0.0, 0.5, 1.0]]);
        let via_svd = Svd::new(&a).unwrap().condition_number();
        let via_eigen = eigen::condition_number_2(&a).unwrap();
        assert_close(via_svd, via_eigen, 1e-8);
    }

    #[test]
    fn rank_deficiency_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        let svd = Svd::new(&a).unwrap();
        assert_eq!(svd.rank(1e-10), 1);
        assert_eq!(svd.condition_number(), f64::INFINITY);
    }

    #[test]
    fn gamma_diagonal_svd_matches_closed_form() {
        let n = 10;
        let gamma = 19.0;
        let gd = crate::structured::UniformDiagonal::gamma_diagonal(n, gamma);
        let svd = Svd::new(&gd.to_dense()).unwrap();
        assert_close(svd.sigma_max(), 1.0, 1e-10);
        assert_close(
            svd.sigma_min(),
            (gamma - 1.0) / (gamma + n as f64 - 1.0),
            1e-10,
        );
        assert_close(svd.condition_number(), gd.condition_number(), 1e-8);
    }

    #[test]
    fn identity_has_unit_spectrum() {
        let svd = Svd::new(&Matrix::identity(5)).unwrap();
        for &s in &svd.sigma {
            assert_close(s, 1.0, 1e-12);
        }
        assert_eq!(svd.rank(1e-12), 5);
    }

    #[test]
    fn rejects_non_square() {
        assert!(Svd::new(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn mask_kronecker_svd_condition() {
        // sigma ratios of the MASK flip matrix power: (1/(2p-1))^k.
        let p = 0.7;
        let flip = Matrix::from_rows(&[&[p, 1.0 - p], &[1.0 - p, p]]);
        let m = crate::structured::kronecker_power(&flip, 3);
        let svd = Svd::new(&m).unwrap();
        assert_close(
            svd.condition_number(),
            (1.0 / (2.0 * p - 1.0)).powi(3),
            1e-8,
        );
    }
}
