//! Small vector helpers shared across the workspace.
//!
//! FRAPP's reconstruction quality metric (paper Equation 9) is a relative
//! error between count vectors, so the workspace needs a handful of
//! vector norms and distances. They live here rather than being
//! re-implemented in every crate.

/// Euclidean (L2) norm of a vector.
pub fn norm_2(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// L1 norm of a vector.
pub fn norm_1(v: &[f64]) -> f64 {
    v.iter().map(|x| x.abs()).sum()
}

/// Max (L∞) norm of a vector.
pub fn norm_inf(v: &[f64]) -> f64 {
    v.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
}

/// Euclidean distance between two equal-length vectors.
///
/// # Panics
/// Panics if the lengths differ.
pub fn distance_2(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(
        a.len(),
        b.len(),
        "distance between vectors of different lengths"
    );
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Relative L2 error `‖a − b‖ / ‖b‖`, the paper's error measure with `b`
/// as the reference vector. Returns 0 when both vectors are zero, and
/// `f64::INFINITY` when only the reference is zero.
pub fn relative_error_2(a: &[f64], b: &[f64]) -> f64 {
    let denom = norm_2(b);
    let num = distance_2(a, b);
    if denom == 0.0 {
        if num == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        num / denom
    }
}

/// Dot product of two equal-length vectors.
///
/// # Panics
/// Panics if the lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(
        a.len(),
        b.len(),
        "dot product of vectors of different lengths"
    );
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Normalizes `v` to unit L2 norm in place; returns the original norm.
/// A zero vector is left untouched (returns 0).
pub fn normalize_mut(v: &mut [f64]) -> f64 {
    let n = norm_2(v);
    if n > 0.0 {
        for x in v.iter_mut() {
            *x /= n;
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norms_match_hand_computation() {
        let v = [3.0, -4.0];
        assert!((norm_2(&v) - 5.0).abs() < 1e-12);
        assert!((norm_1(&v) - 7.0).abs() < 1e-12);
        assert!((norm_inf(&v) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 6.0, 3.0];
        assert!((distance_2(&a, &b) - 5.0).abs() < 1e-12);
        assert!((distance_2(&b, &a) - distance_2(&a, &b)).abs() < 1e-15);
    }

    #[test]
    fn relative_error_reference_zero() {
        assert_eq!(relative_error_2(&[0.0], &[0.0]), 0.0);
        assert_eq!(relative_error_2(&[1.0], &[0.0]), f64::INFINITY);
    }

    #[test]
    fn relative_error_of_identical_vectors_is_zero() {
        let v = [2.0, -7.0, 0.5];
        assert_eq!(relative_error_2(&v, &v), 0.0);
    }

    #[test]
    fn dot_matches_hand_computation() {
        assert!((dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]) - 32.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_produces_unit_vector() {
        let mut v = [3.0, 4.0];
        let n = normalize_mut(&mut v);
        assert!((n - 5.0).abs() < 1e-12);
        assert!((norm_2(&v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut v = [0.0, 0.0];
        assert_eq!(normalize_mut(&mut v), 0.0);
        assert_eq!(v, [0.0, 0.0]);
    }
}
