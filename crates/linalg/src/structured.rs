//! Structured matrices with closed-form algebra.
//!
//! Two structures dominate the FRAPP reproduction:
//!
//! * **Uniform-diagonal matrices** `aI + bJ` (`J` = all-ones). The
//!   paper's gamma-diagonal perturbation matrix is the member with
//!   `a = x(γ−1)`, `b = x`, `x = 1/(γ+n−1)`, and its marginalization to
//!   an attribute subset (paper Equation 28) stays in the family. The
//!   family is closed under inversion via Sherman–Morrison, so FRAPP
//!   reconstruction never needs an `O(n³)` solve.
//! * **Kronecker products.** MASK's per-itemset reconstruction matrix is
//!   the k-fold Kronecker power of the 2×2 flip matrix
//!   `[[p, 1−p], [1−p, p]]`; its spectrum (and thus condition number) is
//!   the k-fold product of the base spectrum, which is why MASK's
//!   accuracy collapses exponentially with itemset length (paper Fig 4).

use crate::{LinalgError, Matrix, Result};

/// A matrix of the form `aI + bJ` where `J` is the all-ones matrix.
///
/// Stores only `(n, a, b)`; provides O(n) products, O(1) spectra and a
/// closed-form inverse. Densification via [`UniformDiagonal::to_dense`]
/// is available for validation against the generic LU path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformDiagonal {
    n: usize,
    a: f64,
    b: f64,
}

impl UniformDiagonal {
    /// Creates `aI + bJ` of dimension `n`.
    pub fn new(n: usize, a: f64, b: f64) -> Self {
        UniformDiagonal { n, a, b }
    }

    /// Constructs the paper's gamma-diagonal matrix for domain size `n`
    /// and amplification bound `gamma`: diagonal `γx`, off-diagonal `x`,
    /// with `x = 1/(γ+n−1)` (paper Equation 13).
    pub fn gamma_diagonal(n: usize, gamma: f64) -> Self {
        let x = 1.0 / (gamma + n as f64 - 1.0);
        // aI + bJ with diagonal a+b = γx and off-diagonal b = x.
        UniformDiagonal {
            n,
            a: (gamma - 1.0) * x,
            b: x,
        }
    }

    /// Dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Coefficient of the identity part.
    pub fn a(&self) -> f64 {
        self.a
    }

    /// Coefficient of the all-ones part.
    pub fn b(&self) -> f64 {
        self.b
    }

    /// Diagonal entry `a + b`.
    pub fn diagonal(&self) -> f64 {
        self.a + self.b
    }

    /// Off-diagonal entry `b`.
    pub fn off_diagonal(&self) -> f64 {
        self.b
    }

    /// Whether the matrix is a Markov (column-stochastic) matrix:
    /// `a + n·b = 1` and entries nonnegative.
    pub fn is_markov(&self, tol: f64) -> bool {
        (self.a + self.n as f64 * self.b - 1.0).abs() <= tol
            && self.diagonal() >= -tol
            && self.off_diagonal() >= -tol
    }

    /// Matrix–vector product in O(n): `(aI + bJ)x = a·x + b·(Σx)·1`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.n {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("vector of length {}", self.n),
                found: format!("vector of length {}", x.len()),
            });
        }
        let s: f64 = x.iter().sum();
        Ok(x.iter().map(|&v| self.a * v + self.b * s).collect())
    }

    /// Closed-form inverse, which is again uniform-diagonal:
    /// `(aI + bJ)⁻¹ = (1/a)I − (b / (a(a + nb)))J` (Sherman–Morrison).
    ///
    /// Returns [`LinalgError::Singular`] when `a = 0` or `a + nb = 0`.
    pub fn inverse(&self) -> Result<UniformDiagonal> {
        let denom = self.a * (self.a + self.n as f64 * self.b);
        if self.a == 0.0 || denom == 0.0 {
            return Err(LinalgError::Singular);
        }
        Ok(UniformDiagonal {
            n: self.n,
            a: 1.0 / self.a,
            b: -self.b / denom,
        })
    }

    /// Solves `(aI + bJ) x = y` in O(n) using the closed-form inverse.
    pub fn solve(&self, y: &[f64]) -> Result<Vec<f64>> {
        self.inverse()?.mul_vec(y)
    }

    /// The two distinct eigenvalues: `a` with multiplicity `n−1`
    /// (eigenvectors orthogonal to 1) and `a + nb` (eigenvector 1).
    pub fn eigenvalues(&self) -> (f64, f64) {
        (self.a, self.a + self.n as f64 * self.b)
    }

    /// Exact 2-norm condition number (the matrix is symmetric, so this is
    /// `max|λ| / min|λ|`). Infinite if any eigenvalue is zero.
    pub fn condition_number(&self) -> f64 {
        let (l1, l2) = self.eigenvalues();
        let (min, max) = (l1.abs().min(l2.abs()), l1.abs().max(l2.abs()));
        if min == 0.0 {
            f64::INFINITY
        } else {
            max / min
        }
    }

    /// Densifies to a [`Matrix`] (for tests and the generic LU path).
    pub fn to_dense(&self) -> Matrix {
        Matrix::from_fn(self.n, self.n, |i, j| {
            if i == j {
                self.a + self.b
            } else {
                self.b
            }
        })
    }
}

/// Kronecker (tensor) product `a ⊗ b`.
///
/// `(a ⊗ b)[(i1·rb + i2, j1·cb + j2)] = a[(i1, j1)] · b[(i2, j2)]`.
pub fn kronecker(a: &Matrix, b: &Matrix) -> Matrix {
    let (ra, ca) = (a.rows(), a.cols());
    let (rb, cb) = (b.rows(), b.cols());
    Matrix::from_fn(ra * rb, ca * cb, |i, j| {
        let (i1, i2) = (i / rb, i % rb);
        let (j1, j2) = (j / cb, j % cb);
        a[(i1, j1)] * b[(i2, j2)]
    })
}

/// k-fold Kronecker power `a ⊗ a ⊗ … ⊗ a` (k ≥ 1); `k = 0` yields the
/// 1×1 identity.
pub fn kronecker_power(a: &Matrix, k: usize) -> Matrix {
    let mut out = Matrix::identity(1);
    for _ in 0..k {
        out = kronecker(&out, a);
    }
    out
}

/// Builds a symmetric Toeplitz matrix from its first row.
///
/// The paper remarks that the gamma-diagonal matrix "incidentally is a
/// symmetric Toeplitz matrix"; this constructor supports tests of that
/// observation and experimentation with other Toeplitz choices.
pub fn symmetric_toeplitz(first_row: &[f64]) -> Matrix {
    let n = first_row.len();
    Matrix::from_fn(n, n, |i, j| first_row[i.abs_diff(j)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{eigen, lu};

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * b.abs().max(1.0),
            "expected {b}, got {a}"
        );
    }

    #[test]
    fn gamma_diagonal_entries_match_equation_13() {
        let gd = UniformDiagonal::gamma_diagonal(2000, 19.0);
        let x = 1.0 / (19.0 + 1999.0);
        assert_close(gd.diagonal(), 19.0 * x, 1e-15);
        assert_close(gd.off_diagonal(), x, 1e-15);
        assert!(gd.is_markov(1e-12));
    }

    #[test]
    fn gamma_diagonal_condition_number_formula() {
        // cond = (γ + n − 1)/(γ − 1), paper Section 3.
        let gd = UniformDiagonal::gamma_diagonal(2000, 19.0);
        assert_close(gd.condition_number(), (19.0 + 1999.0) / 18.0, 1e-12);
    }

    #[test]
    fn mul_vec_matches_dense() {
        let gd = UniformDiagonal::new(5, 0.3, 0.14);
        let x = [1.0, -2.0, 3.0, 0.5, 4.0];
        let fast = gd.mul_vec(&x).unwrap();
        let dense = gd.to_dense().mul_vec(&x).unwrap();
        for (f, d) in fast.iter().zip(&dense) {
            assert_close(*f, *d, 1e-13);
        }
    }

    #[test]
    fn closed_form_inverse_matches_lu() {
        let gd = UniformDiagonal::gamma_diagonal(7, 19.0);
        let inv_closed = gd.inverse().unwrap().to_dense();
        let inv_lu = lu::inverse(&gd.to_dense()).unwrap();
        let diff = &inv_closed - &inv_lu;
        assert!(diff.max_abs() < 1e-10, "max deviation {}", diff.max_abs());
    }

    #[test]
    fn inverse_times_original_is_identity_in_on_time() {
        let gd = UniformDiagonal::gamma_diagonal(100, 19.0);
        let x: Vec<f64> = (0..100).map(|i| (i as f64) * 0.37 - 5.0).collect();
        let y = gd.mul_vec(&x).unwrap();
        let back = gd.solve(&y).unwrap();
        for (b, orig) in back.iter().zip(&x) {
            assert_close(*b, *orig, 1e-10);
        }
    }

    #[test]
    fn singular_family_member_detected() {
        // a = 0 makes the matrix rank 1.
        let gd = UniformDiagonal::new(4, 0.0, 0.25);
        assert_eq!(gd.inverse().unwrap_err(), LinalgError::Singular);
        assert_eq!(gd.condition_number(), f64::INFINITY);
    }

    #[test]
    fn eigenvalues_match_jacobi() {
        let gd = UniformDiagonal::gamma_diagonal(6, 19.0);
        let (small, markov) = gd.eigenvalues();
        let eig = eigen::jacobi_eigenvalues(&gd.to_dense()).unwrap();
        assert_close(eig[0], small, 1e-10);
        assert_close(eig[5], markov, 1e-10);
        assert_close(markov, 1.0, 1e-12);
    }

    #[test]
    fn kronecker_of_identities_is_identity() {
        let k = kronecker(&Matrix::identity(2), &Matrix::identity(3));
        let diff = &k - &Matrix::identity(6);
        assert!(diff.max_abs() < 1e-15);
    }

    #[test]
    fn kronecker_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[0.0, 5.0], &[6.0, 7.0]]);
        let k = kronecker(&a, &b);
        assert_eq!(k.rows(), 4);
        assert_eq!(k[(0, 1)], 5.0); // a00*b01
        assert_eq!(k[(1, 0)], 6.0); // a00*b10
        assert_eq!(k[(2, 3)], 4.0 * 5.0); // a11*b01
        assert_eq!(k[(3, 2)], 4.0 * 6.0); // a11*b10
        assert_eq!(k[(2, 0)], 3.0 * 0.0); // a10*b00
    }

    #[test]
    fn kronecker_power_zero_is_scalar_one() {
        let a = Matrix::from_rows(&[&[0.5, 0.5], &[0.5, 0.5]]);
        let k = kronecker_power(&a, 0);
        assert_eq!(k.rows(), 1);
        assert_eq!(k[(0, 0)], 1.0);
    }

    #[test]
    fn mask_kronecker_condition_grows_exponentially() {
        // The MASK flip matrix with p: eigenvalues 1 and 2p−1, so the
        // k-fold power has condition (1/(2p−1))^k.
        let p = 0.7;
        let flip = Matrix::from_rows(&[&[p, 1.0 - p], &[1.0 - p, p]]);
        for k in 1..=4 {
            let m = kronecker_power(&flip, k);
            let cond = eigen::condition_number_2(&m).unwrap();
            let expected = (1.0 / (2.0 * p - 1.0)).powi(k as i32);
            assert_close(cond, expected, 1e-7);
        }
    }

    #[test]
    fn kronecker_preserves_column_stochasticity() {
        let a = Matrix::from_rows(&[&[0.9, 0.3], &[0.1, 0.7]]);
        let k = kronecker_power(&a, 3);
        assert!(k.is_column_stochastic(1e-12));
    }

    #[test]
    fn gamma_diagonal_is_symmetric_toeplitz() {
        let gd = UniformDiagonal::gamma_diagonal(4, 19.0).to_dense();
        let x = 1.0 / 22.0;
        let toeplitz = symmetric_toeplitz(&[19.0 * x, x, x, x]);
        let diff = &gd - &toeplitz;
        assert!(diff.max_abs() < 1e-15);
    }

    #[test]
    fn toeplitz_constructor_shape() {
        let t = symmetric_toeplitz(&[2.0, 1.0, 0.0]);
        assert_eq!(t[(0, 2)], 0.0);
        assert_eq!(t[(2, 0)], 0.0);
        assert_eq!(t[(1, 2)], 1.0);
        assert!(t.is_symmetric(0.0));
    }
}
