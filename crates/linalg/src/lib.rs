//! Dense linear-algebra substrate for the FRAPP reproduction.
//!
//! The FRAPP paper (Agrawal & Haritsa, ICDE 2005) models random data
//! perturbation as multiplication by a Markov matrix `A` and reconstructs
//! the original data distribution as `X̂ = A⁻¹Y`. The quality of the
//! reconstruction is governed by the *condition number* of `A`
//! (paper Theorem 1). This crate provides everything the framework needs:
//!
//! * a dense row-major [`Matrix`] with the usual arithmetic,
//! * [`lu::LuDecomposition`] — partial-pivoting LU for solving, inversion
//!   and determinants,
//! * [`eigen`] — a Jacobi eigensolver for symmetric matrices, power /
//!   inverse iteration, and 1-, 2- and ∞-norm condition numbers,
//! * [`structured`] — closed forms for the paper's "gamma-diagonal"
//!   family `aI + bJ` (Sherman–Morrison inverse, exact spectra) and
//!   Kronecker products (MASK's reconstruction matrices are Kronecker
//!   powers of a 2×2 flip matrix).
//!
//! Everything is implemented from scratch on `f64`; no external linear
//! algebra crates are used.

#![warn(missing_docs)]

pub mod eigen;
pub mod lu;
pub mod matrix;
pub mod solver;
pub mod structured;
pub mod svd;
pub mod vector;

pub use eigen::{
    condition_number_1, condition_number_2, condition_number_2_robust, condition_number_inf,
    jacobi_eigenvalues,
};
pub use lu::LuDecomposition;
pub use matrix::Matrix;
pub use solver::LinearSolver;
pub use structured::{kronecker, kronecker_power, UniformDiagonal};
pub use svd::Svd;

/// Errors produced by linear-algebra routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the expected shape.
        expected: String,
        /// Human-readable description of the shape that was found.
        found: String,
    },
    /// The matrix is singular (or numerically so) and cannot be factored
    /// or inverted.
    Singular,
    /// An iterative method failed to converge within its iteration budget.
    NonConvergence {
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
    /// The operation requires a square matrix.
    NotSquare {
        /// Number of rows of the offending matrix.
        rows: usize,
        /// Number of columns of the offending matrix.
        cols: usize,
    },
    /// The operation requires a symmetric matrix.
    NotSymmetric,
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::ShapeMismatch { expected, found } => {
                write!(f, "shape mismatch: expected {expected}, found {found}")
            }
            LinalgError::Singular => write!(f, "matrix is singular"),
            LinalgError::NonConvergence { iterations } => {
                write!(
                    f,
                    "iteration failed to converge after {iterations} iterations"
                )
            }
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "operation requires a square matrix, got {rows}x{cols}")
            }
            LinalgError::NotSymmetric => write!(f, "operation requires a symmetric matrix"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, LinalgError>;
