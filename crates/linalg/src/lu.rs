//! LU decomposition with partial pivoting.
//!
//! FRAPP's generic reconstruction step solves `A X̂ = Y` for an arbitrary
//! perturbation matrix `A` (paper Equation 8). For the gamma-diagonal
//! family a closed form exists (see [`crate::structured`]), but the
//! framework must also invert the baselines' matrices — MASK's Kronecker
//! powers and Cut-and-Paste's intersection-size matrices — which are
//! dense and, at strict privacy settings, severely ill-conditioned. LU
//! with partial pivoting is the standard robust direct solver for that.

use crate::{LinalgError, Matrix, Result};

/// The result of factoring a square matrix `A` as `P·A = L·U`.
///
/// `L` is unit lower triangular, `U` upper triangular, `P` a row
/// permutation recorded in [`LuDecomposition::permutation`]. Once built,
/// the factorization solves any number of right-hand sides in `O(n²)`
/// each, computes the determinant in `O(n)` and the inverse in `O(n³)`.
#[derive(Debug, Clone)]
pub struct LuDecomposition {
    /// Combined storage: strictly-lower part holds L (unit diagonal
    /// implicit), diagonal and upper part hold U.
    lu: Matrix,
    /// `permutation[i]` is the original row index now in position `i`.
    permutation: Vec<usize>,
    /// Number of row swaps performed (determines determinant sign).
    swaps: usize,
}

impl LuDecomposition {
    /// Factors `a`. Returns [`LinalgError::NotSquare`] for non-square
    /// input and [`LinalgError::Singular`] if a pivot underflows
    /// (entirely zero column at elimination time).
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut permutation: Vec<usize> = (0..n).collect();
        let mut swaps = 0;

        for k in 0..n {
            // Partial pivoting: pick the largest |entry| in column k at or
            // below the diagonal.
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val == 0.0 {
                return Err(LinalgError::Singular);
            }
            if pivot_row != k {
                permutation.swap(k, pivot_row);
                swaps += 1;
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                if factor != 0.0 {
                    for j in (k + 1)..n {
                        let sub = factor * lu[(k, j)];
                        lu[(i, j)] -= sub;
                    }
                }
            }
        }
        Ok(LuDecomposition {
            lu,
            permutation,
            swaps,
        })
    }

    /// Dimension of the factored matrix.
    pub fn n(&self) -> usize {
        self.lu.rows()
    }

    /// The row permutation applied by pivoting.
    pub fn permutation(&self) -> &[usize] {
        &self.permutation
    }

    /// Solves `A x = b`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.n();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("vector of length {n}"),
                found: format!("vector of length {}", b.len()),
            });
        }
        // Apply permutation, then forward-substitute L y = P b.
        let mut y: Vec<f64> = self.permutation.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let mut acc = y[i];
            for (j, &yj) in y.iter().enumerate().take(i) {
                acc -= self.lu[(i, j)] * yj;
            }
            y[i] = acc;
        }
        // Back-substitute U x = y.
        for i in (0..n).rev() {
            let mut acc = y[i];
            for (j, &yj) in y.iter().enumerate().skip(i + 1) {
                acc -= self.lu[(i, j)] * yj;
            }
            let d = self.lu[(i, i)];
            if d == 0.0 {
                return Err(LinalgError::Singular);
            }
            y[i] = acc / d;
        }
        Ok(y)
    }

    /// Solves `A X = B` column by column.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        if b.rows() != self.n() {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("{} rows", self.n()),
                found: format!("{} rows", b.rows()),
            });
        }
        let mut out = Matrix::zeros(b.rows(), b.cols());
        for j in 0..b.cols() {
            let col = b.col(j);
            let x = self.solve(&col)?;
            for (i, v) in x.into_iter().enumerate() {
                out[(i, j)] = v;
            }
        }
        Ok(out)
    }

    /// Computes `A⁻¹` by solving against the identity.
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve_matrix(&Matrix::identity(self.n()))
    }

    /// Determinant: product of U's diagonal, sign-adjusted for row swaps.
    pub fn determinant(&self) -> f64 {
        let mut det = if self.swaps.is_multiple_of(2) {
            1.0
        } else {
            -1.0
        };
        for i in 0..self.n() {
            det *= self.lu[(i, i)];
        }
        det
    }
}

/// Convenience wrapper: factor `a` and solve a single system.
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    LuDecomposition::new(a)?.solve(b)
}

/// Convenience wrapper: factor `a` and return its inverse.
pub fn inverse(a: &Matrix) -> Result<Matrix> {
    LuDecomposition::new(a)?.inverse()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_vec_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!(
                (x - y).abs() <= tol,
                "expected {y}, got {x} (vectors {a:?} vs {b:?})"
            );
        }
    }

    #[test]
    fn solves_known_2x2_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        // Solution of [2 1; 1 3] x = [5; 10] is x = [1; 3].
        let x = solve(&a, &[5.0, 10.0]).unwrap();
        assert_vec_close(&x, &[1.0, 3.0], 1e-12);
    }

    #[test]
    fn solves_system_requiring_pivoting() {
        // Leading zero forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = solve(&a, &[3.0, 7.0]).unwrap();
        assert_vec_close(&x, &[7.0, 3.0], 1e-12);
    }

    #[test]
    fn rejects_singular_matrix() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(LuDecomposition::new(&a).unwrap_err(), LinalgError::Singular);
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            LuDecomposition::new(&a),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = Matrix::from_rows(&[&[4.0, 7.0, 2.0], &[2.0, 6.0, 1.0], &[1.0, 1.0, 3.0]]);
        let inv = inverse(&a).unwrap();
        let prod = a.mul_mat(&inv).unwrap();
        let diff = &prod - &Matrix::identity(3);
        assert!(diff.max_abs() < 1e-12, "max deviation {}", diff.max_abs());
    }

    #[test]
    fn determinant_of_identity_is_one() {
        let lu = LuDecomposition::new(&Matrix::identity(4)).unwrap();
        assert!((lu.determinant() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn determinant_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let lu = LuDecomposition::new(&a).unwrap();
        assert!((lu.determinant() + 2.0).abs() < 1e-12);
    }

    #[test]
    fn determinant_sign_tracks_row_swaps() {
        // A permutation matrix with a single swap has determinant −1.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lu = LuDecomposition::new(&a).unwrap();
        assert!((lu.determinant() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_matrix_solves_each_column() {
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 4.0]]);
        let b = Matrix::from_rows(&[&[2.0, 4.0], &[4.0, 8.0]]);
        let x = LuDecomposition::new(&a).unwrap().solve_matrix(&b).unwrap();
        assert_vec_close(x.row(0), &[1.0, 2.0], 1e-12);
        assert_vec_close(x.row(1), &[1.0, 2.0], 1e-12);
    }

    #[test]
    fn solve_rejects_wrong_length_rhs() {
        let lu = LuDecomposition::new(&Matrix::identity(3)).unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn reconstruction_of_markov_mixing() {
        // A small Markov matrix (column-stochastic) like FRAPP's: verify
        // that solving A x = A x0 recovers x0 — the exact reconstruction
        // scenario of paper Equation 8 with zero sampling noise.
        let a = Matrix::from_rows(&[&[0.8, 0.1, 0.1], &[0.1, 0.8, 0.1], &[0.1, 0.1, 0.8]]);
        assert!(a.is_column_stochastic(1e-12));
        let x0 = [100.0, 250.0, 650.0];
        let y = a.mul_vec(&x0).unwrap();
        let x = solve(&a, &y).unwrap();
        assert_vec_close(&x, &x0, 1e-9);
    }

    #[test]
    fn ill_conditioned_hilbert_still_factors() {
        // 5x5 Hilbert matrix: condition number ~1e5 (the paper's own
        // example of ill-conditioning, Section 2.3). LU should still
        // produce a usable factorization.
        let h = Matrix::from_fn(5, 5, |i, j| 1.0 / ((i + j + 1) as f64));
        let lu = LuDecomposition::new(&h).unwrap();
        let inv = lu.inverse().unwrap();
        let prod = h.mul_mat(&inv).unwrap();
        let diff = &prod - &Matrix::identity(5);
        // Tolerance loose because of the conditioning.
        assert!(diff.max_abs() < 1e-7, "max deviation {}", diff.max_abs());
    }
}
