//! A reusable linear-solver handle.
//!
//! FRAPP's online setting (see `frapp-service`) answers repeated
//! reconstruction queries `A X̂ = Y` against the *same* perturbation
//! matrix while `Y` keeps growing with the ingested stream. Factoring
//! `A` per query would cost `O(n³)` every time; the [`LinearSolver`]
//! trait abstracts "something already prepared to solve against `A`" so
//! callers can build the expensive state once and reuse it:
//!
//! * [`LuDecomposition`] — factor once (`O(n³)`), then `O(n²)` per
//!   solve, for arbitrary dense matrices;
//! * [`UniformDiagonal`] — the gamma-diagonal closed form, `O(n)` per
//!   solve with no preparation at all.
//!
//! The trait requires `Send + Sync` so one handle can be shared across
//! server threads behind an `Arc`.

use crate::lu::LuDecomposition;
use crate::structured::UniformDiagonal;
use crate::Result;

/// A prepared solver for a fixed square system matrix `A`.
pub trait LinearSolver: Send + Sync {
    /// The dimension `n` of the system.
    fn dim(&self) -> usize;

    /// Solves `A x = b` for one right-hand side.
    fn solve_system(&self, b: &[f64]) -> Result<Vec<f64>>;

    /// Solves `A x = b`, writing into `out` (cleared and refilled) so
    /// hot loops can reuse an allocation. The default delegates to
    /// [`LinearSolver::solve_system`].
    fn solve_system_into(&self, b: &[f64], out: &mut Vec<f64>) -> Result<()> {
        let x = self.solve_system(b)?;
        out.clear();
        out.extend_from_slice(&x);
        Ok(())
    }
}

impl LinearSolver for LuDecomposition {
    fn dim(&self) -> usize {
        self.n()
    }

    fn solve_system(&self, b: &[f64]) -> Result<Vec<f64>> {
        self.solve(b)
    }
}

impl LinearSolver for UniformDiagonal {
    fn dim(&self) -> usize {
        self.n()
    }

    fn solve_system(&self, b: &[f64]) -> Result<Vec<f64>> {
        self.solve(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;

    fn solvers_for_gamma_diagonal(n: usize, gamma: f64) -> (UniformDiagonal, LuDecomposition) {
        let gd = UniformDiagonal::gamma_diagonal(n, gamma);
        let lu = LuDecomposition::new(&gd.to_dense()).unwrap();
        (gd, lu)
    }

    #[test]
    fn lu_and_closed_form_agree_through_the_trait() {
        let (gd, lu) = solvers_for_gamma_diagonal(40, 19.0);
        let y: Vec<f64> = (0..40).map(|i| (i * 17 % 11) as f64).collect();
        let handles: [&dyn LinearSolver; 2] = [&gd, &lu];
        let results: Vec<Vec<f64>> = handles
            .iter()
            .map(|s| {
                assert_eq!(s.dim(), 40);
                s.solve_system(&y).unwrap()
            })
            .collect();
        for (a, b) in results[0].iter().zip(&results[1]) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }

    #[test]
    fn solve_into_reuses_buffer() {
        let (gd, _) = solvers_for_gamma_diagonal(8, 5.0);
        let mut out = vec![999.0; 3];
        gd.solve_system_into(&[1.0; 8], &mut out).unwrap();
        assert_eq!(out.len(), 8);
        let direct = gd.solve_system(&[1.0; 8]).unwrap();
        assert_eq!(out, direct);
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let (gd, lu) = solvers_for_gamma_diagonal(5, 3.0);
        assert!(gd.solve_system(&[1.0; 4]).is_err());
        assert!(lu.solve_system(&[1.0; 4]).is_err());
    }

    #[test]
    fn handle_is_shareable_across_threads() {
        use std::sync::Arc;
        let m = Matrix::from_fn(6, 6, |i, j| if i == j { 4.0 } else { 0.5 });
        let solver: Arc<dyn LinearSolver> = Arc::new(LuDecomposition::new(&m).unwrap());
        let b = vec![1.0; 6];
        let results: Vec<Vec<f64>> = std::thread::scope(|scope| {
            (0..4)
                .map(|_| {
                    let solver = Arc::clone(&solver);
                    let b = b.clone();
                    scope.spawn(move || solver.solve_system(&b).unwrap())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        for r in &results[1..] {
            assert_eq!(r, &results[0]);
        }
    }
}
