//! Dense row-major matrix of `f64` values.

use crate::{LinalgError, Result};
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense, row-major matrix of `f64`.
///
/// Indexing is `(row, col)`, zero-based. The storage is a single
/// contiguous `Vec<f64>` of length `rows * cols`, which keeps row
/// traversals cache-friendly — the access pattern of both LU elimination
/// and the matrix–vector products that dominate FRAPP reconstruction.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows × cols` matrix with every entry equal to `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("{} elements ({rows}x{cols})", rows * cols),
                found: format!("{} elements", data.len()),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Builds a matrix from nested row slices (convenient in tests).
    ///
    /// # Panics
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "all rows must have the same length");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Builds an `n × n` matrix by calling `f(row, col)` for every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow of the underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Borrow of row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i` as a slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a fresh vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Whether the matrix is symmetric within absolute tolerance `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Matrix–vector product `self * x`.
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("vector of length {}", self.cols),
                found: format!("vector of length {}", x.len()),
            });
        }
        let mut y = vec![0.0; self.rows];
        for (i, yi) in y.iter_mut().enumerate() {
            let row = self.row(i);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x.iter()) {
                acc += a * b;
            }
            *yi = acc;
        }
        Ok(y)
    }

    /// Matrix–matrix product `self * other`.
    pub fn mul_mat(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("{} rows", self.cols),
                found: format!("{} rows", other.rows),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        // i-k-j loop order: the inner loop walks contiguous rows of both
        // `other` and `out`, which is markedly faster than the textbook
        // i-j-k order for row-major storage.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let other_row = other.row(k);
                let out_row = out.row_mut(i);
                for (o, b) in out_row.iter_mut().zip(other_row.iter()) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Scales every entry by `s`, in place.
    pub fn scale_mut(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Returns a copy scaled by `s`.
    pub fn scaled(&self, s: f64) -> Matrix {
        let mut m = self.clone();
        m.scale_mut(s);
        m
    }

    /// Maximum absolute entry (the max-norm).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
    }

    /// Induced 1-norm: maximum absolute column sum.
    pub fn norm_1(&self) -> f64 {
        let mut best = 0.0_f64;
        for j in 0..self.cols {
            let mut s = 0.0;
            for i in 0..self.rows {
                s += self[(i, j)].abs();
            }
            best = best.max(s);
        }
        best
    }

    /// Induced ∞-norm: maximum absolute row sum.
    pub fn norm_inf(&self) -> f64 {
        let mut best = 0.0_f64;
        for i in 0..self.rows {
            let s: f64 = self.row(i).iter().map(|v| v.abs()).sum();
            best = best.max(s);
        }
        best
    }

    /// Frobenius norm.
    pub fn norm_frobenius(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Sum of the diagonal entries.
    ///
    /// Used by the paper's Theorem 3 argument: the trace equals the sum of
    /// the eigenvalues, which bounds the smallest eigenvalue of a Markov
    /// matrix and hence its best achievable condition number.
    pub fn trace(&self) -> f64 {
        let n = self.rows.min(self.cols);
        (0..n).map(|i| self[(i, i)]).sum()
    }

    /// Checks that the matrix is *column*-stochastic (a Markov matrix in
    /// the paper's convention, Equation 1): entries nonnegative and every
    /// column sums to 1 within `tol`.
    pub fn is_column_stochastic(&self, tol: f64) -> bool {
        if self.data.iter().any(|&v| v < -tol) {
            return false;
        }
        for j in 0..self.cols {
            let s: f64 = (0..self.rows).map(|i| self[(i, j)]).sum();
            if (s - 1.0).abs() > tol {
                return false;
            }
        }
        true
    }

    /// The amplification factor of the matrix: the maximum over rows of
    /// the ratio between the largest and smallest entry of the row
    /// (paper Equation 2). Returns `f64::INFINITY` if some row contains a
    /// zero (or negative) entry together with a positive one.
    pub fn amplification(&self) -> f64 {
        let mut worst = 1.0_f64;
        for i in 0..self.rows {
            let row = self.row(i);
            let max = row.iter().fold(f64::MIN, |m, &v| m.max(v));
            let min = row.iter().fold(f64::MAX, |m, &v| m.min(v));
            if min <= 0.0 {
                if max > 0.0 {
                    return f64::INFINITY;
                }
                continue;
            }
            worst = worst.max(max / min);
        }
        worst
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch in add"
        );
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch in sub"
        );
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Mul<&Matrix> for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: &Matrix) -> Matrix {
        self.mul_mat(rhs).expect("shape mismatch in mul")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a}");
    }

    #[test]
    fn zeros_has_requested_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn identity_is_diagonal_ones() {
        let m = Matrix::identity(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(m[(i, j)], if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_vec_rejects_wrong_length() {
        let err = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).unwrap_err();
        assert!(matches!(err, LinalgError::ShapeMismatch { .. }));
    }

    #[test]
    fn from_rows_round_trips_indexing() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
    }

    #[test]
    fn transpose_swaps_entries() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t[(2, 0)], 3.0);
        assert_eq!(t[(0, 1)], 4.0);
    }

    #[test]
    fn mul_vec_matches_hand_computation() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let y = m.mul_vec(&[5.0, 6.0]).unwrap();
        assert_eq!(y, vec![17.0, 39.0]);
    }

    #[test]
    fn mul_vec_rejects_wrong_length() {
        let m = Matrix::identity(2);
        assert!(m.mul_vec(&[1.0]).is_err());
    }

    #[test]
    fn mul_mat_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let c = a.mul_mat(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[&[2.0, 1.0], &[4.0, 3.0]]));
    }

    #[test]
    fn mul_by_identity_is_noop() {
        let a = Matrix::from_rows(&[&[1.5, -2.0], &[0.25, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.mul_mat(&i).unwrap(), a);
        assert_eq!(i.mul_mat(&a).unwrap(), a);
    }

    #[test]
    fn norms_match_hand_computation() {
        let m = Matrix::from_rows(&[&[1.0, -2.0], &[-3.0, 4.0]]);
        assert_close(m.norm_1(), 6.0, 1e-12); // max column abs-sum: |−2|+|4|
        assert_close(m.norm_inf(), 7.0, 1e-12); // max row abs-sum: |−3|+|4|
        assert_close(m.norm_frobenius(), (30.0_f64).sqrt(), 1e-12);
        assert_close(m.max_abs(), 4.0, 1e-12);
    }

    #[test]
    fn trace_sums_diagonal() {
        let m = Matrix::from_rows(&[&[1.0, 9.0], &[9.0, 2.5]]);
        assert_close(m.trace(), 3.5, 1e-12);
    }

    #[test]
    fn column_stochastic_detection() {
        let markov = Matrix::from_rows(&[&[0.9, 0.2], &[0.1, 0.8]]);
        assert!(markov.is_column_stochastic(1e-12));
        let not = Matrix::from_rows(&[&[0.9, 0.2], &[0.2, 0.8]]);
        assert!(!not.is_column_stochastic(1e-12));
        let negative = Matrix::from_rows(&[&[1.1, 0.2], &[-0.1, 0.8]]);
        assert!(!negative.is_column_stochastic(1e-12));
    }

    #[test]
    fn amplification_of_uniform_rows_is_one() {
        let m = Matrix::filled(3, 3, 1.0 / 3.0);
        assert_close(m.amplification(), 1.0, 1e-12);
    }

    #[test]
    fn amplification_matches_gamma_diagonal() {
        // gamma-diagonal with gamma = 4, n = 3: diag 4x, off-diag x.
        let x = 1.0 / 6.0;
        let m = Matrix::from_fn(3, 3, |i, j| if i == j { 4.0 * x } else { x });
        assert_close(m.amplification(), 4.0, 1e-12);
    }

    #[test]
    fn amplification_with_zero_entry_is_infinite() {
        let m = Matrix::from_rows(&[&[0.5, 0.0], &[0.5, 1.0]]);
        assert_eq!(m.amplification(), f64::INFINITY);
    }

    #[test]
    fn symmetry_detection() {
        let s = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 5.0]]);
        assert!(s.is_symmetric(1e-12));
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 5.0]]);
        assert!(!a.is_symmetric(1e-12));
        let rect = Matrix::zeros(2, 3);
        assert!(!rect.is_symmetric(1e-12));
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[0.5, 0.5], &[0.5, 0.5]]);
        let sum = &a + &b;
        let back = &sum - &b;
        assert_eq!(back, a);
    }

    #[test]
    fn scale_mut_scales_all_entries() {
        let mut m = Matrix::identity(2);
        m.scale_mut(3.0);
        assert_eq!(m[(0, 0)], 3.0);
        assert_eq!(m[(0, 1)], 0.0);
    }
}
