//! Eigenvalue computation and condition numbers.
//!
//! The FRAPP paper bounds reconstruction error by the condition number of
//! the perturbation matrix (Theorem 1) and proves the gamma-diagonal
//! matrix optimal among symmetric Markov matrices (Section 3). Figure 4
//! of the paper plots condition numbers of each method's reconstruction
//! matrix against itemset length; this module provides the numeric
//! machinery behind that figure:
//!
//! * [`jacobi_eigenvalues`] — the cyclic Jacobi method for symmetric
//!   matrices (all eigenvalues, robust even for clustered spectra),
//! * [`power_iteration`] / [`inverse_power_iteration`] — dominant and
//!   smallest-magnitude eigenpair estimation for general matrices,
//! * [`condition_number_2`] — `σ_max/σ_min` via the spectrum of `AᵀA`,
//!   valid for *any* square matrix (MASK and C&P matrices are not
//!   symmetric in general),
//! * [`condition_number_1`] / [`condition_number_inf`] — cheap norm-based
//!   condition numbers `‖A‖·‖A⁻¹‖`.

use crate::{lu, vector, LinalgError, Matrix, Result};

/// Default iteration budget for the iterative methods.
const MAX_SWEEPS: usize = 100;
const MAX_POWER_ITERS: usize = 10_000;

/// Computes all eigenvalues of a symmetric matrix with the cyclic Jacobi
/// method, returned in ascending order.
///
/// Returns [`LinalgError::NotSymmetric`] when the input is not symmetric
/// within `1e-9` (relative to the largest entry), and
/// [`LinalgError::NonConvergence`] if the off-diagonal mass fails to
/// vanish within the sweep budget (does not happen for well-formed
/// symmetric input).
pub fn jacobi_eigenvalues(a: &Matrix) -> Result<Vec<f64>> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let scale = a.max_abs().max(1.0);
    if !a.is_symmetric(1e-9 * scale) {
        return Err(LinalgError::NotSymmetric);
    }
    let n = a.rows();
    if n == 0 {
        return Ok(Vec::new());
    }
    let mut m = a.clone();
    let tol = 1e-14 * scale * (n as f64);

    for sweep in 0..MAX_SWEEPS {
        let mut off = 0.0_f64;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m[(i, j)].abs();
            }
        }
        if off <= tol {
            let mut eig: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
            eig.sort_by(|x, y| x.partial_cmp(y).expect("eigenvalues are finite"));
            return Ok(eig);
        }
        let _ = sweep;
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= tol / (n * n) as f64 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                // Classic Jacobi rotation angle selection.
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // Update rows/columns p and q.
                for k in 0..n {
                    if k != p && k != q {
                        let akp = m[(k, p)];
                        let akq = m[(k, q)];
                        m[(k, p)] = c * akp - s * akq;
                        m[(p, k)] = m[(k, p)];
                        m[(k, q)] = s * akp + c * akq;
                        m[(q, k)] = m[(k, q)];
                    }
                }
                m[(p, p)] = app - t * apq;
                m[(q, q)] = aqq + t * apq;
                m[(p, q)] = 0.0;
                m[(q, p)] = 0.0;
            }
        }
    }
    Err(LinalgError::NonConvergence {
        iterations: MAX_SWEEPS,
    })
}

/// Estimates the dominant eigenvalue (by magnitude) and eigenvector of a
/// square matrix using power iteration.
///
/// Returns `(lambda, v)` with `‖v‖₂ = 1`. Convergence is declared when
/// successive eigenvalue estimates agree to relative `tol`.
pub fn power_iteration(a: &Matrix, tol: f64) -> Result<(f64, Vec<f64>)> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    // Deterministic, non-degenerate start vector: varying entries avoid
    // being orthogonal to the dominant eigenvector in common cases.
    let mut v: Vec<f64> = (0..n)
        .map(|i| 1.0 + (i as f64) / (n as f64 + 1.0))
        .collect();
    vector::normalize_mut(&mut v);
    let mut lambda_old = 0.0_f64;
    for it in 0..MAX_POWER_ITERS {
        let mut w = a.mul_vec(&v)?;
        let norm = vector::normalize_mut(&mut w);
        if norm == 0.0 {
            // v in the null space: dominant eigenvalue estimate is 0.
            return Ok((0.0, v));
        }
        // Rayleigh quotient gives a signed estimate.
        let av = a.mul_vec(&w)?;
        let lambda = vector::dot(&w, &av);
        if it > 0 && (lambda - lambda_old).abs() <= tol * lambda.abs().max(1e-300) {
            return Ok((lambda, w));
        }
        lambda_old = lambda;
        v = w;
    }
    Err(LinalgError::NonConvergence {
        iterations: MAX_POWER_ITERS,
    })
}

/// Estimates the smallest-magnitude eigenvalue of a square matrix via
/// inverse power iteration (power iteration on `A⁻¹` through an LU
/// factorization). Returns [`LinalgError::Singular`] when `A` cannot be
/// factored, in which case the smallest eigenvalue is 0.
pub fn inverse_power_iteration(a: &Matrix, tol: f64) -> Result<(f64, Vec<f64>)> {
    let lu = lu::LuDecomposition::new(a)?;
    let n = a.rows();
    let mut v: Vec<f64> = (0..n)
        .map(|i| 1.0 + (i as f64) / (n as f64 + 1.0))
        .collect();
    vector::normalize_mut(&mut v);
    let mut mu_old = 0.0_f64;
    for it in 0..MAX_POWER_ITERS {
        let mut w = lu.solve(&v)?;
        let norm = vector::normalize_mut(&mut w);
        if norm == 0.0 {
            return Err(LinalgError::Singular);
        }
        // Rayleigh quotient of A on the current iterate estimates the
        // smallest eigenvalue directly (with sign).
        let aw = a.mul_vec(&w)?;
        let mu = vector::dot(&w, &aw);
        if it > 0 && (mu - mu_old).abs() <= tol * mu.abs().max(1e-300) {
            return Ok((mu, w));
        }
        mu_old = mu;
        v = w;
    }
    Err(LinalgError::NonConvergence {
        iterations: MAX_POWER_ITERS,
    })
}

/// 2-norm condition number `σ_max / σ_min`, computed from the extreme
/// eigenvalues of the symmetric positive semidefinite matrix `AᵀA`
/// (σ = √λ). Works for any invertible square matrix.
///
/// For matrices up to 64×64 the full Jacobi spectrum of `AᵀA` is used
/// (exact); beyond that, power/inverse-power iteration estimates the
/// extremes, which is accurate to the requested tolerance and far
/// cheaper for the large domains FRAPP works with.
pub fn condition_number_2(a: &Matrix) -> Result<f64> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let ata = a.transpose().mul_mat(a)?;
    if a.rows() <= 64 {
        let eig = jacobi_eigenvalues(&ata)?;
        let min = eig.first().copied().unwrap_or(0.0).max(0.0);
        let max = eig.last().copied().unwrap_or(0.0).max(0.0);
        if min <= 0.0 {
            return Ok(f64::INFINITY);
        }
        Ok((max / min).sqrt())
    } else {
        let (lmax, _) = power_iteration(&ata, 1e-12)?;
        let lmin = match inverse_power_iteration(&ata, 1e-12) {
            Ok((l, _)) => l,
            Err(LinalgError::Singular) => return Ok(f64::INFINITY),
            Err(e) => return Err(e),
        };
        if lmin <= 0.0 {
            return Ok(f64::INFINITY);
        }
        Ok((lmax / lmin).sqrt())
    }
}

/// 2-norm condition number computed as `σ_max(A) · σ_max(A⁻¹)` with the
/// explicit inverse.
///
/// For *severely* ill-conditioned matrices (σ_min close to machine
/// epsilon relative to σ_max), [`condition_number_2`] loses σ_min to
/// rounding inside `AᵀA` and reports infinity. Going through the
/// inverse sidesteps that: σ_max(A⁻¹) = 1/σ_min(A) is the *largest*
/// singular value of the inverse and is computed without cancellation.
/// This is how the Cut-and-Paste condition numbers of the paper's
/// Figure 4 (~1e7 and beyond) are evaluated.
pub fn condition_number_2_robust(a: &Matrix) -> Result<f64> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let inv = match lu::inverse(a) {
        Ok(inv) => inv,
        Err(LinalgError::Singular) => return Ok(f64::INFINITY),
        Err(e) => return Err(e),
    };
    let ata = a.transpose().mul_mat(a)?;
    let (l_a, _) = power_iteration(&ata, 1e-12)?;
    let iti = inv.transpose().mul_mat(&inv)?;
    let (l_i, _) = power_iteration(&iti, 1e-12)?;
    if l_a <= 0.0 || l_i <= 0.0 {
        return Ok(f64::INFINITY);
    }
    Ok((l_a.sqrt()) * (l_i.sqrt()))
}

/// 1-norm condition number `‖A‖₁ · ‖A⁻¹‖₁`.
pub fn condition_number_1(a: &Matrix) -> Result<f64> {
    let inv = match lu::inverse(a) {
        Ok(inv) => inv,
        Err(LinalgError::Singular) => return Ok(f64::INFINITY),
        Err(e) => return Err(e),
    };
    Ok(a.norm_1() * inv.norm_1())
}

/// ∞-norm condition number `‖A‖∞ · ‖A⁻¹‖∞`.
pub fn condition_number_inf(a: &Matrix) -> Result<f64> {
    let inv = match lu::inverse(a) {
        Ok(inv) => inv,
        Err(LinalgError::Singular) => return Ok(f64::INFINITY),
        Err(e) => return Err(e),
    };
    Ok(a.norm_inf() * inv.norm_inf())
}

/// Condition number of a symmetric positive definite matrix as
/// `λ_max / λ_min` (the definition the paper uses in Section 2.3).
///
/// Returns `f64::INFINITY` if the smallest eigenvalue is not positive.
pub fn condition_number_spd(a: &Matrix) -> Result<f64> {
    let eig = jacobi_eigenvalues(a)?;
    let min = eig.first().copied().unwrap_or(0.0);
    let max = eig.last().copied().unwrap_or(0.0);
    if min <= 0.0 {
        return Ok(f64::INFINITY);
    }
    Ok(max / min)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * b.abs().max(1.0),
            "expected {b}, got {a}"
        );
    }

    #[test]
    fn jacobi_diagonal_matrix_returns_diagonal() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, -1.0]]);
        let eig = jacobi_eigenvalues(&a).unwrap();
        assert_close(eig[0], -1.0, 1e-12);
        assert_close(eig[1], 3.0, 1e-12);
    }

    #[test]
    fn jacobi_known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let eig = jacobi_eigenvalues(&a).unwrap();
        assert_close(eig[0], 1.0, 1e-12);
        assert_close(eig[1], 3.0, 1e-12);
    }

    #[test]
    fn jacobi_rejects_asymmetric() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(
            jacobi_eigenvalues(&a).unwrap_err(),
            LinalgError::NotSymmetric
        );
    }

    #[test]
    fn jacobi_gamma_diagonal_spectrum() {
        // gamma-diagonal aI + bJ has eigenvalues a (multiplicity n−1) and
        // a + nb (the Markov eigenvalue 1). Paper Section 3.
        let n = 6;
        let gamma = 19.0;
        let x = 1.0 / (gamma + (n as f64) - 1.0);
        let a = Matrix::from_fn(n, n, |i, j| if i == j { gamma * x } else { x });
        let eig = jacobi_eigenvalues(&a).unwrap();
        let expected_small = (gamma - 1.0) * x;
        for &e in &eig[..n - 1] {
            assert_close(e, expected_small, 1e-10);
        }
        assert_close(eig[n - 1], 1.0, 1e-10);
    }

    #[test]
    fn jacobi_trace_preserved() {
        let a = Matrix::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, 0.2], &[0.5, 0.2, 1.0]]);
        let eig = jacobi_eigenvalues(&a).unwrap();
        assert_close(eig.iter().sum::<f64>(), a.trace(), 1e-10);
    }

    #[test]
    fn power_iteration_finds_dominant() {
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 5.0]]);
        let (l, v) = power_iteration(&a, 1e-13).unwrap();
        assert_close(l, 5.0, 1e-9);
        assert!(v[1].abs() > 0.99);
    }

    #[test]
    fn inverse_power_iteration_finds_smallest() {
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 5.0]]);
        let (l, v) = inverse_power_iteration(&a, 1e-13).unwrap();
        assert_close(l, 2.0, 1e-9);
        assert!(v[0].abs() > 0.99);
    }

    #[test]
    fn condition_number_of_identity_is_one() {
        let i = Matrix::identity(4);
        assert_close(condition_number_2(&i).unwrap(), 1.0, 1e-9);
        assert_close(condition_number_1(&i).unwrap(), 1.0, 1e-9);
        assert_close(condition_number_inf(&i).unwrap(), 1.0, 1e-9);
    }

    #[test]
    fn condition_number_2_diagonal() {
        let a = Matrix::from_rows(&[&[10.0, 0.0], &[0.0, 0.1]]);
        assert_close(condition_number_2(&a).unwrap(), 100.0, 1e-8);
    }

    #[test]
    fn condition_number_gamma_diagonal_matches_formula() {
        // Paper Section 3: cond = (gamma + n − 1)/(gamma − 1).
        let n = 8;
        let gamma = 19.0;
        let x = 1.0 / (gamma + (n as f64) - 1.0);
        let a = Matrix::from_fn(n, n, |i, j| if i == j { gamma * x } else { x });
        let expected = (gamma + n as f64 - 1.0) / (gamma - 1.0);
        assert_close(condition_number_2(&a).unwrap(), expected, 1e-8);
        assert_close(condition_number_spd(&a).unwrap(), expected, 1e-8);
    }

    #[test]
    fn condition_number_singular_is_infinite() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        assert_eq!(condition_number_2(&a).unwrap(), f64::INFINITY);
        assert_eq!(condition_number_1(&a).unwrap(), f64::INFINITY);
    }

    #[test]
    fn large_matrix_uses_iterative_path() {
        // 80x80 gamma-diagonal: iterative path, exact formula known.
        let n = 80;
        let gamma = 19.0;
        let x = 1.0 / (gamma + (n as f64) - 1.0);
        let a = Matrix::from_fn(n, n, |i, j| if i == j { gamma * x } else { x });
        let expected = (gamma + n as f64 - 1.0) / (gamma - 1.0);
        let got = condition_number_2(&a).unwrap();
        assert_close(got, expected, 1e-6);
    }

    #[test]
    fn hilbert_5x5_condition_is_order_1e5() {
        // The paper (Section 2.3) cites ~1e5 for the 5×5 Hilbert matrix.
        let h = Matrix::from_fn(5, 5, |i, j| 1.0 / ((i + j + 1) as f64));
        let c = condition_number_2(&h).unwrap();
        assert!(c > 1e4 && c < 1e6, "got {c}");
    }
}
