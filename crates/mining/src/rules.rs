//! Association-rule generation (Agrawal, Imieliński & Swami, SIGMOD
//! 1993) over mined frequent itemsets.
//!
//! Frequent itemsets are the paper's evaluation target, but the
//! motivating application is association rules ("adult females with
//! malarial infections are also prone to contract tuberculosis"). This
//! module derives confidence-filtered rules `X ⇒ Y` from a
//! [`FrequentItemsets`] result, using whatever supports that result
//! carries — exact or privacy-preserving reconstructions alike.

use crate::apriori::FrequentItemsets;
use crate::itemset::ItemSet;

/// An association rule `antecedent ⇒ consequent`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rule {
    /// The antecedent `X`.
    pub antecedent: ItemSet,
    /// The consequent `Y` (disjoint from `X`).
    pub consequent: ItemSet,
    /// Support of `X ∪ Y`.
    pub support: f64,
    /// Confidence `sup(X ∪ Y) / sup(X)`.
    pub confidence: f64,
    /// Lift `conf / sup(Y)`; `f64::INFINITY` if `sup(Y)` is 0.
    pub lift: f64,
}

/// Generates all rules with confidence at least `min_confidence` from
/// the frequent itemsets. Rules whose antecedent or consequent support
/// is unavailable (possible in reconstructed results when a subset was
/// missed) are skipped.
pub fn generate_rules(frequent: &FrequentItemsets, min_confidence: f64) -> Vec<Rule> {
    let mut rules = Vec::new();
    for (itemset, support) in frequent.iter() {
        if itemset.len() < 2 {
            continue;
        }
        for antecedent in itemset.proper_subsets() {
            let consequent = itemset.difference(antecedent);
            let Some(sup_x) = frequent.support_of(antecedent) else {
                continue;
            };
            if sup_x <= 0.0 {
                continue;
            }
            let confidence = support / sup_x;
            if confidence >= min_confidence {
                let lift = match frequent.support_of(consequent) {
                    Some(sup_y) if sup_y > 0.0 => confidence / sup_y,
                    _ => f64::INFINITY,
                };
                rules.push(Rule {
                    antecedent,
                    consequent,
                    support,
                    confidence,
                    lift,
                });
            }
        }
    }
    // Deterministic order: by confidence descending, then lexicographic.
    rules.sort_by(|a, b| {
        b.confidence
            .partial_cmp(&a.confidence)
            .expect("finite confidences")
            .then(a.antecedent.cmp(&b.antecedent))
            .then(a.consequent.cmp(&b.consequent))
    });
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::{apriori, AprioriParams, SupportEstimator};
    use crate::itemset::row_to_mask;

    struct TestData {
        masks: Vec<u64>,
        num_items: usize,
    }

    impl SupportEstimator for TestData {
        fn num_items(&self) -> usize {
            self.num_items
        }
        fn estimate(&self, itemset: ItemSet) -> f64 {
            let hits = self
                .masks
                .iter()
                .filter(|&&m| m & itemset.0 == itemset.0)
                .count();
            hits as f64 / self.masks.len() as f64
        }
    }

    fn mined() -> FrequentItemsets {
        // Item 0 implies item 1 deterministically; item 2 independent.
        let rows: Vec<Vec<bool>> = (0..100)
            .map(|i| vec![i % 2 == 0, i % 2 == 0 || i % 5 == 1, i % 4 == 0])
            .collect();
        let t = TestData {
            masks: rows.iter().map(|r| row_to_mask(r)).collect(),
            num_items: 3,
        };
        apriori(
            &t,
            &AprioriParams {
                min_support: 0.1,
                max_length: 0,
                max_candidates: 0,
            },
        )
    }

    #[test]
    fn deterministic_implication_has_confidence_one() {
        let rules = generate_rules(&mined(), 0.9);
        let rule = rules
            .iter()
            .find(|r| {
                r.antecedent == ItemSet::singleton(0) && r.consequent == ItemSet::singleton(1)
            })
            .expect("rule 0 => 1 present");
        assert!((rule.confidence - 1.0).abs() < 1e-12);
        assert!(rule.lift > 1.0);
    }

    #[test]
    fn min_confidence_filters() {
        let all = generate_rules(&mined(), 0.0);
        let strict = generate_rules(&mined(), 0.95);
        assert!(strict.len() < all.len());
        assert!(strict.iter().all(|r| r.confidence >= 0.95));
    }

    #[test]
    fn antecedent_and_consequent_are_disjoint_and_nonempty() {
        for r in generate_rules(&mined(), 0.0) {
            assert!(!r.antecedent.is_empty());
            assert!(!r.consequent.is_empty());
            assert!(r.antecedent.intersect(r.consequent).is_empty());
        }
    }

    #[test]
    fn rules_sorted_by_confidence_descending() {
        let rules = generate_rules(&mined(), 0.0);
        for w in rules.windows(2) {
            assert!(w[0].confidence >= w[1].confidence - 1e-12);
        }
    }

    #[test]
    fn no_rules_from_single_itemsets_only() {
        let rows: Vec<Vec<bool>> = (0..10).map(|i| vec![i % 2 == 0, i % 2 == 1]).collect();
        let t = TestData {
            masks: rows.iter().map(|r| row_to_mask(r)).collect(),
            num_items: 2,
        };
        // Pairs have zero support: only singletons are frequent.
        let f = apriori(
            &t,
            &AprioriParams {
                min_support: 0.4,
                max_length: 0,
                max_candidates: 0,
            },
        );
        assert!(generate_rules(&f, 0.0).is_empty());
    }
}
