//! The Apriori algorithm (Agrawal & Srikant, VLDB 1994), parameterised
//! by a pluggable support estimator.
//!
//! The paper's privacy-preserving mining (Section 7) runs Apriori on the
//! perturbed database "with an additional support reconstruction phase
//! at the end of each pass". Abstracting the support computation behind
//! [`SupportEstimator`] lets the identical candidate-generation loop
//! serve the exact miner (ground truth) and every perturbation method.

use crate::hook::{Cancelled, MineHook, NoHook};
use crate::itemset::ItemSet;
use std::collections::{HashMap, HashSet};

/// Supplies (possibly reconstructed) fractional supports for candidate
/// itemsets.
///
/// `Sync` is required so that Apriori passes can fan candidate batches
/// out across threads; all estimators in this workspace are read-only
/// views over perturbed datasets and are trivially `Sync`.
pub trait SupportEstimator: Sync {
    /// Size of the item universe `M_b` (boolean columns).
    fn num_items(&self) -> usize;

    /// Estimated fractional support of `itemset` in the *original*
    /// database. Estimates may be negative (reconstruction noise) —
    /// such itemsets are simply infrequent.
    fn estimate(&self, itemset: ItemSet) -> f64;

    /// Batch estimation; the default maps [`SupportEstimator::estimate`]
    /// over the slice, but implementations may override with a shared
    /// dataset scan.
    fn estimate_all(&self, itemsets: &[ItemSet]) -> Vec<f64> {
        itemsets.iter().map(|&i| self.estimate(i)).collect()
    }
}

/// Apriori parameters.
#[derive(Debug, Clone, Copy)]
pub struct AprioriParams {
    /// Minimum fractional support `sup_min` (the paper uses 2%).
    pub min_support: f64,
    /// Maximum itemset length mined (0 = unbounded up to `M_b`).
    pub max_length: usize,
    /// Safety valve: abort candidate generation for a pass that would
    /// exceed this many candidates (0 = unlimited). Noisy reconstruction
    /// (ill-conditioned baselines) can admit floods of false positives;
    /// the cap keeps experiment runs bounded.
    pub max_candidates: usize,
}

impl Default for AprioriParams {
    fn default() -> Self {
        AprioriParams {
            min_support: 0.02,
            max_length: 0,
            max_candidates: 0,
        }
    }
}

/// The frequent itemsets discovered in one mining run, grouped by
/// length, with their (estimated) supports.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FrequentItemsets {
    by_length: Vec<Vec<(ItemSet, f64)>>,
}

impl FrequentItemsets {
    /// Frequent itemsets of length `k` (1-based; empty slice if none).
    pub fn of_length(&self, k: usize) -> &[(ItemSet, f64)] {
        if k == 0 || k > self.by_length.len() {
            &[]
        } else {
            &self.by_length[k - 1]
        }
    }

    /// The longest length with at least one frequent itemset.
    pub fn max_length(&self) -> usize {
        self.by_length.len()
    }

    /// Number of frequent itemsets per length (index 0 = length 1) —
    /// the row format of the paper's Table 3.
    pub fn length_profile(&self) -> Vec<usize> {
        self.by_length.iter().map(Vec::len).collect()
    }

    /// Total number of frequent itemsets.
    pub fn total(&self) -> usize {
        self.by_length.iter().map(Vec::len).sum()
    }

    /// Support of a specific itemset, if frequent.
    pub fn support_of(&self, itemset: ItemSet) -> Option<f64> {
        let k = itemset.len();
        self.of_length(k)
            .iter()
            .find(|(i, _)| *i == itemset)
            .map(|&(_, s)| s)
    }

    /// Iterates all frequent itemsets with their supports.
    pub fn iter(&self) -> impl Iterator<Item = (ItemSet, f64)> + '_ {
        self.by_length.iter().flatten().copied()
    }

    /// The frequent itemsets of length `k` as a lookup set.
    pub fn set_of_length(&self, k: usize) -> HashSet<ItemSet> {
        self.of_length(k).iter().map(|&(i, _)| i).collect()
    }

    /// Appends the next level (itemsets one longer than the current
    /// maximum) — used by the miners to assemble results.
    pub fn push_level(&mut self, mut level: Vec<(ItemSet, f64)>) {
        level.sort_by_key(|&(i, _)| i);
        self.by_length.push(level);
    }
}

/// Runs Apriori: returns all itemsets whose estimated support reaches
/// `params.min_support`, level by level.
pub fn apriori(estimator: &dyn SupportEstimator, params: &AprioriParams) -> FrequentItemsets {
    // NoHook never cancels, so the hooked run cannot return Err; an
    // (unreachable) cancellation degrades to the empty result rather
    // than introducing a panic path into a library entry point.
    apriori_with_hook(estimator, params, &NoHook).unwrap_or_default()
}

/// [`apriori`] under a [`MineHook`]: the hook is polled between levels
/// (cancellation checkpoint) and told, after each completed pass, how
/// many levels are done and how many candidates have been pruned so
/// far. Returns [`Cancelled`] — discarding the partial result — when
/// the hook asks to stop.
pub fn apriori_with_hook(
    estimator: &dyn SupportEstimator,
    params: &AprioriParams,
    hook: &dyn MineHook,
) -> Result<FrequentItemsets, Cancelled> {
    let max_len = if params.max_length == 0 {
        estimator.num_items()
    } else {
        params.max_length
    };
    let mut result = FrequentItemsets::default();
    let mut pruned = 0usize;
    if !hook.keep_going() {
        return Err(Cancelled);
    }

    // Pass 1: single items.
    let singles: Vec<ItemSet> = (0..estimator.num_items()).map(ItemSet::singleton).collect();
    let generated = singles.len();
    let supports = estimate_parallel(estimator, &singles);
    let mut frontier: Vec<(ItemSet, f64)> = singles
        .into_iter()
        .zip(supports)
        .filter(|&(_, s)| s >= params.min_support)
        .collect();
    pruned += generated - frontier.len();

    let mut k = 1usize;
    while !frontier.is_empty() {
        result.push_level(frontier.clone());
        hook.progress(k, pruned);
        if k >= max_len {
            break;
        }
        if !hook.keep_going() {
            return Err(Cancelled);
        }
        let candidates = generate_candidates(&frontier);
        if candidates.is_empty() {
            break;
        }
        if params.max_candidates != 0 && candidates.len() > params.max_candidates {
            break;
        }
        let generated = candidates.len();
        let supports = estimate_parallel(estimator, &candidates);
        frontier = candidates
            .into_iter()
            .zip(supports)
            .filter(|&(_, s)| s >= params.min_support)
            .collect();
        pruned += generated - frontier.len();
        k += 1;
    }
    Ok(result)
}

/// Fans candidate support estimation out across threads when the batch
/// is large enough to amortise the spawn cost; preserves input order.
fn estimate_parallel(estimator: &dyn SupportEstimator, candidates: &[ItemSet]) -> Vec<f64> {
    const PARALLEL_THRESHOLD: usize = 64;
    let workers = std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1);
    if candidates.len() < PARALLEL_THRESHOLD || workers < 2 {
        return estimator.estimate_all(candidates);
    }
    let chunk = candidates.len().div_ceil(workers);
    let mut out = Vec::with_capacity(candidates.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = candidates
            .chunks(chunk)
            .map(|c| scope.spawn(move || estimator.estimate_all(c)))
            .collect();
        for h in handles {
            out.extend(h.join().expect("estimation worker panicked"));
        }
    });
    out
}

/// Classic Apriori-gen: join frequent `k`-itemsets pairwise into
/// `(k+1)`-candidates and prune any candidate with an infrequent
/// `k`-subset.
fn generate_candidates(frequent: &[(ItemSet, f64)]) -> Vec<ItemSet> {
    let frequent_set: HashSet<ItemSet> = frequent.iter().map(|&(i, _)| i).collect();
    let k = match frequent.first() {
        Some((i, _)) => i.len(),
        None => return Vec::new(),
    };
    let mut seen: HashMap<ItemSet, ()> = HashMap::new();
    let mut out = Vec::new();
    for (a_idx, &(a, _)) in frequent.iter().enumerate() {
        for &(b, _) in &frequent[a_idx + 1..] {
            let u = a.union(b);
            if u.len() != k + 1 || seen.contains_key(&u) {
                continue;
            }
            seen.insert(u, ());
            // Prune: every k-subset must be frequent.
            if u.remove_one_subsets().all(|s| frequent_set.contains(&s)) {
                out.push(u);
            }
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::itemset::row_to_mask;

    /// Exact estimator over boolean rows for tests.
    struct TestData {
        masks: Vec<u64>,
        num_items: usize,
    }

    impl TestData {
        fn new(rows: &[&[bool]]) -> Self {
            TestData {
                masks: rows.iter().map(|r| row_to_mask(r)).collect(),
                num_items: rows.first().map_or(0, |r| r.len()),
            }
        }
    }

    impl SupportEstimator for TestData {
        fn num_items(&self) -> usize {
            self.num_items
        }

        fn estimate(&self, itemset: ItemSet) -> f64 {
            if self.masks.is_empty() {
                return 0.0;
            }
            let hits = self
                .masks
                .iter()
                .filter(|&&m| m & itemset.0 == itemset.0)
                .count();
            hits as f64 / self.masks.len() as f64
        }
    }

    #[test]
    fn mines_textbook_example() {
        // 4 transactions over 5 items; min support 50% (2 of 4).
        let t = TestData::new(&[
            &[true, true, false, false, true],
            &[false, true, false, true, false],
            &[false, true, true, false, false],
            &[true, true, false, true, false],
        ]);
        let params = AprioriParams {
            min_support: 0.5,
            max_length: 0,
            max_candidates: 0,
        };
        let result = apriori(&t, &params);
        // Frequent singles: 0 (2/4), 1 (4/4), 3 (2/4). Items 2, 4 have 1/4.
        assert_eq!(result.set_of_length(1).len(), 3);
        assert!(result.support_of(ItemSet::singleton(1)).unwrap() == 1.0);
        // Frequent pairs: {0,1} (2/4), {1,3} (2/4). {0,3} only 1/4.
        let pairs = result.set_of_length(2);
        assert!(pairs.contains(&ItemSet::from_items(&[0, 1])));
        assert!(pairs.contains(&ItemSet::from_items(&[1, 3])));
        assert_eq!(pairs.len(), 2);
        // No frequent triples: candidate {0,1,3} pruned because {0,3}
        // infrequent.
        assert_eq!(result.of_length(3).len(), 0);
        assert_eq!(result.max_length(), 2);
    }

    #[test]
    fn empty_data_mines_nothing() {
        let t = TestData {
            masks: vec![],
            num_items: 4,
        };
        let result = apriori(&t, &AprioriParams::default());
        assert_eq!(result.total(), 0);
        assert_eq!(result.length_profile(), Vec::<usize>::new());
    }

    #[test]
    fn max_length_truncates() {
        let t = TestData::new(&[&[true, true, true], &[true, true, true]]);
        let full = apriori(
            &t,
            &AprioriParams {
                min_support: 0.5,
                max_length: 0,
                max_candidates: 0,
            },
        );
        assert_eq!(full.length_profile(), vec![3, 3, 1]);
        let capped = apriori(
            &t,
            &AprioriParams {
                min_support: 0.5,
                max_length: 2,
                max_candidates: 0,
            },
        );
        assert_eq!(capped.length_profile(), vec![3, 3]);
    }

    #[test]
    fn min_support_one_keeps_universal_itemsets() {
        let t = TestData::new(&[&[true, false, true], &[true, true, true]]);
        let result = apriori(
            &t,
            &AprioriParams {
                min_support: 1.0,
                max_length: 0,
                max_candidates: 0,
            },
        );
        // Items 0 and 2 appear in all rows; the pair {0,2} as well.
        assert_eq!(result.length_profile(), vec![2, 1]);
        assert!(result.support_of(ItemSet::from_items(&[0, 2])).is_some());
    }

    #[test]
    fn downward_closure_holds() {
        // Every subset of a frequent itemset must itself be frequent.
        let rows: Vec<Vec<bool>> = (0..64u32)
            .map(|i| (0..6).map(|b| i >> b & 1 == 1 || i % 3 == 0).collect())
            .collect();
        let refs: Vec<&[bool]> = rows.iter().map(Vec::as_slice).collect();
        let t = TestData::new(&refs);
        let result = apriori(
            &t,
            &AprioriParams {
                min_support: 0.3,
                max_length: 0,
                max_candidates: 0,
            },
        );
        for (itemset, _) in result.iter() {
            for sub in itemset.remove_one_subsets() {
                if !sub.is_empty() {
                    assert!(
                        result.support_of(sub).is_some(),
                        "subset {sub} of frequent {itemset} missing"
                    );
                }
            }
        }
    }

    #[test]
    fn supports_are_recorded_exactly() {
        let t = TestData::new(&[&[true, true], &[true, false], &[false, true], &[true, true]]);
        let result = apriori(
            &t,
            &AprioriParams {
                min_support: 0.25,
                max_length: 0,
                max_candidates: 0,
            },
        );
        assert_eq!(result.support_of(ItemSet::singleton(0)), Some(0.75));
        assert_eq!(result.support_of(ItemSet::from_items(&[0, 1])), Some(0.5));
    }

    #[test]
    fn hooked_run_matches_plain_run_and_reports_progress() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        struct Recorder {
            levels: AtomicUsize,
            pruned: AtomicUsize,
        }
        impl crate::hook::MineHook for Recorder {
            fn progress(&self, levels: usize, pruned: usize) {
                self.levels.store(levels, Ordering::Relaxed);
                self.pruned.store(pruned, Ordering::Relaxed);
            }
        }
        let t = TestData::new(&[
            &[true, true, false, false, true],
            &[false, true, false, true, false],
            &[false, true, true, false, false],
            &[true, true, false, true, false],
        ]);
        let params = AprioriParams {
            min_support: 0.5,
            max_length: 0,
            max_candidates: 0,
        };
        let rec = Recorder {
            levels: AtomicUsize::new(0),
            pruned: AtomicUsize::new(0),
        };
        let hooked = apriori_with_hook(&t, &params, &rec).unwrap();
        let plain = apriori(&t, &params);
        assert_eq!(hooked.length_profile(), plain.length_profile());
        assert_eq!(rec.levels.load(Ordering::Relaxed), hooked.max_length());
        // Pass 1 prunes items 2 and 4 (5 singles, 3 frequent); pass 2
        // prunes {0,3} (3 candidates, 2 frequent).
        assert_eq!(rec.pruned.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn cancelling_hook_aborts_between_levels() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        /// Cancels after observing `allow` checkpoints.
        struct CancelAfter {
            polls: AtomicUsize,
            allow: usize,
        }
        impl crate::hook::MineHook for CancelAfter {
            fn keep_going(&self) -> bool {
                self.polls.fetch_add(1, Ordering::Relaxed) < self.allow
            }
        }
        let t = TestData::new(&[&[true, true, true], &[true, true, true]]);
        let params = AprioriParams {
            min_support: 0.5,
            max_length: 0,
            max_candidates: 0,
        };
        // Cancelled before pass 1 even starts.
        let hook = CancelAfter {
            polls: AtomicUsize::new(0),
            allow: 0,
        };
        assert_eq!(
            apriori_with_hook(&t, &params, &hook),
            Err(crate::hook::Cancelled)
        );
        // Cancelled between level 1 and level 2.
        let hook = CancelAfter {
            polls: AtomicUsize::new(0),
            allow: 1,
        };
        assert_eq!(
            apriori_with_hook(&t, &params, &hook),
            Err(crate::hook::Cancelled)
        );
    }

    #[test]
    fn length_profile_matches_of_length() {
        let t = TestData::new(&[&[true, true, false], &[true, true, true]]);
        let result = apriori(
            &t,
            &AprioriParams {
                min_support: 0.5,
                max_length: 0,
                max_candidates: 0,
            },
        );
        let profile = result.length_profile();
        for (i, &count) in profile.iter().enumerate() {
            assert_eq!(result.of_length(i + 1).len(), count);
        }
        assert_eq!(result.of_length(0).len(), 0);
        assert_eq!(result.of_length(99).len(), 0);
    }
}
