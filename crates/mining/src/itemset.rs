//! Compact itemsets over the boolean item view.
//!
//! An *item* is one boolean column of the categorical database's boolean
//! mapping — i.e. one `(attribute, category)` pair. An *itemset* is a
//! set of items, stored as a `u64` bitmask (the paper's datasets have
//! `M_b = 23` and `27` items, comfortably within 64).

/// A set of items as a `u64` bitmask. Item `i` is bit `i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ItemSet(pub u64);

impl ItemSet {
    /// The empty itemset.
    pub const EMPTY: ItemSet = ItemSet(0);

    /// Singleton itemset `{item}`.
    pub fn singleton(item: usize) -> Self {
        debug_assert!(item < 64);
        ItemSet(1u64 << item)
    }

    /// Builds an itemset from item indices.
    pub fn from_items(items: &[usize]) -> Self {
        let mut mask = 0u64;
        for &i in items {
            debug_assert!(i < 64);
            mask |= 1u64 << i;
        }
        ItemSet(mask)
    }

    /// Number of items (popcount).
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the itemset is empty.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Whether `self` contains `other` as a subset.
    pub fn contains(&self, other: ItemSet) -> bool {
        self.0 & other.0 == other.0
    }

    /// Whether the item `i` is present.
    pub fn has_item(&self, i: usize) -> bool {
        self.0 >> i & 1 == 1
    }

    /// Union of two itemsets.
    pub fn union(&self, other: ItemSet) -> ItemSet {
        ItemSet(self.0 | other.0)
    }

    /// Intersection of two itemsets.
    pub fn intersect(&self, other: ItemSet) -> ItemSet {
        ItemSet(self.0 & other.0)
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: ItemSet) -> ItemSet {
        ItemSet(self.0 & !other.0)
    }

    /// Iterates the item indices in ascending order.
    pub fn items(&self) -> impl Iterator<Item = usize> + '_ {
        let mut rest = self.0;
        std::iter::from_fn(move || {
            if rest == 0 {
                None
            } else {
                let i = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                Some(i)
            }
        })
    }

    /// Collects the item indices into a vector.
    pub fn to_vec(&self) -> Vec<usize> {
        self.items().collect()
    }

    /// Iterates all subsets obtained by removing exactly one item — the
    /// `(k−1)`-subsets used by the Apriori prune step.
    pub fn remove_one_subsets(&self) -> impl Iterator<Item = ItemSet> + '_ {
        let mask = self.0;
        self.items().map(move |i| ItemSet(mask & !(1u64 << i)))
    }

    /// Iterates every non-empty *proper* subset (for rule generation).
    /// Exponential in `len()`; intended for the short itemsets of
    /// association-rule mining.
    pub fn proper_subsets(&self) -> Vec<ItemSet> {
        let items = self.to_vec();
        let k = items.len();
        let mut out = Vec::with_capacity((1usize << k).saturating_sub(2));
        for pattern in 1..(1u64 << k) {
            if pattern == (1u64 << k) - 1 {
                continue; // skip the full set
            }
            let mut mask = 0u64;
            for (bit, &item) in items.iter().enumerate() {
                if pattern >> bit & 1 == 1 {
                    mask |= 1u64 << item;
                }
            }
            out.push(ItemSet(mask));
        }
        out
    }
}

impl std::fmt::Display for ItemSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (n, i) in self.items().enumerate() {
            if n > 0 {
                write!(f, ",")?;
            }
            write!(f, "{i}")?;
        }
        write!(f, "}}")
    }
}

/// Converts a boolean row into its item bitmask.
pub fn row_to_mask(row: &[bool]) -> u64 {
    debug_assert!(row.len() <= 64, "item universe must fit in 64 bits");
    row.iter()
        .enumerate()
        .fold(0u64, |m, (i, &b)| if b { m | 1u64 << i } else { m })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_and_membership() {
        let s = ItemSet::singleton(5);
        assert_eq!(s.len(), 1);
        assert!(s.has_item(5));
        assert!(!s.has_item(4));
    }

    #[test]
    fn from_items_round_trips() {
        let s = ItemSet::from_items(&[3, 17, 60]);
        assert_eq!(s.to_vec(), vec![3, 17, 60]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn duplicate_items_collapse() {
        let s = ItemSet::from_items(&[2, 2, 2]);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn set_algebra() {
        let a = ItemSet::from_items(&[1, 2, 3]);
        let b = ItemSet::from_items(&[3, 4]);
        assert_eq!(a.union(b).to_vec(), vec![1, 2, 3, 4]);
        assert_eq!(a.intersect(b).to_vec(), vec![3]);
        assert_eq!(a.difference(b).to_vec(), vec![1, 2]);
        assert!(a.contains(ItemSet::from_items(&[1, 3])));
        assert!(!a.contains(b));
        assert!(a.contains(ItemSet::EMPTY));
    }

    #[test]
    fn remove_one_subsets_yields_k_subsets() {
        let s = ItemSet::from_items(&[0, 4, 9]);
        let subs: Vec<_> = s.remove_one_subsets().collect();
        assert_eq!(subs.len(), 3);
        for sub in &subs {
            assert_eq!(sub.len(), 2);
            assert!(s.contains(*sub));
        }
    }

    #[test]
    fn proper_subsets_count() {
        let s = ItemSet::from_items(&[2, 5, 11]);
        let subs = s.proper_subsets();
        // 2^3 − 2 (skip empty handled by range start, skip full).
        assert_eq!(subs.len(), 6);
        assert!(subs
            .iter()
            .all(|x| s.contains(*x) && !x.is_empty() && *x != s));
    }

    #[test]
    fn display_formats_items() {
        let s = ItemSet::from_items(&[1, 9]);
        assert_eq!(format!("{s}"), "{1,9}");
    }

    #[test]
    fn row_to_mask_matches_bits() {
        let row = vec![true, false, false, true];
        assert_eq!(row_to_mask(&row), 0b1001);
    }
}
