//! Bayes-optimal classification over a (reconstructed) joint
//! distribution — the paper's second mining workload (Section 7 runs
//! a classifier over the privacy-preserving reconstruction).
//!
//! Given per-domain-cell counts, the Bayes-optimal rule predicts, for
//! every combination of non-target attribute values (a *feature cell*),
//! the target class with the largest joint mass. Training on the
//! reconstructed distribution and evaluating on the exact one measures
//! how much classification signal the perturbation preserved; the
//! majority-class baseline anchors the comparison.

use frapp_core::schema::Schema;

/// Summary of a Bayes-optimal classifier trained and evaluated by
/// resubstitution on one distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassifierReport {
    /// Index of the target (class) attribute.
    pub target: usize,
    /// Cardinality of the target attribute.
    pub num_classes: usize,
    /// Class priors (target marginal, normalised; zeros when empty).
    pub priors: Vec<f64>,
    /// Resubstitution accuracy of the Bayes-optimal rule.
    pub accuracy: f64,
    /// Accuracy of always predicting the largest-prior class.
    pub majority_accuracy: f64,
    /// Feature cells with non-zero mass.
    pub feature_cells: usize,
    /// Total mass (sum of positive counts).
    pub total_weight: f64,
}

/// Folds the non-target attribute values of `record` into a dense
/// feature-cell index in `0..domain_size/|target|`.
fn feature_index(record: &[u32], target: usize, cards: &[usize]) -> usize {
    let mut key = 0usize;
    for (j, &v) in record.iter().enumerate() {
        if j == target {
            continue;
        }
        key = key * cards[j] + v as usize;
    }
    key
}

/// Per-feature-cell class mass: `table[cell * num_classes + class]`.
/// Negative counts (possible in unclamped reconstructions) are treated
/// as zero mass.
fn class_table(schema: &Schema, counts: &[f64], target: usize) -> (Vec<f64>, usize, usize) {
    assert!(
        target < schema.num_attributes(),
        "target attribute in range"
    );
    assert_eq!(counts.len(), schema.domain_size(), "one count per cell");
    let cards: Vec<usize> = (0..schema.num_attributes())
        .map(|j| schema.cardinality(j) as usize)
        .collect();
    let num_classes = cards[target];
    let feature_domain = schema.domain_size() / num_classes;
    let mut table = vec![0.0f64; feature_domain * num_classes];
    for (index, &count) in counts.iter().enumerate() {
        if count <= 0.0 {
            continue;
        }
        let record = schema.decode(index);
        let cell = feature_index(&record, target, &cards);
        table[cell * num_classes + record[target] as usize] += count;
    }
    (table, feature_domain, num_classes)
}

/// Trains the Bayes-optimal rule: for each feature cell the class with
/// the largest mass (deterministic ties broken toward the lowest class
/// index; empty cells also predict class 0).
pub fn bayes_rule(schema: &Schema, counts: &[f64], target: usize) -> Vec<u32> {
    let (table, feature_domain, num_classes) = class_table(schema, counts, target);
    (0..feature_domain)
        .map(|cell| {
            let row = &table[cell * num_classes..(cell + 1) * num_classes];
            let mut best = 0usize;
            for (c, &w) in row.iter().enumerate() {
                if w > row[best] {
                    best = c;
                }
            }
            best as u32
        })
        .collect()
}

/// Evaluates a per-feature-cell `rule` (as returned by [`bayes_rule`],
/// possibly trained on a *different* distribution) against the
/// distribution in `counts`: the mass fraction it classifies correctly.
pub fn rule_accuracy(schema: &Schema, counts: &[f64], rule: &[u32], target: usize) -> f64 {
    let (table, feature_domain, num_classes) = class_table(schema, counts, target);
    assert_eq!(
        rule.len(),
        feature_domain,
        "one prediction per feature cell"
    );
    let total: f64 = table.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let correct: f64 = (0..feature_domain)
        .map(|cell| table[cell * num_classes + rule[cell] as usize])
        .sum();
    correct / total
}

/// Trains and resubstitution-evaluates the Bayes-optimal rule on one
/// distribution, reporting priors and the majority-class baseline.
pub fn bayes_classify(schema: &Schema, counts: &[f64], target: usize) -> ClassifierReport {
    let (table, feature_domain, num_classes) = class_table(schema, counts, target);
    let mut priors = vec![0.0f64; num_classes];
    let mut correct = 0.0f64;
    let mut feature_cells = 0usize;
    for cell in 0..feature_domain {
        let row = &table[cell * num_classes..(cell + 1) * num_classes];
        let mut best = 0.0f64;
        let mut mass = 0.0f64;
        for (c, &w) in row.iter().enumerate() {
            priors[c] += w;
            mass += w;
            if w > best {
                best = w;
            }
        }
        if mass > 0.0 {
            feature_cells += 1;
        }
        correct += best;
    }
    let total: f64 = priors.iter().sum();
    let (accuracy, majority_accuracy) = if total > 0.0 {
        let majority = priors.iter().cloned().fold(0.0f64, f64::max);
        (correct / total, majority / total)
    } else {
        (0.0, 0.0)
    };
    if total > 0.0 {
        for p in &mut priors {
            *p /= total;
        }
    }
    ClassifierReport {
        target,
        num_classes,
        priors,
        accuracy,
        majority_accuracy,
        feature_cells,
        total_weight: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frapp_core::perturb::{GammaDiagonal, Perturber};
    use frapp_core::Dataset;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn schema() -> Schema {
        Schema::new(vec![("f1", 3), ("f2", 2), ("class", 2)]).unwrap()
    }

    /// Class is 1 exactly when f1 == 1 (30% of records); f2 is noise
    /// correlated with nothing.
    fn counts() -> Vec<f64> {
        let sc = schema();
        let mut counts = vec![0.0f64; sc.domain_size()];
        for i in 0..1000u32 {
            let f1 = match i % 10 {
                0..=4 => 0,
                5..=7 => 1,
                _ => 2,
            };
            let f2 = i % 2;
            let class = u32::from(f1 == 1);
            counts[sc.encode(&[f1, f2, class]).unwrap()] += 1.0;
        }
        counts
    }

    #[test]
    fn separable_data_classifies_perfectly() {
        let sc = schema();
        let report = bayes_classify(&sc, &counts(), 2);
        assert_eq!(report.num_classes, 2);
        assert!((report.accuracy - 1.0).abs() < 1e-12);
        assert!((report.priors[0] - 0.7).abs() < 1e-12);
        assert!((report.priors[1] - 0.3).abs() < 1e-12);
        assert!((report.majority_accuracy - 0.7).abs() < 1e-12);
        assert_eq!(report.feature_cells, 6);
        assert!((report.total_weight - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn rule_trained_equals_resubstitution_accuracy() {
        let sc = schema();
        let c = counts();
        let rule = bayes_rule(&sc, &c, 2);
        let acc = rule_accuracy(&sc, &c, &rule, 2);
        let report = bayes_classify(&sc, &c, 2);
        assert!((acc - report.accuracy).abs() < 1e-12);
    }

    #[test]
    fn ties_and_empty_cells_predict_lowest_class() {
        let sc = Schema::new(vec![("f", 2), ("class", 2)]).unwrap();
        // f=0: tie between classes; f=1: empty.
        let mut c = vec![0.0f64; sc.domain_size()];
        c[sc.encode(&[0, 0]).unwrap()] = 5.0;
        c[sc.encode(&[0, 1]).unwrap()] = 5.0;
        let rule = bayes_rule(&sc, &c, 1);
        assert_eq!(rule, vec![0, 0]);
    }

    #[test]
    fn empty_distribution_reports_zero() {
        let sc = schema();
        let report = bayes_classify(&sc, &vec![0.0; sc.domain_size()], 2);
        assert_eq!(report.accuracy, 0.0);
        assert_eq!(report.feature_cells, 0);
        assert_eq!(report.total_weight, 0.0);
    }

    #[test]
    fn rule_survives_perturbation_and_reconstruction() {
        // Train on a clamped reconstruction of perturbed data, evaluate
        // on the exact distribution: the separable pattern must survive.
        let sc = schema();
        let exact = counts();
        let mut records = Vec::new();
        for (index, &count) in exact.iter().enumerate() {
            let r = sc.decode(index);
            for _ in 0..count as usize {
                records.push(r.clone());
            }
        }
        let ds = Dataset::new(schema(), records).unwrap();
        let gd = GammaDiagonal::new(ds.schema(), 19.0).unwrap();
        let mut rng = StdRng::seed_from_u64(26);
        let perturbed = gd.perturb_dataset(ds.records(), &mut rng).unwrap();
        let mut perturbed_counts = vec![0.0f64; sc.domain_size()];
        for r in &perturbed {
            perturbed_counts[sc.encode(r).unwrap()] += 1.0;
        }
        let n: f64 = perturbed_counts.iter().sum();
        let mut recon = frapp_core::reconstruct::GammaDiagonalReconstructor::new(&gd)
            .reconstruct(&perturbed_counts);
        frapp_core::reconstruct::clamp_counts(&mut recon, n);
        let rule = bayes_rule(&sc, &recon, 2);
        let acc = rule_accuracy(&sc, &exact, &rule, 2);
        assert!(acc > 0.95, "reconstructed-rule accuracy {acc}");
    }
}
