//! FP-growth (Han, Pei & Yin, SIGMOD 2000): frequent-itemset mining
//! without candidate generation.
//!
//! The paper's privacy-preserving loop is built around Apriori because
//! support *reconstruction* happens per candidate; but the exact
//! ground-truth pass — which every experiment needs — has no such
//! constraint. FP-growth compresses the dataset into a prefix tree and
//! mines it recursively, typically much faster than level-wise
//! counting. The result type is the same [`FrequentItemsets`], so the
//! two miners cross-validate each other (see the property tests).

use crate::apriori::FrequentItemsets;
use crate::hook::{Cancelled, MineHook, NoHook};
use crate::itemset::ItemSet;

/// An FP-tree node; nodes live in an arena indexed by `usize`.
#[derive(Debug, Clone)]
struct Node {
    item: usize,
    count: usize,
    parent: usize,
    /// Child links as (item, node) pairs; fan-out is small for
    /// categorical data, so a sorted Vec beats a HashMap here.
    children: Vec<(usize, usize)>,
}

/// An FP-tree over items `0..num_items`, counting transaction masks.
struct FpTree {
    arena: Vec<Node>,
    /// All nodes carrying each item (the "header table").
    header: Vec<Vec<usize>>,
    /// Item order: position in the frequency-descending ordering.
    rank: Vec<usize>,
}

const ROOT: usize = 0;
const NO_ITEM: usize = usize::MAX;

impl FpTree {
    fn new(num_items: usize, rank: Vec<usize>) -> Self {
        FpTree {
            arena: vec![Node {
                item: NO_ITEM,
                count: 0,
                parent: ROOT,
                children: Vec::new(),
            }],
            header: vec![Vec::new(); num_items],
            rank,
        }
    }

    /// Inserts a transaction given as item list already filtered to
    /// frequent items; sorts by the tree's canonical rank.
    fn insert(&mut self, items: &mut [usize], count: usize) {
        items.sort_by_key(|&i| self.rank[i]);
        let mut at = ROOT;
        for &item in items.iter() {
            let found = self.arena[at]
                .children
                .iter()
                .find(|&&(i, _)| i == item)
                .map(|&(_, n)| n);
            at = match found {
                Some(child) => {
                    self.arena[child].count += count;
                    child
                }
                None => {
                    let idx = self.arena.len();
                    self.arena.push(Node {
                        item,
                        count,
                        parent: at,
                        children: Vec::new(),
                    });
                    self.arena[at].children.push((item, idx));
                    self.header[item].push(idx);
                    idx
                }
            };
        }
    }

    /// Walks from a node to the root, collecting the prefix path items.
    fn prefix_path(&self, mut node: usize) -> Vec<usize> {
        let mut path = Vec::new();
        node = self.arena[node].parent;
        while node != ROOT {
            path.push(self.arena[node].item);
            node = self.arena[node].parent;
        }
        path
    }
}

/// Mines all itemsets with count ≥ `min_count` from transaction masks.
///
/// `masks` holds one `u64` bitmask per transaction (bit `i` = item `i`
/// present); `num_items ≤ 64`. Supports in the returned
/// [`FrequentItemsets`] are fractions of `masks.len()`.
pub fn fp_growth(masks: &[u64], num_items: usize, min_support: f64) -> FrequentItemsets {
    let cells: Vec<(u64, usize)> = masks.iter().map(|&m| (m, 1)).collect();
    // NoHook never cancels, so the hooked miner cannot fail here.
    fp_growth_from_counts(&cells, num_items, min_support, &NoHook).unwrap_or_default()
}

/// Mines weighted transactions: each `(mask, count)` cell stands for
/// `count` identical transactions. This is the natural shape of a
/// reconstructed distribution, where the server holds per-domain-cell
/// counts rather than individual records. The `hook` is polled between
/// recursion steps; returning `false` abandons the run with
/// [`Cancelled`]. Supports are fractions of `Σ count`.
pub fn fp_growth_from_counts(
    cells: &[(u64, usize)],
    num_items: usize,
    min_support: f64,
    hook: &dyn MineHook,
) -> Result<FrequentItemsets, Cancelled> {
    assert!(num_items <= 64, "item universe must fit in a u64 mask");
    let n: usize = cells.iter().map(|&(_, c)| c).sum();
    let mut found: Vec<(ItemSet, usize)> = Vec::new();
    if n > 0 {
        if !hook.keep_going() {
            return Err(Cancelled);
        }
        let min_count = (min_support * n as f64).ceil().max(1.0) as usize;
        // Global item frequencies.
        let mut freq = vec![0usize; num_items];
        for &(m, count) in cells {
            let mut rest = m;
            while rest != 0 {
                freq[rest.trailing_zeros() as usize] += count;
                rest &= rest - 1;
            }
        }
        // Canonical order: frequency-descending, item-ascending ties.
        let mut order: Vec<usize> = (0..num_items).collect();
        order.sort_by(|&a, &b| freq[b].cmp(&freq[a]).then(a.cmp(&b)));
        let mut rank = vec![0usize; num_items];
        for (pos, &item) in order.iter().enumerate() {
            rank[item] = pos;
        }
        // Build the initial tree from frequent items only.
        let mut tree = FpTree::new(num_items, rank);
        let mut scratch = Vec::with_capacity(num_items);
        for &(m, count) in cells {
            scratch.clear();
            let mut rest = m;
            while rest != 0 {
                let item = rest.trailing_zeros() as usize;
                if freq[item] >= min_count {
                    scratch.push(item);
                }
                rest &= rest - 1;
            }
            if !scratch.is_empty() {
                tree.insert(&mut scratch, count);
            }
        }
        let mut progress = MineProgress::default();
        mine_tree(
            &tree,
            &freq,
            min_count,
            ItemSet::EMPTY,
            hook,
            &mut progress,
            &mut found,
        )?;
    }

    // Repackage as FrequentItemsets grouped by length.
    let mut by_length: Vec<Vec<(ItemSet, f64)>> = Vec::new();
    for (itemset, count) in found {
        let k = itemset.len();
        while by_length.len() < k {
            by_length.push(Vec::new());
        }
        by_length[k - 1].push((itemset, count as f64 / n as f64));
    }
    while by_length.last().is_some_and(Vec::is_empty) {
        by_length.pop();
    }
    let mut out = FrequentItemsets::default();
    for level in by_length {
        out.push_level(level);
    }
    Ok(out)
}

/// Cumulative work counters threaded through the recursion so the hook
/// sees monotone totals regardless of tree shape.
#[derive(Default)]
struct MineProgress {
    /// Conditional trees fully mined (recursion steps completed).
    steps: usize,
    /// Candidate items discarded for falling below the threshold.
    pruned: usize,
}

/// Recursive FP-growth over a (conditional) tree.
fn mine_tree(
    tree: &FpTree,
    freq: &[usize],
    min_count: usize,
    suffix: ItemSet,
    hook: &dyn MineHook,
    progress: &mut MineProgress,
    out: &mut Vec<(ItemSet, usize)>,
) -> Result<(), Cancelled> {
    // Visit items in reverse canonical order (least frequent first).
    let mut items: Vec<usize> = (0..tree.header.len())
        .filter(|&i| freq[i] >= min_count && !tree.header[i].is_empty())
        .collect();
    items.sort_by_key(|&i| std::cmp::Reverse(tree.rank[i]));

    for item in items {
        if !hook.keep_going() {
            return Err(Cancelled);
        }
        let new_suffix = suffix.union(ItemSet::singleton(item));
        let support: usize = tree.header[item].iter().map(|&n| tree.arena[n].count).sum();
        if support < min_count {
            progress.pruned += 1;
            continue;
        }
        out.push((new_suffix, support));
        // Conditional pattern base: prefix paths weighted by the node
        // count.
        let mut cond_freq = vec![0usize; tree.header.len()];
        let mut paths: Vec<(Vec<usize>, usize)> = Vec::new();
        for &node in &tree.header[item] {
            let count = tree.arena[node].count;
            let path = tree.prefix_path(node);
            for &p in &path {
                cond_freq[p] += count;
            }
            if !path.is_empty() {
                paths.push((path, count));
            }
        }
        if paths.is_empty() {
            progress.steps += 1;
            hook.progress(progress.steps, progress.pruned);
            continue;
        }
        // Build the conditional tree on frequent conditional items.
        let mut cond_tree = FpTree::new(tree.header.len(), tree.rank.clone());
        let mut any = false;
        for (path, count) in paths {
            let mut filtered: Vec<usize> = path
                .into_iter()
                .filter(|&p| cond_freq[p] >= min_count)
                .collect();
            if !filtered.is_empty() {
                cond_tree.insert(&mut filtered, count);
                any = true;
            }
        }
        if any {
            mine_tree(
                &cond_tree, &cond_freq, min_count, new_suffix, hook, progress, out,
            )?;
        }
        progress.steps += 1;
        hook.progress(progress.steps, progress.pruned);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::{apriori, AprioriParams, SupportEstimator};
    use crate::itemset::row_to_mask;

    struct Exact {
        masks: Vec<u64>,
        num_items: usize,
    }

    impl SupportEstimator for Exact {
        fn num_items(&self) -> usize {
            self.num_items
        }
        fn estimate(&self, itemset: ItemSet) -> f64 {
            if self.masks.is_empty() {
                return 0.0;
            }
            let hits = self
                .masks
                .iter()
                .filter(|&&m| m & itemset.0 == itemset.0)
                .count();
            hits as f64 / self.masks.len() as f64
        }
    }

    fn assert_same_result(masks: Vec<u64>, num_items: usize, min_support: f64) {
        let fp = fp_growth(&masks, num_items, min_support);
        let exact = Exact { masks, num_items };
        let ap = apriori(
            &exact,
            &AprioriParams {
                min_support,
                max_length: 0,
                max_candidates: 0,
            },
        );
        assert_eq!(
            fp.length_profile(),
            ap.length_profile(),
            "profiles differ: fp={:?} apriori={:?}",
            fp.length_profile(),
            ap.length_profile()
        );
        for (itemset, sup) in ap.iter() {
            let fp_sup = fp
                .support_of(itemset)
                .unwrap_or_else(|| panic!("fp-growth missing itemset {itemset} (support {sup})"));
            assert!((fp_sup - sup).abs() < 1e-12, "{itemset}: {fp_sup} vs {sup}");
        }
    }

    #[test]
    fn matches_apriori_on_textbook_example() {
        let rows: Vec<u64> = [
            [true, true, false, false, true],
            [false, true, false, true, false],
            [false, true, true, false, false],
            [true, true, false, true, false],
        ]
        .iter()
        .map(|r| row_to_mask(r))
        .collect();
        assert_same_result(rows, 5, 0.5);
    }

    #[test]
    fn matches_apriori_on_structured_data() {
        // Deterministic pseudo-random transactions with correlations.
        let masks: Vec<u64> = (0..500u64)
            .map(|i| {
                let mut m = 0u64;
                if i % 2 == 0 {
                    m |= 0b0011;
                }
                if i % 3 == 0 {
                    m |= 0b0110;
                }
                if i % 7 == 0 {
                    m |= 0b11000;
                }
                m | (1 << (i % 5))
            })
            .collect();
        for min_sup in [0.05, 0.2, 0.5] {
            assert_same_result(masks.clone(), 5, min_sup);
        }
    }

    #[test]
    fn empty_input_yields_empty_result() {
        let fp = fp_growth(&[], 4, 0.1);
        assert_eq!(fp.total(), 0);
    }

    #[test]
    fn min_support_one_requires_universal_items() {
        let masks = vec![0b101u64, 0b111, 0b101];
        let fp = fp_growth(&masks, 3, 1.0);
        // Items 0 and 2 in every transaction; pair {0,2} as well.
        assert_eq!(fp.length_profile(), vec![2, 1]);
        assert!(fp.support_of(ItemSet::from_items(&[0, 2])).is_some());
    }

    #[test]
    fn single_transaction_mines_its_power_set_levels() {
        let masks = vec![0b111u64];
        let fp = fp_growth(&masks, 3, 0.5);
        // 3 singles, 3 pairs, 1 triple.
        assert_eq!(fp.length_profile(), vec![3, 3, 1]);
    }

    #[test]
    fn supports_are_fractions() {
        let masks = vec![0b1u64, 0b1, 0b0, 0b1];
        let fp = fp_growth(&masks, 1, 0.5);
        assert_eq!(fp.support_of(ItemSet::singleton(0)), Some(0.75));
    }

    #[test]
    fn counted_cells_match_expanded_masks() {
        let cells = vec![(0b011u64, 3), (0b110, 2), (0b101, 1)];
        let mut expanded = Vec::new();
        for &(m, c) in &cells {
            expanded.extend(std::iter::repeat_n(m, c));
        }
        for min_sup in [0.2, 0.5, 0.9] {
            let from_cells =
                fp_growth_from_counts(&cells, 3, min_sup, &crate::hook::NoHook).unwrap();
            let from_masks = fp_growth(&expanded, 3, min_sup);
            assert_eq!(from_cells.length_profile(), from_masks.length_profile());
            for (itemset, sup) in from_masks.iter() {
                assert_eq!(from_cells.support_of(itemset), Some(sup), "{itemset}");
            }
        }
    }

    #[test]
    fn zero_count_cells_are_inert() {
        let with_zeros = vec![(0b11u64, 2), (0b01, 0), (0b10, 1)];
        let without = vec![(0b11u64, 2), (0b10, 1)];
        let a = fp_growth_from_counts(&with_zeros, 2, 0.3, &crate::hook::NoHook).unwrap();
        let b = fp_growth_from_counts(&without, 2, 0.3, &crate::hook::NoHook).unwrap();
        assert_eq!(a.length_profile(), b.length_profile());
    }

    #[test]
    fn cancelling_hook_aborts_recursion() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        struct CancelAfter {
            polls: AtomicUsize,
            allow: usize,
        }
        impl crate::hook::MineHook for CancelAfter {
            fn keep_going(&self) -> bool {
                self.polls.fetch_add(1, Ordering::Relaxed) < self.allow
            }
        }
        let cells = vec![(0b111u64, 2), (0b011, 1), (0b101, 1)];
        for allow in 0..3 {
            let hook = CancelAfter {
                polls: AtomicUsize::new(0),
                allow,
            };
            assert_eq!(
                fp_growth_from_counts(&cells, 3, 0.25, &hook),
                Err(crate::hook::Cancelled),
                "allow={allow}"
            );
        }
    }

    #[test]
    fn hook_sees_monotone_step_progress() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        struct Monotone {
            last: AtomicUsize,
            calls: AtomicUsize,
        }
        impl crate::hook::MineHook for Monotone {
            fn progress(&self, steps: usize, _pruned: usize) {
                let prev = self.last.swap(steps, Ordering::Relaxed);
                assert!(
                    steps > prev || prev == 0,
                    "steps regressed: {prev} -> {steps}"
                );
                self.calls.fetch_add(1, Ordering::Relaxed);
            }
        }
        let cells = vec![(0b111u64, 4), (0b011, 2), (0b110, 3)];
        let hook = Monotone {
            last: AtomicUsize::new(0),
            calls: AtomicUsize::new(0),
        };
        fp_growth_from_counts(&cells, 3, 0.2, &hook).unwrap();
        assert!(hook.calls.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn matches_apriori_on_census_sample() {
        let ds = frapp_data_free_census(1500);
        let masks: Vec<u64> = ds.iter().map(|r| row_to_mask(r)).collect();
        assert_same_result(masks, 23, 0.02);
    }

    /// A tiny local census-like boolean generator (the real one lives in
    /// frapp-data, which depends on this crate — avoid the cycle).
    fn frapp_data_free_census(n: usize) -> Vec<Vec<bool>> {
        let cards = [4usize, 5, 5, 5, 2, 2];
        let width: usize = cards.iter().sum();
        (0..n)
            .map(|i| {
                let mut row = vec![false; width];
                let mut offset = 0;
                for (j, &c) in cards.iter().enumerate() {
                    // Skewed deterministic pattern with correlations.
                    let v = if i % 3 == 0 { 0 } else { (i * (j + 7)) % c };
                    row[offset + v] = true;
                    offset += c;
                }
                row
            })
            .collect()
    }
}
