//! Support estimators: exact counting and the per-method support
//! reconstruction of paper Sections 6 and 7.

use crate::apriori::SupportEstimator;
use crate::itemset::{row_to_mask, ItemSet};
use frapp_baselines::{CutAndPaste, Mask};
use frapp_core::perturb::GammaDiagonal;
use frapp_core::reconstruct::reconstruct_itemset_support;
use frapp_core::schema::Schema;
use frapp_core::Dataset;

/// Exact support counting over boolean masks — the ground-truth miner.
#[derive(Debug, Clone)]
pub struct ExactSupport {
    masks: Vec<u64>,
    num_items: usize,
}

impl ExactSupport {
    /// Builds the estimator from a categorical dataset via its boolean
    /// mapping.
    pub fn from_dataset(dataset: &Dataset) -> Self {
        let masks = dataset
            .to_boolean()
            .iter()
            .map(|row| row_to_mask(row))
            .collect();
        ExactSupport {
            masks,
            num_items: dataset.schema().boolean_width(),
        }
    }

    /// Builds the estimator from pre-computed boolean rows.
    pub fn from_boolean_rows(rows: &[Vec<bool>], num_items: usize) -> Self {
        ExactSupport {
            masks: rows.iter().map(|r| row_to_mask(r)).collect(),
            num_items,
        }
    }
}

impl SupportEstimator for ExactSupport {
    fn num_items(&self) -> usize {
        self.num_items
    }

    fn estimate(&self, itemset: ItemSet) -> f64 {
        if self.masks.is_empty() {
            return 0.0;
        }
        let hits = self
            .masks
            .iter()
            .filter(|&&m| m & itemset.0 == itemset.0)
            .count();
        hits as f64 / self.masks.len() as f64
    }
}

/// Gamma-diagonal support reconstruction (DET-GD and RAN-GD; the latter
/// reconstructs with the expected matrix, paper Equation 23).
///
/// For a candidate itemset over boolean columns, maps the columns back
/// to `(attribute, category)` pairs. Candidates touching the same
/// attribute twice are structurally impossible in the categorical model
/// (their true support is 0) and estimate to −1. Otherwise applies the
/// O(1) marginalized closed form (paper Equation 28):
/// `ŝup = (sup_V − (n_C/n_Cs)x) / ((γ−1)x)`.
#[derive(Debug, Clone)]
pub struct GammaDiagonalSupport {
    /// Perturbed records as boolean masks.
    masks: Vec<u64>,
    /// Per-mask multiplicity; empty means unit weights (one record per
    /// mask). Non-empty when built from aggregated domain-cell counts.
    weights: Vec<f64>,
    /// For each boolean column, the owning attribute.
    column_attr: Vec<usize>,
    /// Attribute cardinalities.
    cardinalities: Vec<usize>,
    domain_size: usize,
    gamma: f64,
    num_items: usize,
}

impl GammaDiagonalSupport {
    /// Builds the estimator from the perturbed categorical dataset and
    /// the gamma-diagonal perturber used to produce it.
    pub fn new(perturbed: &Dataset, gd: &GammaDiagonal) -> Self {
        let schema = perturbed.schema();
        Self::from_parts(schema, perturbed.to_boolean(), gd.gamma())
    }

    /// Builds the estimator from raw parts (used by RAN-GD, whose
    /// reconstruction matrix is the expected deterministic one).
    pub fn from_parts(schema: &Schema, boolean_rows: Vec<Vec<bool>>, gamma: f64) -> Self {
        let num_items = schema.boolean_width();
        let column_attr = (0..num_items)
            .map(|c| schema.boolean_column_to_item(c).expect("column in range").0)
            .collect();
        let cardinalities = (0..schema.num_attributes())
            .map(|j| schema.cardinality(j) as usize)
            .collect();
        GammaDiagonalSupport {
            masks: boolean_rows.iter().map(|r| row_to_mask(r)).collect(),
            weights: Vec::new(),
            column_attr,
            cardinalities,
            domain_size: schema.domain_size(),
            gamma,
            num_items,
        }
    }

    /// Builds the estimator from aggregated *perturbed* domain-cell
    /// counts (`counts[i]` = weight of the record `schema.decode(i)`),
    /// the shape the collection server accumulates. One weighted mask
    /// per non-zero cell keeps the per-candidate scan `O(n_cells)`
    /// instead of `O(n_records)`. The schema's boolean width must fit in
    /// a `u64` mask.
    pub fn from_cell_counts(schema: &Schema, counts: &[f64], gamma: f64) -> Self {
        assert!(
            schema.boolean_width() <= 64,
            "boolean item universe must fit in a u64 mask"
        );
        assert_eq!(counts.len(), schema.domain_size(), "one count per cell");
        let num_items = schema.boolean_width();
        let column_attr = (0..num_items)
            .map(|c| schema.boolean_column_to_item(c).expect("column in range").0)
            .collect();
        let cardinalities: Vec<usize> = (0..schema.num_attributes())
            .map(|j| schema.cardinality(j) as usize)
            .collect();
        let mut masks = Vec::new();
        let mut weights = Vec::new();
        for (index, &count) in counts.iter().enumerate() {
            if count <= 0.0 {
                continue;
            }
            let record = schema.decode(index);
            let mut mask = 0u64;
            for (j, &v) in record.iter().enumerate() {
                mask |= 1 << (schema.boolean_offset(j) + v as usize);
            }
            masks.push(mask);
            weights.push(count);
        }
        GammaDiagonalSupport {
            masks,
            weights,
            column_attr,
            cardinalities,
            domain_size: schema.domain_size(),
            gamma,
            num_items,
        }
    }

    /// The sub-domain size `n_Cs` of the candidate's attribute set, or
    /// `None` when two items share an attribute.
    fn subdomain_size(&self, itemset: ItemSet) -> Option<usize> {
        let mut n_cs = 1usize;
        let mut seen_attrs = 0u64;
        for item in itemset.items() {
            let attr = self.column_attr[item];
            if seen_attrs >> attr & 1 == 1 {
                return None;
            }
            seen_attrs |= 1 << attr;
            n_cs *= self.cardinalities[attr];
        }
        Some(n_cs)
    }
}

impl SupportEstimator for GammaDiagonalSupport {
    fn num_items(&self) -> usize {
        self.num_items
    }

    fn estimate(&self, itemset: ItemSet) -> f64 {
        let Some(n_cs) = self.subdomain_size(itemset) else {
            return -1.0; // same-attribute candidate: impossible itemset
        };
        if self.masks.is_empty() {
            return 0.0;
        }
        let sup_v = if self.weights.is_empty() {
            let hits = self
                .masks
                .iter()
                .filter(|&&m| m & itemset.0 == itemset.0)
                .count();
            hits as f64 / self.masks.len() as f64
        } else {
            let mut hit = 0.0f64;
            let mut total = 0.0f64;
            for (&m, &w) in self.masks.iter().zip(&self.weights) {
                total += w;
                if m & itemset.0 == itemset.0 {
                    hit += w;
                }
            }
            if total <= 0.0 {
                return 0.0;
            }
            hit / total
        };
        reconstruct_itemset_support(sup_v, self.domain_size, n_cs, self.gamma)
    }
}

/// MASK support reconstruction: per-candidate `2^k` pattern histogram,
/// Kronecker-factored inverse of the flip matrix.
#[derive(Debug, Clone)]
pub struct MaskSupport<'a> {
    mask: &'a Mask,
    rows: &'a [Vec<bool>],
}

impl<'a> MaskSupport<'a> {
    /// Builds the estimator over a MASK-perturbed boolean dataset.
    pub fn new(mask: &'a Mask, rows: &'a [Vec<bool>]) -> Self {
        MaskSupport { mask, rows }
    }
}

impl SupportEstimator for MaskSupport<'_> {
    fn num_items(&self) -> usize {
        self.mask.schema().boolean_width()
    }

    fn estimate(&self, itemset: ItemSet) -> f64 {
        let columns = itemset.to_vec();
        self.mask.estimate_support(self.rows, &columns)
    }
}

/// Cut-and-Paste support reconstruction: per-candidate intersection-size
/// histogram, `(k+1)×(k+1)` partial-support solve.
#[derive(Debug, Clone)]
pub struct CnpSupport<'a> {
    cnp: &'a CutAndPaste,
    rows: &'a [Vec<bool>],
}

impl<'a> CnpSupport<'a> {
    /// Builds the estimator over a C&P-perturbed boolean dataset.
    pub fn new(cnp: &'a CutAndPaste, rows: &'a [Vec<bool>]) -> Self {
        CnpSupport { cnp, rows }
    }
}

impl SupportEstimator for CnpSupport<'_> {
    fn num_items(&self) -> usize {
        self.cnp.schema().boolean_width()
    }

    fn estimate(&self, itemset: ItemSet) -> f64 {
        let columns = itemset.to_vec();
        // A singular transition matrix (possible only at degenerate
        // parameters) yields "no information": report not-frequent.
        self.cnp
            .estimate_support(self.rows, &columns)
            .unwrap_or(-1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::{apriori, AprioriParams};
    use frapp_core::perturb::Perturber;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn schema() -> Schema {
        Schema::new(vec![("a", 3), ("b", 2), ("c", 2)]).unwrap()
    }

    /// A dataset where [0,0,0] has 50% support, [1,1,1] has 30%,
    /// [2,0,1] has 20%.
    fn dataset() -> Dataset {
        let mut records = Vec::new();
        for i in 0..10_000u32 {
            let r = match i % 10 {
                0..=4 => vec![0, 0, 0],
                5..=7 => vec![1, 1, 1],
                _ => vec![2, 0, 1],
            };
            records.push(r);
        }
        Dataset::new(schema(), records).unwrap()
    }

    #[test]
    fn exact_support_counts_fractions() {
        let ds = dataset();
        let est = ExactSupport::from_dataset(&ds);
        assert_eq!(est.num_items(), 7);
        // Column 0 = (a=0): supported by 50% + 20%? No: [2,0,1] has a=2.
        // a=0 only in the 50% group.
        assert!((est.estimate(ItemSet::singleton(0)) - 0.5).abs() < 1e-12);
        // Column 3 = (b=0): 50% + 20% = 70%.
        assert!((est.estimate(ItemSet::singleton(3)) - 0.7).abs() < 1e-12);
        // Pair (a=0, b=0): 50%.
        assert!((est.estimate(ItemSet::from_items(&[0, 3])) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn gamma_diagonal_estimator_recovers_supports() {
        let ds = dataset();
        let gd = GammaDiagonal::new(ds.schema(), 19.0).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let perturbed_records = gd.perturb_dataset(ds.records(), &mut rng).unwrap();
        let perturbed = Dataset::from_trusted(schema(), perturbed_records);
        let est = GammaDiagonalSupport::new(&perturbed, &gd);
        // (a=0): true 0.5.
        let s = est.estimate(ItemSet::singleton(0));
        assert!((s - 0.5).abs() < 0.08, "estimate {s}");
        // (a=0, b=0, c=0): true 0.5.
        let s3 = est.estimate(ItemSet::from_items(&[0, 3, 5]));
        assert!((s3 - 0.5).abs() < 0.08, "estimate {s3}");
        // (a=1, c=1): true 0.3.
        let s2 = est.estimate(ItemSet::from_items(&[1, 6]));
        assert!((s2 - 0.3).abs() < 0.08, "estimate {s2}");
    }

    #[test]
    fn gamma_diagonal_same_attribute_candidate_is_rejected() {
        let ds = dataset();
        let gd = GammaDiagonal::new(ds.schema(), 19.0).unwrap();
        let est = GammaDiagonalSupport::new(&ds, &gd);
        // Columns 0 and 1 are both attribute `a`.
        assert_eq!(est.estimate(ItemSet::from_items(&[0, 1])), -1.0);
    }

    #[test]
    fn mask_estimator_recovers_single_and_pair_supports() {
        let ds = dataset();
        let mask = Mask::new(ds.schema(), 0.85).unwrap();
        let mut rng = StdRng::seed_from_u64(22);
        let rows = mask.perturb_dataset(ds.records(), &mut rng).unwrap();
        let est = MaskSupport::new(&mask, &rows);
        let s = est.estimate(ItemSet::singleton(0));
        assert!((s - 0.5).abs() < 0.05, "estimate {s}");
        let s2 = est.estimate(ItemSet::from_items(&[0, 3]));
        assert!((s2 - 0.5).abs() < 0.05, "estimate {s2}");
    }

    #[test]
    fn cnp_estimator_recovers_single_supports() {
        let ds = dataset();
        let cnp = CutAndPaste::new(ds.schema(), 3, 0.494).unwrap();
        let mut rng = StdRng::seed_from_u64(23);
        let rows = cnp.perturb_dataset(ds.records(), &mut rng).unwrap();
        let est = CnpSupport::new(&cnp, &rows);
        let s = est.estimate(ItemSet::singleton(0));
        assert!((s - 0.5).abs() < 0.1, "estimate {s}");
    }

    #[test]
    fn cell_count_estimator_matches_record_estimator() {
        let ds = dataset();
        let gd = GammaDiagonal::new(ds.schema(), 19.0).unwrap();
        let mut rng = StdRng::seed_from_u64(25);
        let perturbed_records = gd.perturb_dataset(ds.records(), &mut rng).unwrap();
        let perturbed = Dataset::from_trusted(schema(), perturbed_records);
        // Aggregate the perturbed records into domain-cell counts.
        let sc = schema();
        let mut counts = vec![0.0f64; sc.domain_size()];
        for r in perturbed.records() {
            counts[sc.encode(r).unwrap()] += 1.0;
        }
        let by_record = GammaDiagonalSupport::new(&perturbed, &gd);
        let by_cell = GammaDiagonalSupport::from_cell_counts(&sc, &counts, gd.gamma());
        assert_eq!(by_cell.num_items(), by_record.num_items());
        for set in [
            ItemSet::singleton(0),
            ItemSet::singleton(3),
            ItemSet::from_items(&[0, 3]),
            ItemSet::from_items(&[0, 3, 5]),
            ItemSet::from_items(&[1, 4, 6]),
            ItemSet::from_items(&[0, 1]), // same-attribute: both reject
        ] {
            let a = by_record.estimate(set);
            let b = by_cell.estimate(set);
            assert!((a - b).abs() < 1e-9, "{set}: {a} vs {b}");
        }
    }

    #[test]
    fn full_pipeline_gd_apriori_finds_planted_itemsets() {
        let ds = dataset();
        let gd = GammaDiagonal::new(ds.schema(), 19.0).unwrap();
        let mut rng = StdRng::seed_from_u64(24);
        let perturbed_records = gd.perturb_dataset(ds.records(), &mut rng).unwrap();
        let perturbed = Dataset::from_trusted(schema(), perturbed_records);
        let est = GammaDiagonalSupport::new(&perturbed, &gd);
        let mined = apriori(
            &est,
            &AprioriParams {
                min_support: 0.15,
                max_length: 0,
                max_candidates: 0,
            },
        );
        // The planted triple (a=0, b=0, c=0) = columns {0, 3, 5} at 50%
        // must be found.
        assert!(
            mined.support_of(ItemSet::from_items(&[0, 3, 5])).is_some(),
            "profile: {:?}",
            mined.length_profile()
        );
    }
}
