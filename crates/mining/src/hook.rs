//! Cooperative control for long-running mining passes.
//!
//! A mining run over a large reconstructed distribution can take
//! seconds to minutes; embedders (the service's background-job pool in
//! particular) need to cancel an abandoned run and observe its
//! progress without killing the thread. [`MineHook`] is the narrow
//! surface both miners poll at their natural checkpoints: between
//! Apriori levels and between FP-growth recursion steps. The hook is
//! *cooperative* — a long single level finishes before the
//! cancellation is observed — which keeps the miners free of any
//! locking on their hot counting loops.

/// Control surface polled by [`crate::apriori::apriori_with_hook`] and
/// [`crate::fpgrowth::fp_growth_from_counts`] at every checkpoint.
///
/// Implementations must be cheap: the miners poll between levels /
/// recursion steps, never inside the per-transaction counting loops.
pub trait MineHook: Sync {
    /// Polled at each checkpoint; returning `false` abandons the run
    /// with [`Cancelled`]. The default never cancels.
    fn keep_going(&self) -> bool {
        true
    }

    /// Reports cumulative progress: `levels` completed so far (Apriori
    /// passes, or FP-growth top-level conditional trees mined) and
    /// `pruned` candidates discarded so far (generated candidates that
    /// failed the support threshold). The default discards it.
    fn progress(&self, levels: usize, pruned: usize) {
        let _ = (levels, pruned);
    }
}

/// The do-nothing hook: never cancels, discards progress. The plain
/// [`crate::apriori::apriori`] / [`crate::fpgrowth::fp_growth`] entry
/// points run under it.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoHook;

impl MineHook for NoHook {}

/// Returned by the hooked miners when their hook requested
/// cancellation; the partial result is discarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled;

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("mining run was cancelled")
    }
}

impl std::error::Error for Cancelled {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

    #[test]
    fn no_hook_never_cancels() {
        assert!(NoHook.keep_going());
        NoHook.progress(3, 7); // must not panic
    }

    #[test]
    fn hooks_observe_cancel_flags_and_progress() {
        struct Flagged {
            cancel: AtomicBool,
            levels: AtomicUsize,
        }
        impl MineHook for Flagged {
            fn keep_going(&self) -> bool {
                !self.cancel.load(Ordering::Relaxed)
            }
            fn progress(&self, levels: usize, _pruned: usize) {
                self.levels.store(levels, Ordering::Relaxed);
            }
        }
        let h = Flagged {
            cancel: AtomicBool::new(false),
            levels: AtomicUsize::new(0),
        };
        assert!(h.keep_going());
        h.progress(2, 0);
        assert_eq!(h.levels.load(Ordering::Relaxed), 2);
        h.cancel.store(true, Ordering::Relaxed);
        assert!(!h.keep_going());
        assert_eq!(Cancelled.to_string(), "mining run was cancelled");
    }
}
