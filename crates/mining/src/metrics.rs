//! The paper's mining-accuracy metrics (Section 7).
//!
//! Two kinds of error are reported per itemset length:
//!
//! * **Support error ρ** — mean percentage relative error of the
//!   reconstructed supports over the itemsets *correctly identified* as
//!   frequent: `ρ = 100/|F| Σ_{f∈F∩R} |ŝup_f − sup_f| / sup_f`
//!   (averaged over the correctly-identified set, as in the paper).
//! * **Identity error σ** — `σ⁺ = 100·|R−F|/|F|` (false positives) and
//!   `σ⁻ = 100·|F−R|/|F|` (false negatives), where `F` is the true set
//!   of frequent itemsets and `R` the reconstructed set.

use crate::apriori::FrequentItemsets;

/// Accuracy of one mining run for a single itemset length.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LengthMetrics {
    /// Itemset length `k`.
    pub length: usize,
    /// Number of truly frequent `k`-itemsets `|F_k|`.
    pub true_count: usize,
    /// Number of mined `k`-itemsets `|R_k|`.
    pub mined_count: usize,
    /// Number correctly identified `|F_k ∩ R_k|`.
    pub correct_count: usize,
    /// Support error ρ in percent over `F_k ∩ R_k`; `None` when nothing
    /// was correctly identified.
    pub support_error: Option<f64>,
    /// False-positive percentage `σ⁺`.
    pub false_positives: f64,
    /// False-negative percentage `σ⁻`.
    pub false_negatives: f64,
}

/// Accuracy of one mining run, per itemset length.
#[derive(Debug, Clone, Default)]
pub struct AccuracyMetrics {
    /// Metrics per length, index 0 = length 1.
    pub per_length: Vec<LengthMetrics>,
}

impl AccuracyMetrics {
    /// Metrics for itemsets of length `k`, if that length occurs in the
    /// ground truth.
    pub fn of_length(&self, k: usize) -> Option<&LengthMetrics> {
        self.per_length.iter().find(|m| m.length == k)
    }

    /// Overall support error: mean of the per-length ρ values that are
    /// defined.
    pub fn mean_support_error(&self) -> Option<f64> {
        let vals: Vec<f64> = self
            .per_length
            .iter()
            .filter_map(|m| m.support_error)
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }
}

/// Compares a privacy-preserving mining run against ground truth.
///
/// `truth` must carry the *actual* supports; `mined` carries the
/// reconstructed supports. Lengths with no truly frequent itemsets are
/// skipped (the paper's plots range over lengths present in `F`).
pub fn compare(truth: &FrequentItemsets, mined: &FrequentItemsets) -> AccuracyMetrics {
    let mut per_length = Vec::new();
    for k in 1..=truth.max_length().max(mined.max_length()) {
        let f = truth.of_length(k);
        if f.is_empty() {
            continue;
        }
        let r_set = mined.set_of_length(k);
        let f_count = f.len();
        let r_count = r_set.len();

        let mut correct = 0usize;
        let mut err_sum = 0.0;
        for &(itemset, true_sup) in f {
            if r_set.contains(&itemset) {
                correct += 1;
                let est = mined.support_of(itemset).expect("present in r_set");
                if true_sup > 0.0 {
                    err_sum += (est - true_sup).abs() / true_sup;
                }
            }
        }
        let false_neg = f_count - correct;
        let false_pos = r_count - correct;
        per_length.push(LengthMetrics {
            length: k,
            true_count: f_count,
            mined_count: r_count,
            correct_count: correct,
            support_error: if correct > 0 {
                Some(100.0 * err_sum / correct as f64)
            } else {
                None
            },
            false_positives: 100.0 * false_pos as f64 / f_count as f64,
            false_negatives: 100.0 * false_neg as f64 / f_count as f64,
        });
    }
    AccuracyMetrics { per_length }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::{apriori, AprioriParams, SupportEstimator};
    use crate::itemset::ItemSet;

    /// Fixed supports estimator for crafting exact scenarios.
    struct FixedSupports {
        num_items: usize,
        entries: Vec<(ItemSet, f64)>,
    }

    impl SupportEstimator for FixedSupports {
        fn num_items(&self) -> usize {
            self.num_items
        }

        fn estimate(&self, itemset: ItemSet) -> f64 {
            self.entries
                .iter()
                .find(|(i, _)| *i == itemset)
                .map(|&(_, s)| s)
                .unwrap_or(0.0)
        }
    }

    fn mine(entries: Vec<(ItemSet, f64)>) -> FrequentItemsets {
        let est = FixedSupports {
            num_items: 4,
            entries,
        };
        apriori(
            &est,
            &AprioriParams {
                min_support: 0.1,
                max_length: 0,
                max_candidates: 0,
            },
        )
    }

    #[test]
    fn perfect_run_has_zero_errors() {
        let entries = vec![
            (ItemSet::singleton(0), 0.5),
            (ItemSet::singleton(1), 0.4),
            (ItemSet::from_items(&[0, 1]), 0.3),
        ];
        let truth = mine(entries.clone());
        let mined = mine(entries);
        let m = compare(&truth, &mined);
        assert_eq!(m.per_length.len(), 2);
        for lm in &m.per_length {
            assert_eq!(lm.support_error, Some(0.0));
            assert_eq!(lm.false_positives, 0.0);
            assert_eq!(lm.false_negatives, 0.0);
        }
        assert_eq!(m.mean_support_error(), Some(0.0));
    }

    #[test]
    fn support_error_is_mean_relative_percentage() {
        let truth = mine(vec![
            (ItemSet::singleton(0), 0.5),
            (ItemSet::singleton(1), 0.4),
        ]);
        // Estimates off by +10% and −25% relative.
        let mined = mine(vec![
            (ItemSet::singleton(0), 0.55),
            (ItemSet::singleton(1), 0.3),
        ]);
        let m = compare(&truth, &mined);
        let lm = m.of_length(1).unwrap();
        assert!((lm.support_error.unwrap() - (10.0 + 25.0) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn false_negative_counting() {
        let truth = mine(vec![
            (ItemSet::singleton(0), 0.5),
            (ItemSet::singleton(1), 0.4),
        ]);
        let mined = mine(vec![(ItemSet::singleton(0), 0.5)]);
        let m = compare(&truth, &mined);
        let lm = m.of_length(1).unwrap();
        assert_eq!(lm.false_negatives, 50.0);
        assert_eq!(lm.false_positives, 0.0);
        assert_eq!(lm.correct_count, 1);
    }

    #[test]
    fn false_positive_counting() {
        let truth = mine(vec![(ItemSet::singleton(0), 0.5)]);
        let mined = mine(vec![
            (ItemSet::singleton(0), 0.5),
            (ItemSet::singleton(1), 0.2),
            (ItemSet::singleton(2), 0.2),
        ]);
        let m = compare(&truth, &mined);
        let lm = m.of_length(1).unwrap();
        // 2 spurious / 1 true = 200%.
        assert_eq!(lm.false_positives, 200.0);
        assert_eq!(lm.false_negatives, 0.0);
    }

    #[test]
    fn missing_length_yields_undefined_support_error() {
        let truth = mine(vec![
            (ItemSet::singleton(0), 0.5),
            (ItemSet::singleton(1), 0.4),
            (ItemSet::from_items(&[0, 1]), 0.35),
        ]);
        let mined = mine(vec![(ItemSet::singleton(0), 0.5)]);
        let m = compare(&truth, &mined);
        let lm2 = m.of_length(2).unwrap();
        assert_eq!(lm2.support_error, None);
        assert_eq!(lm2.false_negatives, 100.0);
    }

    #[test]
    fn lengths_absent_from_truth_are_skipped() {
        let truth = mine(vec![(ItemSet::singleton(0), 0.5)]);
        let mined = mine(vec![
            (ItemSet::singleton(0), 0.5),
            (ItemSet::singleton(1), 0.3),
            (ItemSet::from_items(&[0, 1]), 0.3),
        ]);
        let m = compare(&truth, &mined);
        // Length 2 exists only in `mined`; the paper plots over lengths
        // in F, so it is skipped.
        assert!(m.of_length(2).is_none());
        assert_eq!(m.per_length.len(), 1);
    }
}
