//! Frequent-itemset mining substrate for the FRAPP reproduction
//! (paper Section 6 and the experimental Section 7).
//!
//! The paper evaluates FRAPP on association-rule mining: find all
//! itemsets whose support exceeds `sup_min` with the Apriori algorithm,
//! where each pass counts supports on the *perturbed* database and then
//! reconstructs the original supports before the frequency test.
//!
//! * [`itemset`] — compact bitmask itemsets over the boolean item view
//!   (`M_b = Σ_j |S_j|` items; at most one item per attribute holds in a
//!   categorical record).
//! * [`mod@apriori`] — the bottom-up Apriori of Agrawal & Srikant (VLDB
//!   1994) parameterised by a [`apriori::SupportEstimator`], so the same
//!   mining loop runs exact (ground truth), DET-GD, RAN-GD, MASK and
//!   C&P configurations.
//! * [`estimators`] — the per-method support reconstruction plugged into
//!   each Apriori pass.
//! * [`metrics`] — the paper's accuracy measures: support error `ρ` and
//!   identity errors `σ⁺`/`σ⁻` per itemset length (Section 7).
//! * [`rules`] — confidence-based association-rule generation on top of
//!   the mined itemsets.

#![warn(missing_docs)]

pub mod apriori;
pub mod classify;
pub mod condense;
pub mod estimators;
pub mod fpgrowth;
pub mod hook;
pub mod itemset;
pub mod metrics;
pub mod rules;

pub use apriori::{apriori, apriori_with_hook, AprioriParams, FrequentItemsets, SupportEstimator};
pub use classify::{bayes_classify, bayes_rule, rule_accuracy, ClassifierReport};
pub use fpgrowth::{fp_growth, fp_growth_from_counts};
pub use hook::{Cancelled, MineHook, NoHook};
pub use itemset::ItemSet;
pub use metrics::{compare, AccuracyMetrics};
