//! Condensed representations of frequent-itemset collections: maximal
//! and closed itemsets.
//!
//! The paper reports raw per-length counts (Table 3), but downstream
//! users of a mining library routinely want the condensed forms: the
//! *maximal* frequent itemsets (no frequent superset) summarise the
//! border of the frequent lattice, and the *closed* ones (no superset
//! with the same support) preserve all support information losslessly.

use crate::apriori::FrequentItemsets;
use crate::itemset::ItemSet;

/// Returns the maximal frequent itemsets — those with no frequent
/// proper superset — with their supports, sorted by itemset.
pub fn maximal_itemsets(frequent: &FrequentItemsets) -> Vec<(ItemSet, f64)> {
    let mut out = Vec::new();
    let max_len = frequent.max_length();
    for k in 1..=max_len {
        let supersets = frequent.set_of_length(k + 1);
        for &(itemset, sup) in frequent.of_length(k) {
            // A frequent (k+1)-superset exists iff adding one item to
            // `itemset` lands in the next level; check via the next
            // level's sets directly (levels are small).
            let has_frequent_superset = supersets.iter().any(|&sup_set| sup_set.contains(itemset));
            if !has_frequent_superset {
                out.push((itemset, sup));
            }
        }
    }
    out.sort_by_key(|&(i, _)| i);
    out
}

/// Returns the closed frequent itemsets — those with no proper superset
/// of equal support — with their supports, sorted by itemset.
///
/// Supports are compared with a small tolerance so reconstructed
/// (noisy) supports don't spuriously separate truly-equal ones.
pub fn closed_itemsets(frequent: &FrequentItemsets, tolerance: f64) -> Vec<(ItemSet, f64)> {
    let mut out = Vec::new();
    let max_len = frequent.max_length();
    for k in 1..=max_len {
        for &(itemset, sup) in frequent.of_length(k) {
            let closed = !frequent
                .of_length(k + 1)
                .iter()
                .any(|&(s, ssup)| s.contains(itemset) && (ssup - sup).abs() <= tolerance);
            if closed {
                out.push((itemset, sup));
            }
        }
    }
    out.sort_by_key(|&(i, _)| i);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::{apriori, AprioriParams, SupportEstimator};
    use crate::itemset::row_to_mask;

    struct Exact {
        masks: Vec<u64>,
        num_items: usize,
    }

    impl SupportEstimator for Exact {
        fn num_items(&self) -> usize {
            self.num_items
        }
        fn estimate(&self, itemset: ItemSet) -> f64 {
            let hits = self
                .masks
                .iter()
                .filter(|&&m| m & itemset.0 == itemset.0)
                .count();
            hits as f64 / self.masks.len() as f64
        }
    }

    fn mine(rows: &[&[bool]], min_support: f64) -> FrequentItemsets {
        let e = Exact {
            masks: rows.iter().map(|r| row_to_mask(r)).collect(),
            num_items: rows[0].len(),
        };
        apriori(
            &e,
            &AprioriParams {
                min_support,
                max_length: 0,
                max_candidates: 0,
            },
        )
    }

    #[test]
    fn maximal_of_a_chain_is_the_top() {
        // Items 0,1,2 always co-occur: the only maximal itemset is the
        // triple.
        let f = mine(&[&[true, true, true], &[true, true, true]], 0.5);
        let max = maximal_itemsets(&f);
        assert_eq!(max.len(), 1);
        assert_eq!(max[0].0, ItemSet::from_items(&[0, 1, 2]));
    }

    #[test]
    fn maximal_covers_all_frequent_itemsets() {
        let f = mine(
            &[
                &[true, true, false, true],
                &[true, true, false, false],
                &[false, true, true, false],
                &[true, false, true, false],
            ],
            0.25,
        );
        let max = maximal_itemsets(&f);
        // Every frequent itemset is a subset of some maximal one.
        for (itemset, _) in f.iter() {
            assert!(
                max.iter().any(|&(m, _)| m.contains(itemset)),
                "{itemset} not covered"
            );
        }
        // No maximal itemset is a subset of another.
        for &(a, _) in &max {
            for &(b, _) in &max {
                assert!(a == b || !b.contains(a), "{a} subsumed by {b}");
            }
        }
    }

    #[test]
    fn closed_preserves_support_information() {
        // Item 0 occurs exactly when item 1 does: {0} is NOT closed
        // (superset {0,1} has equal support); {1} IS closed (it also
        // occurs alone).
        let f = mine(
            &[
                &[true, true, false],
                &[true, true, false],
                &[false, true, false],
                &[false, false, true],
            ],
            0.25,
        );
        let closed = closed_itemsets(&f, 1e-12);
        let sets: Vec<ItemSet> = closed.iter().map(|&(i, _)| i).collect();
        assert!(!sets.contains(&ItemSet::singleton(0)), "{sets:?}");
        assert!(sets.contains(&ItemSet::singleton(1)));
        assert!(sets.contains(&ItemSet::from_items(&[0, 1])));
    }

    #[test]
    fn maximal_are_a_subset_of_closed() {
        let f = mine(
            &[
                &[true, true, true, false],
                &[true, true, false, false],
                &[true, false, false, true],
                &[false, true, true, true],
            ],
            0.25,
        );
        let max: Vec<ItemSet> = maximal_itemsets(&f).iter().map(|&(i, _)| i).collect();
        let closed: Vec<ItemSet> = closed_itemsets(&f, 1e-12).iter().map(|&(i, _)| i).collect();
        for m in &max {
            assert!(closed.contains(m), "maximal {m} not closed");
        }
        assert!(closed.len() <= f.total());
    }

    #[test]
    fn empty_result_yields_empty_condensations() {
        let f = FrequentItemsets::default();
        assert!(maximal_itemsets(&f).is_empty());
        assert!(closed_itemsets(&f, 0.0).is_empty());
    }
}
