//! Experiment harness regenerating every table and figure of the FRAPP
//! paper (see DESIGN.md §3 for the experiment index).
//!
//! Each binary in `src/bin/` reproduces one artifact:
//!
//! | binary           | paper artifact                              |
//! |------------------|---------------------------------------------|
//! | `exp_schemas`    | Tables 1 & 2 (attribute categories)         |
//! | `exp_table3`     | Table 3 (frequent itemsets at 2%)           |
//! | `exp_fig1`       | Figure 1 (ρ, σ⁻, σ⁺ on CENSUS)              |
//! | `exp_fig2`       | Figure 2 (ρ, σ⁻, σ⁺ on HEALTH)              |
//! | `exp_fig3`       | Figure 3 (posterior range + ρ vs α)         |
//! | `exp_fig4`       | Figure 4 (condition numbers vs length)      |
//! | `exp_optimality` | (ablation) gamma-diagonal optimality        |
//! | `exp_all`        | everything above, writing `results/*.csv`   |
//!
//! This library holds the shared pipeline: generate dataset → mine
//! ground truth → perturb with a method → privacy-preserving mine →
//! compare.

#![warn(missing_docs)]

use frapp_baselines::{CutAndPaste, Mask};
use frapp_core::perturb::{GammaDiagonal, Perturber, RandomizedGammaDiagonal};
use frapp_core::{Dataset, PrivacyRequirement};
use frapp_mining::apriori::{apriori, AprioriParams, FrequentItemsets};
use frapp_mining::estimators::{CnpSupport, ExactSupport, GammaDiagonalSupport, MaskSupport};
use frapp_mining::metrics::{compare, AccuracyMetrics};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::path::Path;

/// The perturbation methods compared in the paper's Section 7.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Method {
    /// Deterministic gamma-diagonal (paper Section 3).
    DetGd,
    /// Randomized gamma-diagonal with `α = fraction · γx`
    /// (paper Section 4; the figures use fraction = 0.5).
    RanGd {
        /// `α` as a fraction of `γx` (the x-axis of Figure 3).
        alpha_fraction: f64,
    },
    /// MASK with the privacy-saturating flip parameter.
    Mask,
    /// Cut-and-Paste with the paper's `(K, ρ) = (3, 0.494)`.
    Cnp,
}

impl Method {
    /// Display name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            Method::DetGd => "DET-GD",
            Method::RanGd { .. } => "RAN-GD",
            Method::Mask => "MASK",
            Method::Cnp => "C&P",
        }
    }

    /// The four methods at the paper's figure settings.
    pub fn paper_set() -> Vec<Method> {
        vec![
            Method::RanGd {
                alpha_fraction: 0.5,
            },
            Method::DetGd,
            Method::Mask,
            Method::Cnp,
        ]
    }
}

/// A fully-specified experiment on one dataset.
pub struct Experiment {
    /// Human-readable dataset name ("CENSUS" / "HEALTH").
    pub dataset_name: String,
    /// The original (unperturbed) dataset.
    pub dataset: Dataset,
    /// The ground-truth frequent itemsets with exact supports.
    pub truth: FrequentItemsets,
    /// The privacy requirement (γ derives from it).
    pub requirement: PrivacyRequirement,
    /// Mining threshold.
    pub params: AprioriParams,
}

impl Experiment {
    /// Prepares an experiment: mines the exact ground truth once.
    pub fn new(
        dataset_name: &str,
        dataset: Dataset,
        requirement: PrivacyRequirement,
        min_support: f64,
    ) -> Self {
        let params = AprioriParams {
            min_support,
            max_length: 0,
            // Bound runaway false-positive floods from ill-conditioned
            // baselines; the exact miner never comes close.
            max_candidates: 200_000,
        };
        let exact = ExactSupport::from_dataset(&dataset);
        let truth = apriori(&exact, &params);
        Experiment {
            dataset_name: dataset_name.into(),
            dataset,
            truth,
            requirement,
            params,
        }
    }

    /// The paper's default setup on a dataset: `(ρ1,ρ2) = (5%, 50%)`
    /// (γ = 19), `sup_min = 2%`.
    pub fn paper_default(dataset_name: &str, dataset: Dataset) -> Self {
        Experiment::new(
            dataset_name,
            dataset,
            PrivacyRequirement::paper_default(),
            0.02,
        )
    }

    /// γ for this experiment's requirement.
    pub fn gamma(&self) -> f64 {
        self.requirement.gamma()
    }

    /// Runs one method end to end: perturb → mine → compare with truth.
    /// `seed` controls the perturbation randomness.
    pub fn run(&self, method: Method, seed: u64) -> MethodRun {
        let mut rng = StdRng::seed_from_u64(seed);
        let schema = self.dataset.schema();
        let gamma = self.gamma();
        let mined = match method {
            Method::DetGd => {
                let gd = GammaDiagonal::new(schema, gamma).expect("gamma > 1");
                let perturbed = gd
                    .perturb_dataset(self.dataset.records(), &mut rng)
                    .expect("records valid");
                let perturbed = Dataset::from_trusted(schema.clone(), perturbed);
                let est = GammaDiagonalSupport::new(&perturbed, &gd);
                apriori(&est, &self.params)
            }
            Method::RanGd { alpha_fraction } => {
                let rgd =
                    RandomizedGammaDiagonal::with_alpha_fraction(schema, gamma, alpha_fraction)
                        .expect("fraction in [0,1]");
                let perturbed = rgd
                    .perturb_dataset(self.dataset.records(), &mut rng)
                    .expect("records valid");
                let perturbed = Dataset::from_trusted(schema.clone(), perturbed);
                // Reconstruction uses the expected (deterministic) matrix.
                let est = GammaDiagonalSupport::new(&perturbed, rgd.expected());
                apriori(&est, &self.params)
            }
            Method::Mask => {
                let mask = Mask::from_gamma(schema, gamma).expect("gamma > 1");
                let rows = mask
                    .perturb_dataset(self.dataset.records(), &mut rng)
                    .expect("records valid");
                let est = MaskSupport::new(&mask, &rows);
                apriori(&est, &self.params)
            }
            Method::Cnp => {
                let cnp = CutAndPaste::paper_params(schema).expect("static params valid");
                let rows = cnp
                    .perturb_dataset(self.dataset.records(), &mut rng)
                    .expect("records valid");
                let est = CnpSupport::new(&cnp, &rows);
                apriori(&est, &self.params)
            }
        };
        let metrics = compare(&self.truth, &mined);
        MethodRun {
            method,
            mined,
            metrics,
        }
    }
}

/// Result of one method's end-to-end run.
pub struct MethodRun {
    /// The method that produced this run.
    pub method: Method,
    /// The reconstructed frequent itemsets.
    pub mined: FrequentItemsets,
    /// Accuracy against ground truth.
    pub metrics: AccuracyMetrics,
}

/// Formats a Figure 1/2-style table: one row per itemset length, one
/// column triple (ρ, σ⁻, σ⁺) per method.
pub fn format_accuracy_table(experiment: &Experiment, runs: &[MethodRun]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} (gamma = {:.0}, sup_min = {:.0}%)  [paper Figures 1-2 series]",
        experiment.dataset_name,
        experiment.gamma(),
        experiment.params.min_support * 100.0
    );
    let _ = write!(out, "{:<6} {:>5}", "len", "|F|");
    for run in runs {
        let _ = write!(out, " | {:>28}", run.method.name());
    }
    let _ = writeln!(out);
    let _ = write!(out, "{:<6} {:>5}", "", "");
    for _ in runs {
        let _ = write!(out, " | {:>8} {:>9} {:>9}", "rho%", "sig-%", "sig+%");
    }
    let _ = writeln!(out);
    let max_len = experiment.truth.max_length();
    for k in 1..=max_len {
        let f_count = experiment.truth.of_length(k).len();
        if f_count == 0 {
            continue;
        }
        let _ = write!(out, "{:<6} {:>5}", k, f_count);
        for run in runs {
            match run.metrics.of_length(k) {
                Some(m) => {
                    let rho = m
                        .support_error
                        .map_or("--".to_string(), |e| format!("{e:.1}"));
                    let _ = write!(
                        out,
                        " | {:>8} {:>9.1} {:>9.1}",
                        rho, m.false_negatives, m.false_positives
                    );
                }
                None => {
                    let _ = write!(out, " | {:>8} {:>9} {:>9}", "--", "--", "--");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Serialises the per-length metrics of a set of runs to CSV rows:
/// `dataset,method,length,true_count,mined_count,rho,sigma_minus,sigma_plus`.
pub fn accuracy_csv(experiment: &Experiment, runs: &[MethodRun]) -> String {
    let mut out =
        String::from("dataset,method,length,true_count,mined_count,rho,sigma_minus,sigma_plus\n");
    for run in runs {
        for m in &run.metrics.per_length {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{:.4},{:.4}",
                experiment.dataset_name,
                run.method.name(),
                m.length,
                m.true_count,
                m.mined_count,
                m.support_error
                    .map_or(String::from("NA"), |e| format!("{e:.4}")),
                m.false_negatives,
                m.false_positives
            );
        }
    }
    out
}

/// Writes a results file under `results/`, creating the directory as
/// needed. Errors are surfaced (experiments must not silently lose
/// output).
pub fn write_results(filename: &str, contents: &str) -> std::io::Result<()> {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join(filename), contents)
}

/// Standard seeds so every experiment binary is reproducible.
pub const PERTURBATION_SEED: u64 = 0xF4A9;
/// Dataset-generation seed shared by all binaries.
pub const DATA_SEED: u64 = 0x0DD5;

/// Convenience: the two paper datasets as ready experiments.
pub fn paper_experiments() -> Vec<Experiment> {
    vec![
        Experiment::paper_default("CENSUS", frapp_data::census_like(DATA_SEED)),
        Experiment::paper_default("HEALTH", frapp_data::health_like(DATA_SEED)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use frapp_data::census::census_like_n;

    /// A small end-to-end smoke test of the harness (full-size runs live
    /// in the experiment binaries).
    #[test]
    fn experiment_pipeline_runs_on_small_census() {
        let exp = Experiment::paper_default("CENSUS-small", census_like_n(3000, 1));
        assert!(exp.truth.total() > 0);
        let run = exp.run(Method::DetGd, 2);
        assert!(!run.metrics.per_length.is_empty());
        let table = format_accuracy_table(&exp, &[run]);
        assert!(table.contains("DET-GD"));
    }

    #[test]
    fn csv_serialisation_has_header_and_rows() {
        let exp = Experiment::paper_default("CENSUS-small", census_like_n(2000, 1));
        let run = exp.run(Method::DetGd, 3);
        let csv = accuracy_csv(&exp, &[run]);
        let lines: Vec<&str> = csv.lines().collect();
        assert!(lines[0].starts_with("dataset,method,length"));
        assert!(lines.len() > 1);
    }

    #[test]
    fn method_names_match_paper_legends() {
        let set = Method::paper_set();
        let names: Vec<&str> = set.iter().map(Method::name).collect();
        assert_eq!(names, vec!["RAN-GD", "DET-GD", "MASK", "C&P"]);
    }
}
