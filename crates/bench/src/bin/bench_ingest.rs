//! Ingest-throughput benchmark: the index-domain raw-ingest fast path
//! vs the legacy per-record path, emitting `BENCH_ingest.json`.
//!
//! The *fast* path is production `CollectionSession` ingest: one
//! batch-level validate+encode, then two RNG draws and a counter
//! increment per record under the shard lock
//! (`Perturber::perturb_index` → `observe_index`).
//!
//! The *legacy* path replays what `Shard::ingest_raw` did before the
//! index-domain rewrite: per record, `perturb_record` (a fresh `Vec`
//! per record, per-attribute uniform draws, plus the perturber's own
//! validation) followed by a re-`encode` of the perturbed record.
//!
//! Usage: `cargo run --release -p frapp-bench --bin bench_ingest`
//! (add `--quick` for a CI-friendly run, `--out PATH` to move the
//! JSON). Numbers are records/second, higher is better.
//!
//! With `--wire`, the benchmark instead measures *transport* cost
//! against a real loopback server and emits `BENCH_http.json` plus a
//! binary-framing summary in `BENCH_binary.json` (`--out-binary` to
//! move it): synchronous line-protocol submits (one round-trip per
//! batch) vs pipelined deferred-ack submits (one flush per stream) vs
//! the HTTP front-end vs the negotiated binary framing (sync,
//! pipelined, and fixed-width-cell pipelined), across small batch
//! sizes where per-batch latency dominates. This is the
//! latency-vs-throughput story the deferred-ack protocol and the
//! compact binary frames exist for.
//!
//! With `--mining`, it measures *submit-latency interference from
//! background mining* and emits `BENCH_mining.json`: a 1M-record
//! session (2^17 under `--quick`) is loaded, submit p99 is measured
//! idle, then re-measured while miner threads keep `mine_rules` jobs
//! at `min_support 0.001` continuously running on the job pool. The
//! acceptance bound — mining leaves submit p99 within 2x the idle
//! baseline (with a 1 ms absolute floor for few-core boxes where CPU
//! timeslicing, not queueing, dominates microsecond-scale p99s),
//! because jobs never execute on connection-serving threads — is
//! recorded in the JSON (`within_bound`).
//!
//! With `--fanin`, it measures *concurrent-connection fan-in* instead
//! and emits `BENCH_async.json`: N concurrent clients (64/256/1024)
//! over each framing (pipelined line protocol, pipelined binary,
//! synchronous HTTP) against the thread-per-connection front-end vs
//! the `--async` reactor. The interesting column is connections per
//! service thread: thread-per-connection burns one OS thread (stack,
//! scheduler slot) per client by construction, while the reactor
//! multiplexes every connection onto a fixed pool of event-loop
//! threads at comparable aggregate throughput — that per-thread
//! fan-in ratio is what lets the reactor hold ten thousand mostly-idle
//! collection clients without ten thousand stacks.

use frapp_core::perturb::{GammaDiagonal, Perturber};
use frapp_core::{CountAccumulator, Schema};
use frapp_service::protocol::RecordBatch;
use frapp_service::session::{CollectionSession, Mechanism};
use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::Mutex;
use std::time::Instant;

const GAMMA: f64 = 19.0;

fn schema() -> Schema {
    // The 500-cell domain the service benches use: large enough that
    // the legacy path's per-record encode is not trivially cached,
    // small enough to iterate quickly.
    Schema::new(vec![("a", 10), ("b", 10), ("c", 5)]).expect("static schema")
}

/// Raw (unperturbed) client records, skewed like a real submission mix.
fn raw_records(n: usize) -> Vec<Vec<u32>> {
    (0..n)
        .map(|i| vec![(i % 3) as u32, (i % 7) as u32, (i % 5) as u32])
        .collect()
}

struct Run {
    path: &'static str,
    shards: usize,
    batch: usize,
    records_per_sec: f64,
}

/// Best-of-`reps` records/sec for one configuration (min wall-clock,
/// the standard noise filter for throughput micro-benchmarks).
fn best_records_per_sec(reps: usize, records: usize, mut run: impl FnMut()) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        run();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    records as f64 / best
}

/// The production fast path: session ingest of flat [`RecordBatch`]es
/// (what the wire layer hands the server since the flat-buffer parse),
/// `batch` records per submit, one worker thread pinned per shard.
fn bench_fast(records: &[Vec<u32>], shards: usize, batch: usize, reps: usize) -> f64 {
    // Pre-chunked flat batches per shard, mirroring what `parse_records`
    // produces for each submit line.
    let per_shard: Vec<Vec<RecordBatch>> = records
        .chunks(records.len() / shards)
        .map(|chunk| chunk.chunks(batch).map(RecordBatch::from_rows).collect())
        .collect();
    best_records_per_sec(reps, records.len(), || {
        let session = CollectionSession::new(
            0,
            schema(),
            Mechanism::Deterministic { gamma: GAMMA },
            shards,
            7,
            4096,
        )
        .expect("valid session");
        std::thread::scope(|scope| {
            for (i, batches) in per_shard.iter().enumerate() {
                let session = &session;
                scope.spawn(move || {
                    for b in batches {
                        session
                            .submit_slices_to_shard(i % shards, b.iter(), false)
                            .expect("ingest");
                    }
                });
            }
        });
    })
}

/// The draw-counting RNG wrapper the old shard kept around its
/// generator (the v1 snapshot format persisted the count).
struct CountingRng {
    inner: rand::rngs::StdRng,
    draws: u64,
}

impl rand::RngCore for CountingRng {
    fn next_u32(&mut self) -> u32 {
        self.draws += 1;
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.draws += 1;
        self.inner.next_u64()
    }
}

/// The pre-rewrite per-record path: under the shard lock, each record
/// pays a dynamically dispatched `perturb_record` (per-record `Vec` +
/// per-attribute draws + the perturber's own validation) and a
/// re-`encode` of the perturbed output — exactly the work the old
/// `Shard::ingest_raw` did, `dyn Perturber`/`dyn RngCore` dispatch
/// included.
fn bench_legacy(records: &[Vec<u32>], shards: usize, batch: usize, reps: usize) -> f64 {
    use rand::{RngCore, SeedableRng};
    let s = schema();
    let gd = GammaDiagonal::new(&s, GAMMA).expect("gamma > 1");
    let perturber: &dyn Perturber = &gd;
    best_records_per_sec(reps, records.len(), || {
        let shard_state: Vec<Mutex<(CountAccumulator, CountingRng)>> = (0..shards)
            .map(|i| {
                Mutex::new((
                    CountAccumulator::new(s.clone()),
                    CountingRng {
                        inner: rand::rngs::StdRng::seed_from_u64(frapp_service::shard::shard_seed(
                            7, i,
                        )),
                        draws: 0,
                    },
                ))
            })
            .collect();
        std::thread::scope(|scope| {
            for (i, chunk) in records.chunks(records.len() / shards).enumerate() {
                let state = &shard_state[i % shards];
                let s = &s;
                scope.spawn(move || {
                    for b in chunk.chunks(batch) {
                        let mut guard = state.lock().unwrap();
                        let (acc, rng) = &mut *guard;
                        for record in b {
                            let perturbed = perturber
                                .perturb_record(record, rng as &mut dyn RngCore)
                                .expect("valid record");
                            let idx = s.encode(&perturbed).expect("schema-valid output");
                            acc.observe_index(idx);
                        }
                    }
                });
            }
        });
    })
}

/// One transport measurement for the `--wire` mode: create a session,
/// stream `records` in `batch`-sized submits, confirm the count landed,
/// close. Returns wall-clock seconds for the ingest portion.
mod wire {
    use super::*;
    use frapp_service::client::{Client, HttpClient, SessionSpec};
    use frapp_service::session::Mechanism;
    use frapp_service::ServerHandle;

    fn spec() -> SessionSpec {
        SessionSpec {
            schema: vec![("a".into(), 10), ("b".into(), 10), ("c".into(), 5)],
            mechanism: Mechanism::Deterministic { gamma: GAMMA },
            shards: Some(1),
            seed: Some(7),
        }
    }

    /// Sync line protocol: one request/response round-trip per batch.
    pub fn tcp_sync(handle: &ServerHandle, records: &[Vec<u32>], batch: usize) -> f64 {
        let mut client = Client::connect(handle.addr()).expect("connect");
        let session = client.create_session(&spec()).expect("create");
        let t0 = Instant::now();
        for b in records.chunks(batch) {
            client.submit_batch(session, b, true).expect("submit");
        }
        let elapsed = t0.elapsed().as_secs_f64();
        assert_eq!(
            client.stats(session).expect("stats").total,
            records.len() as u64
        );
        client.close_session(session).expect("close");
        elapsed
    }

    /// Pipelined line protocol: deferred acks, one flush at the end.
    pub fn tcp_pipelined(handle: &ServerHandle, records: &[Vec<u32>], batch: usize) -> f64 {
        let mut client = Client::connect(handle.addr()).expect("connect");
        let session = client.create_session(&spec()).expect("create");
        let t0 = Instant::now();
        for b in records.chunks(batch) {
            client.submit_nowait(session, b, true).expect("submit");
        }
        let accepted = client.flush().expect("flush");
        let elapsed = t0.elapsed().as_secs_f64();
        assert_eq!(accepted, records.len() as u64);
        client.close_session(session).expect("close");
        elapsed
    }

    /// HTTP front-end: one POST round-trip per batch (keep-alive).
    pub fn http(handle: &ServerHandle, records: &[Vec<u32>], batch: usize) -> f64 {
        let mut client =
            HttpClient::connect(handle.http_addr().expect("http enabled")).expect("connect");
        let session = client.create_session(&spec()).expect("create");
        let t0 = Instant::now();
        for b in records.chunks(batch) {
            client.submit_batch(session, b, true).expect("submit");
        }
        let elapsed = t0.elapsed().as_secs_f64();
        assert_eq!(
            client.stats(session).expect("stats").total,
            records.len() as u64
        );
        client.close_session(session).expect("close");
        elapsed
    }

    /// Binary framing, synchronous: negotiated upgrade, then one
    /// `OP_SUBMIT` frame and one response frame per batch.
    pub fn binary_sync(handle: &ServerHandle, records: &[Vec<u32>], batch: usize) -> f64 {
        let mut client = Client::connect(handle.addr()).expect("connect");
        client.negotiate_binary().expect("negotiate");
        let session = client.create_session(&spec()).expect("create");
        let t0 = Instant::now();
        for b in records.chunks(batch) {
            client.submit_batch(session, b, true).expect("submit");
        }
        let elapsed = t0.elapsed().as_secs_f64();
        assert_eq!(
            client.stats(session).expect("stats").total,
            records.len() as u64
        );
        client.close_session(session).expect("close");
        elapsed
    }

    /// Binary framing, pipelined: deferred `OP_SUBMIT` frames (no
    /// per-batch response), one flush at the end.
    pub fn binary_pipelined(handle: &ServerHandle, records: &[Vec<u32>], batch: usize) -> f64 {
        binary_pipelined_inner(handle, records, batch, false)
    }

    /// Binary framing, pipelined, with `FIXED32` cells: trades frame
    /// size for branch-free cell decoding on the server.
    pub fn binary_pipelined_fixed32(
        handle: &ServerHandle,
        records: &[Vec<u32>],
        batch: usize,
    ) -> f64 {
        binary_pipelined_inner(handle, records, batch, true)
    }

    fn binary_pipelined_inner(
        handle: &ServerHandle,
        records: &[Vec<u32>],
        batch: usize,
        fixed32: bool,
    ) -> f64 {
        let mut client = Client::connect(handle.addr()).expect("connect");
        client.negotiate_binary().expect("negotiate");
        client.set_binary_fixed32(fixed32);
        let session = client.create_session(&spec()).expect("create");
        let t0 = Instant::now();
        for b in records.chunks(batch) {
            client.submit_nowait(session, b, true).expect("submit");
        }
        let accepted = client.flush().expect("flush");
        let elapsed = t0.elapsed().as_secs_f64();
        assert_eq!(accepted, records.len() as u64);
        client.close_session(session).expect("close");
        elapsed
    }
}

/// The `--mining` mode: the job-subsystem acceptance measurement →
/// `BENCH_mining.json`. Submit p99 over a loaded session, idle vs
/// while the job pool continuously runs `mine_rules` at
/// `min_support 0.001` — the dispatch arm only validates and enqueues,
/// so the interference bound is 2x.
fn run_mining(quick: bool, out_path: &str) {
    use frapp_service::client::{Client, SessionSpec};
    use frapp_service::json::Value;
    use frapp_service::session::Mechanism;
    use frapp_service::{MineAlgo, MineSpec, Server, ServiceConfig};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Duration;

    let n: usize = if quick { 1 << 17 } else { 1 << 20 };
    let probes: usize = if quick { 1_000 } else { 2_000 };
    let batch = 100usize;

    let handle = Server::bind(ServiceConfig::default())
        .expect("bind")
        .spawn()
        .expect("spawn");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let session = client
        .create_session(&SessionSpec {
            schema: vec![("a".into(), 10), ("b".into(), 10), ("c".into(), 5)],
            mechanism: Mechanism::Deterministic { gamma: GAMMA },
            shards: Some(4),
            seed: Some(7),
        })
        .expect("create");

    // Load the corpus pipelined; pre-perturbed, because the load is
    // setup, not the measurement.
    let records = raw_records(n);
    for b in records.chunks(4096) {
        client.submit_nowait(session, b, true).expect("load submit");
    }
    assert_eq!(client.flush().expect("flush"), n as u64);

    let p99_us = |client: &mut Client| -> f64 {
        let mut lat: Vec<f64> = (0..probes)
            .map(|i| {
                let b = &records[(i * batch) % (n - batch)..][..batch];
                let t0 = Instant::now();
                client.submit_batch(session, b, true).expect("probe submit");
                t0.elapsed().as_secs_f64() * 1e6
            })
            .collect();
        lat.sort_by(f64::total_cmp);
        lat[lat.len() * 99 / 100]
    };

    let idle_p99 = p99_us(&mut client);
    eprintln!("idle submit p99: {idle_p99:.0} µs (batch={batch}, n={n})");

    // Keep the pool saturated for the whole measured window: one miner
    // thread per job worker, resubmitting as soon as a job finishes.
    let stop = AtomicBool::new(false);
    let addr = handle.addr();
    let (mining_p99, jobs_completed) = std::thread::scope(|scope| {
        let miners: Vec<_> = (0..2)
            .map(|m| {
                let stop = &stop;
                scope.spawn(move || {
                    let mut mc = Client::connect(addr).expect("miner connect");
                    let spec = MineSpec {
                        algo: if m == 0 {
                            MineAlgo::Apriori
                        } else {
                            MineAlgo::FpGrowth
                        },
                        min_support: 0.001,
                        min_confidence: 0.5,
                        max_length: 0,
                    };
                    let mut jobs = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let job = mc.mine_rules(session, &spec).expect("mine submit");
                        let status = mc
                            .wait_job(job, Duration::from_secs(60))
                            .expect("mine wait");
                        assert_eq!(
                            status.get("state").and_then(Value::as_str),
                            Some("done"),
                            "mining job did not complete"
                        );
                        jobs += 1;
                    }
                    jobs
                })
            })
            .collect();
        let p99 = p99_us(&mut client);
        stop.store(true, Ordering::Relaxed);
        let jobs: u64 = miners.into_iter().map(|h| h.join().unwrap()).sum();
        (p99, jobs)
    });
    handle.shutdown().expect("shutdown");

    let ratio = mining_p99 / idle_p99;
    // The bound the job architecture is accountable for: a submit is
    // never queued behind a mining pass (which takes seconds), so p99
    // stays within 2x idle — or within an absolute 1 ms floor on boxes
    // where the idle p99 is tens of microseconds and raw CPU
    // timeslicing against the mining workers (not queueing) dominates.
    // On a few-core machine the floor is what binds; on a wide box the
    // 2x ratio does.
    let cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    let floor_us = 1_000.0;
    let bound_us = (2.0 * idle_p99).max(floor_us);
    let within_bound = mining_p99 <= bound_us;
    eprintln!(
        "submit p99 under mining: {mining_p99:.0} µs ({ratio:.2}x idle, bound {bound_us:.0} µs, \
         {jobs_completed} jobs completed during the window)"
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"service_mining_interference\",");
    let _ = writeln!(json, "  \"records\": {n},");
    let _ = writeln!(json, "  \"probe_batches\": {probes},");
    let _ = writeln!(json, "  \"batch\": {batch},");
    let _ = writeln!(json, "  \"min_support\": 0.001,");
    let _ = writeln!(json, "  \"cpus\": {cpus},");
    let _ = writeln!(json, "  \"idle_submit_p99_us\": {idle_p99:.1},");
    let _ = writeln!(json, "  \"mining_submit_p99_us\": {mining_p99:.1},");
    let _ = writeln!(json, "  \"p99_ratio\": {ratio:.3},");
    let _ = writeln!(json, "  \"bound_us\": {bound_us:.1},");
    let _ = writeln!(json, "  \"jobs_completed_in_window\": {jobs_completed},");
    let _ = writeln!(
        json,
        "  \"note\": \"bound is max(2x idle, 1ms): on few-core boxes CPU timeslicing \
         against the mining workers, not queueing, sets the microsecond-scale p99\","
    );
    let _ = writeln!(json, "  \"within_bound\": {within_bound}");
    json.push_str("}\n");
    let mut file = std::fs::File::create(out_path).expect("create output file");
    file.write_all(json.as_bytes()).expect("write output file");
    eprintln!("wrote {out_path}");
}

/// The `--fanin` mode: concurrent-connection fan-in, thread-per-
/// connection vs the async reactor → `BENCH_async.json`.
fn run_fanin(quick: bool, out_path: &str) {
    use frapp_service::client::{Client, HttpClient, SessionSpec};
    use frapp_service::session::Mechanism;
    use frapp_service::{Server, ServiceConfig};
    use std::sync::Barrier;

    let levels: &[usize] = if quick { &[16, 64] } else { &[64, 256, 1024] };
    // Fixed record budget per run so every measurement window is long
    // enough to swamp thread wake-up jitter (a per-client constant
    // would make the 64-client runs sub-millisecond); best-of-reps is
    // the same noise filter the other modes use.
    let (total_records, reps) = if quick { (200_000, 2) } else { (2_000_000, 3) };
    let batch = 20usize;
    const REACTOR_THREADS: usize = 2;
    // Pipelined framings stream deferred submits with one flush per
    // rep; HTTP is one round-trip per batch by construction, which is
    // exactly the comparison the framing column exists to show.
    let framings: &[&'static str] = &["line", "binary", "http"];

    struct FaninRun {
        front_end: &'static str,
        framing: &'static str,
        clients: usize,
        records_per_client: usize,
        records_per_sec: f64,
        accepted_connections: u64,
        sheds: u64,
        service_threads: usize,
    }
    let mut runs: Vec<FaninRun> = Vec::new();

    for (front_end, async_mode) in [("threaded", false), ("async", true)] {
        for &framing in framings {
            for &clients in levels {
                let batches = (total_records / clients).div_ceil(batch);
                let per_client = batches * batch;
                // A fresh server per level so the accepted-connection
                // counter is exactly this level's fan-in. The cap is the
                // same for both front-ends and comfortably above every
                // level — including the window where a new rep's
                // connections overlap the previous rep's still-closing
                // workers: the measurement is fan-in capacity, not
                // shedding.
                let mut config = ServiceConfig {
                    max_connections: 4096,
                    ..ServiceConfig::default()
                }
                .with_http_addr("127.0.0.1:0");
                if async_mode {
                    config = config.with_reactor(REACTOR_THREADS);
                }
                let handle = Server::bind(config).expect("bind").spawn().expect("spawn");
                let addr = handle.addr();
                let http_addr = handle.http_addr().expect("http enabled");
                let mut control = Client::connect(addr).expect("connect");
                let session = control
                    .create_session(&SessionSpec {
                        schema: vec![("a".into(), 10), ("b".into(), 10), ("c".into(), 5)],
                        mechanism: Mechanism::Deterministic { gamma: GAMMA },
                        shards: Some(4),
                        seed: Some(7),
                    })
                    .expect("create");

                let mut best_elapsed = f64::MAX;
                for _ in 0..reps {
                    // Connect everyone first, then start the clock
                    // together: the measurement is steady-state fan-in
                    // throughput, not connect-storm handling.
                    let barrier = Barrier::new(clients + 1);
                    let t0 = std::thread::scope(|scope| {
                        for c in 0..clients {
                            let barrier = &barrier;
                            scope.spawn(move || {
                                let records: Vec<Vec<u32>> = (0..batch)
                                    .map(|i| {
                                        vec![((c + i) % 10) as u32, (i % 10) as u32, (i % 5) as u32]
                                    })
                                    .collect();
                                if framing == "http" {
                                    let mut client = loop {
                                        match HttpClient::connect(http_addr) {
                                            Ok(cl) => break cl,
                                            // Backlog overflow under the
                                            // connect storm; retry until
                                            // admitted.
                                            Err(_) => std::thread::sleep(
                                                std::time::Duration::from_millis(5),
                                            ),
                                        }
                                    };
                                    barrier.wait();
                                    for _ in 0..batches {
                                        client
                                            .submit_batch(session, &records, true)
                                            .expect("submit");
                                    }
                                    return;
                                }
                                let mut client = loop {
                                    match Client::connect(addr) {
                                        Ok(cl) => break cl,
                                        // Backlog overflow under the connect
                                        // storm; retry until admitted.
                                        Err(_) => {
                                            std::thread::sleep(std::time::Duration::from_millis(5))
                                        }
                                    }
                                };
                                if framing == "binary" {
                                    client.negotiate_binary().expect("negotiate");
                                }
                                barrier.wait();
                                for _ in 0..batches {
                                    client
                                        .submit_nowait(session, &records, true)
                                        .expect("submit");
                                }
                                let accepted = client.flush().expect("flush");
                                assert_eq!(accepted, (batches * batch) as u64);
                            });
                        }
                        barrier.wait();
                        Instant::now()
                    });
                    best_elapsed = best_elapsed.min(t0.elapsed().as_secs_f64());
                }
                let total = (clients * per_client * reps) as u64;
                assert_eq!(control.stats(session).expect("stats").total, total);
                let report = control.server_metrics().expect("metrics");
                assert_eq!(report.sheds, 0, "no sheds below the cap");
                let rps = (clients * per_client) as f64 / best_elapsed;
                // Thread-per-connection spends one worker thread per
                // admitted client; the reactor spends its fixed event-loop
                // threads however many clients connect.
                let service_threads = if async_mode { REACTOR_THREADS } else { clients };
                let accepted_connections = if framing == "http" {
                    report.http_connections
                } else {
                    report.tcp_connections
                };
                eprintln!(
                    "{front_end}/{framing} clients={clients}: {rps:.0} rec/s, \
                     {accepted_connections} conns / {service_threads} service thread(s)",
                );
                runs.push(FaninRun {
                    front_end,
                    framing,
                    clients,
                    records_per_client: per_client,
                    records_per_sec: rps,
                    accepted_connections,
                    sheds: report.sheds,
                    service_threads,
                });
                handle.shutdown().expect("shutdown");
            }
        }
    }

    let find = |front_end: &str, framing: &str, clients: usize| {
        runs.iter()
            .find(|r| r.front_end == front_end && r.framing == framing && r.clients == clients)
            .expect("run present")
    };
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"service_fanin\",");
    let _ = writeln!(json, "  \"records_per_run\": {total_records},");
    let _ = writeln!(json, "  \"reps_best_of\": {reps},");
    let _ = writeln!(json, "  \"reactor_threads\": {REACTOR_THREADS},");
    let _ = writeln!(json, "  \"max_connections\": 4096,");
    let _ = writeln!(
        json,
        "  \"cpus\": {},",
        std::thread::available_parallelism().map_or(0, |n| n.get())
    );
    // On a 1-CPU box the N client threads ARE the load generator and
    // compete with the server for the same core, so the throughput
    // ratio under-reports the reactor (1 runnable server thread vs N
    // for thread-per-connection under fair scheduling); the structural
    // result is the fan-in column.
    let _ = writeln!(
        json,
        "  \"note\": \"loopback run; clients share the machine — on few-core boxes \
         fair scheduling starves the single reactor thread relative to N connection \
         threads, so throughput_async_vs_threaded is a lower bound\","
    );
    json.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"front_end\": \"{}\", \"framing\": \"{}\", \"clients\": {}, \
             \"records_per_client\": {}, \"records_per_sec\": {:.0}, \
             \"accepted_connections\": {}, \"sheds\": {}, \"service_threads\": {}}}{}",
            r.front_end,
            r.framing,
            r.clients,
            r.records_per_client,
            r.records_per_sec,
            r.accepted_connections,
            r.sheds,
            r.service_threads,
            if i + 1 < runs.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    // Headline 1: concurrent-connection fan-in per service thread —
    // the resource the reactor exists to conserve. Framing-independent
    // (same thread accounting on every framing), so computed from the
    // line-protocol runs. `clients` is the concurrent fan-in each run
    // sustained (the accepted_connections counter is cumulative across
    // reps and includes the control connection).
    json.push_str("  \"fan_in_per_service_thread\": {\n");
    for (i, &clients) in levels.iter().enumerate() {
        let threaded = find("threaded", "line", clients);
        let async_run = find("async", "line", clients);
        let _ = writeln!(
            json,
            "    \"{clients}\": {{\"threaded\": {:.1}, \"async\": {:.1}, \"ratio\": {:.1}}}{}",
            clients as f64 / threaded.service_threads as f64,
            clients as f64 / async_run.service_threads as f64,
            (clients as f64 / async_run.service_threads as f64)
                / (clients as f64 / threaded.service_threads as f64),
            if i + 1 < levels.len() { "," } else { "" }
        );
    }
    json.push_str("  },\n");
    // Headline 2: the fan-in is not bought with throughput — aggregate
    // records/sec at equal client count and connection cap, per
    // framing.
    json.push_str("  \"throughput_async_vs_threaded\": {\n");
    for (fi, &framing) in framings.iter().enumerate() {
        let _ = writeln!(json, "    \"{framing}\": {{");
        for (i, &clients) in levels.iter().enumerate() {
            let _ = writeln!(
                json,
                "      \"{clients}\": {:.2}{}",
                find("async", framing, clients).records_per_sec
                    / find("threaded", framing, clients).records_per_sec,
                if i + 1 < levels.len() { "," } else { "" }
            );
        }
        let _ = writeln!(
            json,
            "    }}{}",
            if fi + 1 < framings.len() { "," } else { "" }
        );
    }
    json.push_str("  }\n}\n");

    let mut file = std::fs::File::create(out_path).expect("create output file");
    file.write_all(json.as_bytes()).expect("write output file");
    eprintln!("wrote {out_path}");
}

/// The `--wire` mode: loopback transport comparison → `BENCH_http.json`
/// plus the binary-framing summary → `BENCH_binary.json`.
fn run_wire(quick: bool, out_path: &str, out_binary_path: &str) {
    use frapp_service::{Server, ServiceConfig};

    let total = if quick { 1 << 14 } else { 1 << 16 };
    let reps = if quick { 3 } else { 5 };
    // Pre-perturbed records: the session-side work is a plain counter
    // increment, so the measurement isolates framing + round-trips.
    let records = raw_records(total);
    let batches = [16usize, 64, 256];

    let handle = Server::bind(ServiceConfig::default().with_http_addr("127.0.0.1:0"))
        .expect("bind")
        .spawn()
        .expect("spawn");

    struct WireRun {
        transport: &'static str,
        batch: usize,
        records_per_sec: f64,
    }
    type WireBench = fn(&frapp_service::ServerHandle, &[Vec<u32>], usize) -> f64;
    let transports: [(&'static str, WireBench); 6] = [
        ("tcp_sync", wire::tcp_sync),
        ("tcp_pipelined", wire::tcp_pipelined),
        ("http", wire::http),
        ("binary_sync", wire::binary_sync),
        ("binary_pipelined", wire::binary_pipelined),
        ("binary_pipelined_fixed32", wire::binary_pipelined_fixed32),
    ];
    let mut runs: Vec<WireRun> = Vec::new();
    for &batch in &batches {
        for (name, bench) in transports {
            let secs = (0..reps)
                .map(|_| bench(&handle, &records, batch))
                .fold(f64::MAX, f64::min);
            let rps = total as f64 / secs;
            eprintln!("batch={batch} {name}: {rps:.0} rec/s");
            runs.push(WireRun {
                transport: name,
                batch,
                records_per_sec: rps,
            });
        }
    }
    handle.shutdown().expect("shutdown");

    let rate = |transport: &str, batch: usize| -> f64 {
        runs.iter()
            .find(|r| r.transport == transport && r.batch == batch)
            .map(|r| r.records_per_sec)
            .unwrap_or(f64::NAN)
    };

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"service_wire\",");
    let _ = writeln!(json, "  \"schema_domain\": {},", schema().domain_size());
    let _ = writeln!(json, "  \"records_per_run\": {total},");
    let _ = writeln!(json, "  \"reps\": {reps},");
    json.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"transport\": \"{}\", \"batch\": {}, \"records_per_sec\": {:.0}}}{}",
            r.transport,
            r.batch,
            r.records_per_sec,
            if i + 1 < runs.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"speedup_pipelined_vs_sync\": {\n");
    for (i, &batch) in batches.iter().enumerate() {
        let _ = writeln!(
            json,
            "    \"{batch}\": {:.2}{}",
            rate("tcp_pipelined", batch) / rate("tcp_sync", batch),
            if i + 1 < batches.len() { "," } else { "" }
        );
    }
    json.push_str("  }\n}\n");

    let mut file = std::fs::File::create(out_path).expect("create output file");
    file.write_all(json.as_bytes()).expect("write output file");
    eprintln!("wrote {out_path}");

    // The binary-framing summary: same measurement pass, but the
    // headline the binary protocol is accountable for — throughput
    // against the best *JSON* path at the same batch size.
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"service_wire_binary\",");
    let _ = writeln!(json, "  \"schema_domain\": {},", schema().domain_size());
    let _ = writeln!(json, "  \"records_per_run\": {total},");
    let _ = writeln!(json, "  \"reps\": {reps},");
    json.push_str("  \"runs\": [\n");
    let binary_runs: Vec<&WireRun> = runs
        .iter()
        .filter(|r| r.transport.starts_with("binary"))
        .collect();
    for (i, r) in binary_runs.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"transport\": \"{}\", \"batch\": {}, \"records_per_sec\": {:.0}}}{}",
            r.transport,
            r.batch,
            r.records_per_sec,
            if i + 1 < binary_runs.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"speedup_binary_pipelined_vs_json_pipelined\": {\n");
    for (i, &batch) in batches.iter().enumerate() {
        let best_binary =
            rate("binary_pipelined", batch).max(rate("binary_pipelined_fixed32", batch));
        let _ = writeln!(
            json,
            "    \"{batch}\": {:.2}{}",
            best_binary / rate("tcp_pipelined", batch),
            if i + 1 < batches.len() { "," } else { "" }
        );
    }
    json.push_str("  },\n");
    json.push_str("  \"speedup_binary_sync_vs_http\": {\n");
    for (i, &batch) in batches.iter().enumerate() {
        let _ = writeln!(
            json,
            "    \"{batch}\": {:.2}{}",
            rate("binary_sync", batch) / rate("http", batch),
            if i + 1 < batches.len() { "," } else { "" }
        );
    }
    json.push_str("  }\n}\n");

    let mut file = std::fs::File::create(out_binary_path).expect("create output file");
    file.write_all(json.as_bytes()).expect("write output file");
    eprintln!("wrote {out_binary_path}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let wire_mode = args.iter().any(|a| a == "--wire");
    let fanin_mode = args.iter().any(|a| a == "--fanin");
    let mining_mode = args.iter().any(|a| a == "--mining");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| {
            if mining_mode {
                "BENCH_mining.json".to_owned()
            } else if fanin_mode {
                "BENCH_async.json".to_owned()
            } else if wire_mode {
                "BENCH_http.json".to_owned()
            } else {
                "BENCH_ingest.json".to_owned()
            }
        });
    if mining_mode {
        return run_mining(quick, &out_path);
    }
    if fanin_mode {
        return run_fanin(quick, &out_path);
    }
    if wire_mode {
        let out_binary_path = args
            .iter()
            .position(|a| a == "--out-binary")
            .and_then(|i| args.get(i + 1))
            .cloned()
            .unwrap_or_else(|| "BENCH_binary.json".to_owned());
        return run_wire(quick, &out_path, &out_binary_path);
    }

    let total = if quick { 1 << 16 } else { 1 << 19 };
    let reps = if quick { 3 } else { 5 };
    let records = raw_records(total);
    let batches = [256usize, 1024, 8192];
    let shard_counts = [1usize, 4];

    let mut runs: Vec<Run> = Vec::new();
    for &shards in &shard_counts {
        for &batch in &batches {
            let fast = bench_fast(&records, shards, batch, reps);
            let legacy = bench_legacy(&records, shards, batch, reps);
            eprintln!(
                "shards={shards} batch={batch}: fast {fast:.0} rec/s, \
                 legacy {legacy:.0} rec/s ({:.2}x)",
                fast / legacy
            );
            runs.push(Run {
                path: "fast",
                shards,
                batch,
                records_per_sec: fast,
            });
            runs.push(Run {
                path: "legacy",
                shards,
                batch,
                records_per_sec: legacy,
            });
        }
    }

    // Headline: single-shard speedup at each batch size (thread scaling
    // held constant, so the ratio isolates the per-record path cost).
    let speedup_at = |batch: usize| -> f64 {
        let get = |path: &str| {
            runs.iter()
                .find(|r| r.path == path && r.shards == 1 && r.batch == batch)
                .map(|r| r.records_per_sec)
                .unwrap_or(f64::NAN)
        };
        get("fast") / get("legacy")
    };

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"service_ingest\",");
    let _ = writeln!(json, "  \"schema_domain\": {},", schema().domain_size());
    let _ = writeln!(json, "  \"gamma\": {GAMMA},");
    let _ = writeln!(json, "  \"records_per_run\": {total},");
    let _ = writeln!(json, "  \"reps\": {reps},");
    json.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"path\": \"{}\", \"shards\": {}, \"batch\": {}, \
             \"records_per_sec\": {:.0}}}{}",
            r.path,
            r.shards,
            r.batch,
            r.records_per_sec,
            if i + 1 < runs.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"speedup_fast_vs_legacy_1_shard\": {\n");
    for (i, &batch) in batches.iter().enumerate() {
        let _ = writeln!(
            json,
            "    \"{batch}\": {:.2}{}",
            speedup_at(batch),
            if i + 1 < batches.len() { "," } else { "" }
        );
    }
    json.push_str("  }\n}\n");

    let mut file = std::fs::File::create(&out_path).expect("create output file");
    file.write_all(json.as_bytes()).expect("write output file");
    eprintln!("wrote {out_path}");
}
