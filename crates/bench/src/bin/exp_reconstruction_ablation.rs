//! Ablation: inversion-based reconstruction (`X̂ = A⁻¹Y`, the paper's
//! Equation 8) versus the iterative Bayesian / EM operator of the
//! related work (Agrawal & Srikant SIGMOD'00, Agrawal & Aggarwal
//! PODS'01), on gamma-diagonal-perturbed data.
//!
//! EM is nonnegative by construction and usually slightly more accurate
//! on sparse histograms (inversion scatters negative mass); inversion is
//! closed-form and orders of magnitude faster. This experiment measures
//! both on a CENSUS-like full-domain reconstruction.

use frapp_bench::write_results;
use frapp_core::em::{em_reconstruct_gamma, EmParams};
use frapp_core::perturb::{GammaDiagonal, Perturber};
use frapp_core::reconstruct::{clamp_counts, GammaDiagonalReconstructor};
use frapp_core::Dataset;
use frapp_linalg::vector;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::time::Instant;

fn main() {
    let mut csv = String::from("n,method,l1_error,l2_rel_error,seconds\n");
    println!("full-domain reconstruction: matrix inversion vs EM (CENSUS-like, gamma = 19)\n");
    println!(
        "{:>8} {:>12} {:>14} {:>14} {:>12}",
        "N", "method", "L1 err/N", "rel L2 err", "seconds"
    );
    for n in [10_000usize, 48_842] {
        let ds = frapp_data::census::census_like_n(n, 23);
        let gd = GammaDiagonal::new(ds.schema(), 19.0).expect("gamma > 1");
        let mut rng = StdRng::seed_from_u64(5);
        let perturbed = Dataset::from_trusted(
            ds.schema().clone(),
            gd.perturb_dataset(ds.records(), &mut rng)
                .expect("valid records"),
        );
        let x_true = ds.count_vector();
        let y = perturbed.count_vector();

        // Inversion (closed form) + clamping.
        let t0 = Instant::now();
        let mut inv = GammaDiagonalReconstructor::new(&gd).reconstruct(&y);
        clamp_counts(&mut inv, n as f64);
        let inv_time = t0.elapsed().as_secs_f64();

        // EM (structured O(n)-per-iteration).
        let t0 = Instant::now();
        let em = em_reconstruct_gamma(&gd, &y, &EmParams::default()).expect("valid counts");
        let em_time = t0.elapsed().as_secs_f64();

        for (name, est, secs) in [("inversion", &inv, inv_time), ("em", &em.estimate, em_time)] {
            let l1: f64 = est
                .iter()
                .zip(&x_true)
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>()
                / n as f64;
            let l2 = vector::relative_error_2(est, &x_true);
            println!("{n:>8} {name:>12} {l1:>14.4} {l2:>14.4} {secs:>12.4}");
            let _ = writeln!(csv, "{n},{name},{l1:.6},{l2:.6},{secs:.6}");
        }
    }
    write_results("reconstruction_ablation.csv", &csv)
        .expect("write results/reconstruction_ablation.csv");
    println!("\nwrote results/reconstruction_ablation.csv");
}
