//! Runs every experiment binary's logic in sequence, writing all
//! `results/*.csv` files — the one-shot reproduction driver.

use std::process::Command;

fn main() {
    let bins = [
        "exp_schemas",
        "exp_table3",
        "exp_fig4",
        "exp_optimality",
        "exp_reconstruction_ablation",
        "exp_fig1",
        "exp_fig2",
        "exp_fig3",
        "exp_privacy_sweep",
        "exp_scaling",
    ];
    for bin in bins {
        println!("\n================ {bin} ================\n");
        let status = Command::new(
            std::env::current_exe()
                .expect("self path")
                .parent()
                .expect("bin dir")
                .join(bin),
        )
        .status()
        .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed with {status}");
    }
    println!("\nall experiments complete; see results/*.csv");
}
