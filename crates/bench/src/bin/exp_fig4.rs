//! Reproduces the paper's Figure 4: condition numbers of the
//! reconstruction (transition-probability) matrices versus itemset
//! length for each method, on CENSUS and HEALTH (exp id F4).
//!
//! Expected shape (the paper's key structural result): DET-GD/RAN-GD
//! condition numbers are constant, `1 + |S_U|/(γ−1)`, across lengths,
//! while MASK and C&P grow exponentially — which is exactly what makes
//! their long-pattern mining collapse.

use frapp_baselines::{CutAndPaste, Mask};
use frapp_bench::write_results;
use frapp_core::perturb::GammaDiagonal;
use frapp_core::PrivacyRequirement;
use std::fmt::Write as _;

fn main() {
    let gamma = PrivacyRequirement::paper_default().gamma();
    let mut csv = String::from("dataset,length,detgd,rangd,mask,cnp\n");
    for (name, schema, max_len) in [
        ("CENSUS", frapp_data::census::schema(), 6usize),
        ("HEALTH", frapp_data::health::schema(), 7usize),
    ] {
        let gd = GammaDiagonal::new(&schema, gamma).expect("gamma > 1");
        let mask = Mask::from_gamma(&schema, gamma).expect("gamma > 1");
        let cnp = CutAndPaste::paper_params(&schema).expect("static params");
        println!(
            "{name}: condition numbers vs itemset length (gamma = {gamma:.0}, |S_U| = {})",
            schema.domain_size()
        );
        println!(
            "{:>6} {:>14} {:>14} {:>14} {:>14}",
            "len", "DET-GD", "RAN-GD", "MASK", "C&P"
        );
        for k in 1..=max_len {
            // GD: the marginalized matrix over any k attributes has the
            // same condition number; report the closed form. RAN-GD
            // reconstructs with the expected matrix = DET-GD's.
            let c_gd = (gamma + schema.domain_size() as f64 - 1.0) / (gamma - 1.0);
            let c_mask = mask.itemset_condition_number(k);
            let c_cnp = cnp.itemset_condition_number(k);
            println!("{k:>6} {c_gd:>14.4e} {c_gd:>14.4e} {c_mask:>14.4e} {c_cnp:>14.4e}");
            let _ = writeln!(
                csv,
                "{name},{k},{c_gd:.6e},{c_gd:.6e},{c_mask:.6e},{c_cnp:.6e}"
            );
        }
        // Sanity: verify the GD closed form against the dense spectrum
        // of a small marginal matrix.
        let marginal = gd.marginal_matrix(&[0, 1]);
        let numeric = marginal.condition_number();
        let closed = (gamma + schema.domain_size() as f64 - 1.0) / (gamma - 1.0);
        assert!(
            (numeric - closed).abs() < 1e-6 * closed,
            "marginal condition number mismatch: {numeric} vs {closed}"
        );
        println!();
    }
    write_results("fig4_condition_numbers.csv", &csv)
        .expect("write results/fig4_condition_numbers.csv");
    println!("wrote results/fig4_condition_numbers.csv");
}
