//! `bench_soak` — the robustness soak harness: mixed workloads against
//! real in-process servers, with every run ending in hard invariant
//! checks instead of throughput numbers.
//!
//! ```text
//! bench_soak [--quick] [--duration-secs N] [--seed S] [--out PATH]
//! ```
//!
//! Seven scenarios run per round (one round under `--quick`, repeated
//! rounds until `--duration-secs` elapses otherwise):
//!
//! * **churn** — session create/close cycling far past the
//!   `max_sessions` LRU cap with a persistence spill directory, so
//!   sessions are continuously evicted to disk and resurrected.
//! * **skew_flood** — pipelined deferred-ack floods with an 85%-hot
//!   session against the async reactor, flushing mid-stream.
//! * **reconnect_storm** — threads hammering connect / submit / abrupt
//!   disconnect cycles (no clean close) against one shared session.
//! * **slow_reader** — a raw socket pipelines a burst of large
//!   reconstruct requests and then refuses to read while the reactor's
//!   write buffers back up.
//! * **persist_faults** — snapshots taken under an injected
//!   `persist_write`/`persist_rename`/`persist_sync` fault storm, then
//!   a clean restart that must recover bit-identically.
//! * **mining_churn** — background `mine_rules` jobs racing session
//!   eviction (LRU spill under a small cap) and `close_session`:
//!   every job must reach exactly one terminal state, jobs on closed
//!   sessions must fail cleanly in-band, and the job counters must
//!   balance.
//! * **federated_outage** — a 3-node cluster with injected link delays:
//!   ingest, kill an owner, require a correctly-labelled degraded
//!   partial read, restart the owner and require the cluster to heal
//!   back to bit-identity with a single-node baseline.
//!
//! Invariants checked (any violation fails the process with exit 1):
//! no lost or duplicated acks (every accepted watermark and stats
//! total equals exactly what was submitted), no watermark regressions
//! across flushes, bounded peer-link replay history, degraded reads
//! labelled with accurate coverage, and bit-identical recovery after
//! both fault-storm restarts and owner outages.

use frapp_core::perturb::{GammaDiagonal, Perturber};
use frapp_service::client::{Client, SessionSpec};
use frapp_service::json::Value;
use frapp_service::session::{Mechanism, ReconstructionMethod};
use frapp_service::{FaultPlan, MineSpec, Server, ServerHandle, ServiceConfig, ServiceError};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{BufRead, BufReader, Write as _};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

const GAMMA: f64 = 19.0;
/// Twice the link history truncation threshold (`fed.rs` truncates at
/// 64): the replay buffer must never grow past this.
const HISTORY_BOUND: u64 = 128;

// ---------------------------------------------------------------- utils

fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "frapp-soak-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Reserves `n` distinct loopback ports (needed because a federation
/// peer list must be known before any node binds).
fn free_ports(n: usize) -> Vec<u16> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("reserve port"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().unwrap().port())
        .collect()
}

/// Deterministic scenario-level randomness (which session to hit,
/// which to close) — xorshift64*, independent of the `rand` shim.
struct Srng(u64);

impl Srng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

fn spec(schema: &[(&str, u32)], shards: usize, seed: u64) -> SessionSpec {
    SessionSpec {
        schema: schema.iter().map(|(n, c)| (n.to_string(), *c)).collect(),
        mechanism: Mechanism::Deterministic { gamma: GAMMA },
        shards: Some(shards),
        seed: Some(seed),
    }
}

/// A deterministic pre-perturbed stream over `schema`: raw records
/// from a fixed pattern, perturbed client-side with a seeded RNG (the
/// paper's trust model, and the precondition for bit-identity checks).
fn perturbed_stream(schema: &[(&str, u32)], n: usize, seed: u64) -> Vec<Vec<u32>> {
    let sch = frapp_core::Schema::new(schema.to_vec()).expect("schema");
    let gd = GammaDiagonal::new(&sch, GAMMA).expect("mechanism");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let raw: Vec<u32> = schema.iter().map(|&(_, card)| (i as u32) % card).collect();
            gd.perturb_record(&raw, &mut rng).expect("perturb")
        })
        .collect()
}

const SMALL: &[(&str, u32)] = &[("a", 4), ("b", 3), ("c", 2)];
const WIDE: &[(&str, u32)] = &[("x", 48), ("y", 48)];

/// Ground truth for a stream: the same spec and batches against one
/// plain single-node server.
fn single_node_estimates(schema: &[(&str, u32)], stream: &[Vec<u32>], batch: usize) -> Vec<f64> {
    let handle = Server::bind(ServiceConfig::default())
        .expect("bind baseline")
        .spawn()
        .expect("spawn baseline");
    let mut client = Client::connect(handle.addr()).expect("connect baseline");
    let session = client.create_session(&spec(schema, 2, 0x5EED)).unwrap();
    for chunk in stream.chunks(batch) {
        client.submit_batch(session, chunk, true).unwrap();
    }
    let rec = client
        .reconstruct(session, ReconstructionMethod::ClosedForm, false)
        .unwrap();
    assert_eq!(rec.n as usize, stream.len());
    handle.shutdown().unwrap();
    rec.estimates
}

// ----------------------------------------------------------- reporting

#[derive(Default)]
struct Soak {
    violations: Vec<String>,
    scenarios: Vec<(String, Vec<(String, String)>)>,
}

impl Soak {
    /// Records an invariant violation (and keeps going: a soak run
    /// should surface every broken invariant, not just the first).
    fn check(&mut self, scenario: &str, ok: bool, msg: impl FnOnce() -> String) {
        if !ok {
            let m = format!("{scenario}: {}", msg());
            eprintln!("VIOLATION {m}");
            self.violations.push(m);
        }
    }

    fn record(&mut self, name: &str, round: usize, details: Vec<(String, String)>) {
        let mut d = vec![("round".to_string(), round.to_string())];
        d.extend(details);
        self.scenarios.push((name.to_string(), d));
    }
}

fn kv(k: &str, v: impl std::fmt::Display) -> (String, String) {
    (k.to_string(), v.to_string())
}

// ----------------------------------------------------------- scenarios

/// Session churn at the LRU cap: 10 sessions created against a cap of
/// 4, each fully ingested while resident, so every create past the
/// cap spills the least-recently-used session to disk. One resident
/// and one already-spilled session are closed mid-run. A restart with
/// a larger cap must recover every surviving session with exact
/// totals — and must NOT resurrect the closed ones.
fn churn(s: &mut Soak, round: usize, scale: usize, seed: u64) {
    let dir = temp_dir("churn");
    let config = ServiceConfig {
        max_sessions: 4,
        persist_dir: Some(dir.clone()),
        ..ServiceConfig::default()
    };
    let handle = Server::bind(config).unwrap().spawn().unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    let n_sessions = 10;
    let batches = 3 * scale;
    let batch = 48;
    let stream = perturbed_stream(SMALL, batch * batches * n_sessions, seed);
    let mut ids = Vec::with_capacity(n_sessions);
    let mut expected = Vec::with_capacity(n_sessions);
    let mut off = 0;
    for i in 0..n_sessions {
        let id = client
            .create_session(&spec(SMALL, 2, seed + i as u64))
            .unwrap();
        ids.push(id);
        let mut total = 0u64;
        for _ in 0..batches {
            let chunk = &stream[off..off + batch];
            off += batch;
            client.submit_batch(id, chunk, true).unwrap();
            total += batch as u64;
        }
        expected.push(total);
        if i == 8 {
            // Close a session that is still resident.
            let was_closed = client.close_session(ids[8]).unwrap();
            s.check("churn", was_closed, || {
                "closing a resident session reported nothing to close".to_string()
            });
        }
    }
    // Close a session that by now lives only in the spill directory
    // (the cap is 4; session 1 was evicted long ago).
    let was_closed = client.close_session(ids[1]).unwrap();
    s.check("churn", was_closed, || {
        "closing a spilled session reported nothing to close".to_string()
    });
    handle.shutdown().unwrap();

    // Restart with a cap big enough for everything on disk: every
    // session except the two closed ones must come back with its exact
    // total — no ack lost to an eviction, nothing resurrected from a
    // closed session's stale snapshot.
    let config2 = ServiceConfig {
        max_sessions: 16,
        persist_dir: Some(dir.clone()),
        ..ServiceConfig::default()
    };
    let handle2 = Server::bind(config2).unwrap().spawn().unwrap();
    let mut client2 = Client::connect(handle2.addr()).unwrap();
    let recovered = client2.list_sessions().unwrap();
    for i in 0..n_sessions {
        let present = recovered.contains(&ids[i]);
        if i == 1 || i == 8 {
            s.check("churn", !present, || {
                format!("closed session {} resurrected after restart", ids[i])
            });
            continue;
        }
        s.check("churn", present, || {
            format!("session {} lost across spill + restart", ids[i])
        });
        if present {
            let st = client2.stats(ids[i]).unwrap();
            s.check("churn", st.total == expected[i], || {
                format!(
                    "session {} total {} != submitted {}",
                    ids[i], st.total, expected[i]
                )
            });
        }
    }
    handle2.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    s.record(
        "churn",
        round,
        vec![
            kv("sessions", n_sessions),
            kv("records", off),
            kv("closed", 2),
            kv("recovered", recovered.len()),
        ],
    );
}

/// Hot-session skew plus pipelined floods against the async reactor:
/// 85% of deferred batches hit one session; flush watermarks must be
/// monotone and land exactly on the submitted count.
fn skew_flood(s: &mut Soak, round: usize, scale: usize, seed: u64) {
    let handle = Server::bind(ServiceConfig::default().with_reactor(2))
        .unwrap()
        .spawn()
        .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    let n_sessions = 4;
    let batch = 64;
    let batches = 60 * scale;
    let stream = perturbed_stream(SMALL, batch * batches, seed);
    let ids: Vec<u64> = (0..n_sessions)
        .map(|i| {
            client
                .create_session(&spec(SMALL, 2, seed + i as u64))
                .unwrap()
        })
        .collect();

    let mut rng = Srng(seed ^ 0xABCD);
    let mut expected = vec![0u64; n_sessions];
    let mut submitted = 0u64;
    // Each flush returns the records accepted since the previous
    // flush; the running sum is the connection's watermark, and it may
    // never overtake what was submitted nor fall short at the end.
    let mut acked = 0u64;
    let mut flushes = 0u64;
    for (b, chunk) in stream.chunks(batch).enumerate() {
        let i = if rng.below(100) < 85 {
            0
        } else {
            1 + rng.below(n_sessions - 1)
        };
        client.submit_nowait(ids[i], chunk, true).unwrap();
        expected[i] += chunk.len() as u64;
        submitted += chunk.len() as u64;
        if b % 16 == 15 {
            acked += client.flush().unwrap();
            s.check("skew_flood", acked <= submitted, || {
                format!("watermark {acked} overtook submissions {submitted}")
            });
            flushes += 1;
        }
    }
    acked += client.flush().unwrap();
    s.check("skew_flood", acked == submitted, || {
        format!("final watermark {acked} != submitted {submitted} (lost or duplicated acks)")
    });
    for i in 0..n_sessions {
        let st = client.stats(ids[i]).unwrap();
        s.check("skew_flood", st.total == expected[i], || {
            format!(
                "session {} total {} != submitted {}",
                ids[i], st.total, expected[i]
            )
        });
    }
    handle.shutdown().unwrap();
    s.record(
        "skew_flood",
        round,
        vec![
            kv("records", submitted),
            kv("flushes", flushes + 1),
            kv(
                "hot_share",
                format!("{:.2}", expected[0] as f64 / submitted as f64),
            ),
        ],
    );
}

/// Reconnect storm: threads cycling connect / submit / abrupt drop (no
/// clean close, no shutdown handshake) against one shared session.
/// Every batch that was acknowledged must be counted exactly once.
fn reconnect_storm(s: &mut Soak, round: usize, scale: usize, seed: u64) {
    let mut config = ServiceConfig::default().with_reactor(2);
    config.max_connections = 512;
    let handle = Server::bind(config).unwrap().spawn().unwrap();
    let mut control = Client::connect(handle.addr()).unwrap();
    let session = control.create_session(&spec(SMALL, 2, seed)).unwrap();

    let threads = 6;
    let iters = 8 * scale;
    let batch = 16;
    let streams: Vec<Vec<Vec<u32>>> = (0..threads)
        .map(|t| perturbed_stream(SMALL, iters * batch, seed + 7 * t as u64))
        .collect();

    let addr = handle.addr();
    let submitted: u64 = std::thread::scope(|scope| {
        let tasks: Vec<_> = streams
            .iter()
            .map(|stream| {
                scope.spawn(move || {
                    let mut sent = 0u64;
                    for (i, chunk) in stream.chunks(batch).enumerate() {
                        let mut c = Client::connect(addr).expect("storm connect");
                        if i % 3 == 2 {
                            // A connection that only pings and hangs up.
                            c.ping().expect("storm ping");
                        } else {
                            c.submit_batch(session, chunk, true).expect("storm submit");
                            sent += chunk.len() as u64;
                        }
                        // Abrupt drop: no close_session, no shutdown op.
                        drop(c);
                    }
                    sent
                })
            })
            .collect();
        tasks.into_iter().map(|t| t.join().unwrap()).sum()
    });

    let st = control.stats(session).unwrap();
    s.check("reconnect_storm", st.total == submitted, || {
        format!(
            "total {} != submitted {} across reconnect cycles",
            st.total, submitted
        )
    });
    let tm = control.server_metrics().unwrap();
    s.check("reconnect_storm", tm.sheds == 0, || {
        format!("{} connections shed below the cap", tm.sheds)
    });
    handle.shutdown().unwrap();
    s.record(
        "reconnect_storm",
        round,
        vec![
            kv("connections", tm.tcp_connections),
            kv("records", submitted),
            kv("accept_errors", tm.accept_errors),
        ],
    );
}

/// Slow-reader backpressure: a raw socket pipelines a burst of
/// reconstruct requests over a 576-cell domain and sleeps instead of
/// reading. The reactor's output buffers back up (partial writes);
/// every response must still arrive, whole and in order.
fn slow_reader(s: &mut Soak, round: usize, scale: usize, seed: u64) {
    let handle = Server::bind(ServiceConfig::default().with_reactor(1))
        .unwrap()
        .spawn()
        .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let session = client.create_session(&spec(WIDE, 2, seed)).unwrap();
    let n = 800;
    for chunk in perturbed_stream(WIDE, n, seed).chunks(100) {
        client.submit_batch(session, chunk, true).unwrap();
    }

    let requests = 120 * scale;
    let mut raw = TcpStream::connect(handle.addr()).expect("raw connect");
    raw.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let line = format!(
        "{{\"op\":\"reconstruct\",\"session\":{session},\"method\":\"closed\",\"clamp\":false}}\n"
    );
    let burst = line.repeat(requests);
    raw.write_all(burst.as_bytes()).expect("raw burst");
    raw.flush().unwrap();
    // Refuse to read while several MB of 2304-cell responses queue up
    // behind us — far past what the kernel's socket buffers absorb, so
    // the reactor must park the connection on partial writes.
    std::thread::sleep(Duration::from_millis(250));

    let mut reader = BufReader::new(raw);
    let mut buf = String::new();
    let mut got = 0usize;
    let want = format!("\"n\":{n}");
    for i in 0..requests {
        buf.clear();
        match reader.read_line(&mut buf) {
            Ok(len) if len > 0 => {
                s.check(
                    "slow_reader",
                    buf.contains("\"ok\":true") && buf.contains(&want),
                    || {
                        format!(
                            "response {i} malformed under backpressure: {}",
                            &buf[..buf.len().min(120)]
                        )
                    },
                );
                got += 1;
            }
            other => {
                s.check("slow_reader", false, || {
                    format!("response {i} missing ({other:?})")
                });
                break;
            }
        }
    }
    s.check("slow_reader", got == requests, || {
        format!("{got}/{requests} responses arrived")
    });
    let tm = client.server_metrics().unwrap();
    handle.shutdown().unwrap();
    s.record(
        "slow_reader",
        round,
        vec![
            kv("responses", got),
            kv("partial_writes", tm.reactor_partial_writes),
        ],
    );
}

/// Persistence under an injected IO-fault storm: snapshots fail with
/// ~58% probability per attempt across the write/rename/sync sites,
/// yet once one persist succeeds a clean restart must recover the
/// session bit-identically.
fn persist_faults(s: &mut Soak, round: usize, scale: usize, seed: u64) {
    let dir = temp_dir("faults");
    let plan = format!(
        "seed={seed},persist_write=io_error:0.35,persist_rename=io_error:0.2,persist_sync=io_error:0.2"
    );
    let config = ServiceConfig {
        persist_dir: Some(dir.clone()),
        fault_plan: FaultPlan::parse(&plan).unwrap(),
        ..ServiceConfig::default()
    };
    let handle = Server::bind(config).unwrap().spawn().unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let session = client.create_session(&spec(SMALL, 2, seed)).unwrap();

    let rounds = 6 * scale;
    let batch = 50;
    let stream = perturbed_stream(SMALL, batch * rounds, seed);
    let mut fault_hits = 0u64;
    for chunk in stream.chunks(batch) {
        client.submit_batch(session, chunk, true).unwrap();
        // Snapshot after every batch; injected faults surface as
        // remote errors and must never corrupt what is already on
        // disk.
        if let Err(e) = client.persist(Some(session)) {
            let msg = e.to_string();
            s.check("persist_faults", msg.contains("injected fault"), || {
                format!("unexpected persist error: {msg}")
            });
            fault_hits += 1;
        }
    }
    // Drive one persist through the storm (p(success) ≈ 0.42 per try).
    let mut retries = 0u64;
    loop {
        match client.persist(Some(session)) {
            Ok(_) => break,
            Err(_) if retries < 400 => retries += 1,
            Err(e) => {
                s.check("persist_faults", false, || {
                    format!("persist never succeeded after {retries} retries: {e}")
                });
                break;
            }
        }
    }
    let live = client
        .reconstruct(session, ReconstructionMethod::ClosedForm, false)
        .unwrap();
    let st = client.stats(session).unwrap();
    s.check("persist_faults", st.total as usize == stream.len(), || {
        format!("total {} != submitted {}", st.total, stream.len())
    });
    handle.shutdown().unwrap();

    // Clean restart, no faults: the recovered session must reconstruct
    // bit-identically to what the live server reported.
    let config2 = ServiceConfig {
        persist_dir: Some(dir.clone()),
        ..ServiceConfig::default()
    };
    let handle2 = Server::bind(config2).unwrap().spawn().unwrap();
    let mut client2 = Client::connect(handle2.addr()).unwrap();
    let rec = client2.reconstruct(session, ReconstructionMethod::ClosedForm, false);
    match rec {
        Ok(rec) => {
            s.check("persist_faults", rec.n == live.n, || {
                format!("recovered n {} != live n {}", rec.n, live.n)
            });
            s.check("persist_faults", rec.estimates == live.estimates, || {
                "recovered estimates are not bit-identical to the live run".to_string()
            });
        }
        Err(e) => s.check("persist_faults", false, || {
            format!("recovered session unreadable: {e}")
        }),
    }
    handle2.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    s.record(
        "persist_faults",
        round,
        vec![
            kv("records", stream.len()),
            kv("fault_hits", fault_hits),
            kv("final_persist_retries", retries),
        ],
    );
}

/// Mining under churn: background `mine_rules` jobs racing session
/// eviction and close. A small LRU cap plus a spill directory keeps
/// sessions cycling to disk while jobs hold live references to them;
/// an injected `job_exec` delay keeps most jobs in flight long enough
/// for `close_session` and `job_cancel` to genuinely race the workers.
/// Invariants: the server never panics and keeps answering, every
/// accepted job reaches exactly one terminal state, a `failed` state
/// only ever names a closed session, `done` jobs serve their results,
/// and the transport job counters balance (submitted = done + failed
/// + cancelled once drained).
fn mining_churn(s: &mut Soak, round: usize, scale: usize, seed: u64) {
    let dir = temp_dir("mine");
    let config = ServiceConfig {
        max_sessions: 3,
        persist_dir: Some(dir.clone()),
        job_threads: 2,
        job_queue_depth: 64,
        fault_plan: FaultPlan::parse(&format!("seed={seed},job_exec=delay(40):0.7")).unwrap(),
        ..ServiceConfig::default()
    };
    let handle = Server::bind(config).unwrap().spawn().unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    let n_sessions = 6usize;
    let batch = 40;
    let stream = perturbed_stream(SMALL, batch * n_sessions, seed);
    let ids: Vec<u64> = (0..n_sessions)
        .map(|i| {
            let id = client
                .create_session(&spec(SMALL, 2, seed + i as u64))
                .unwrap();
            client
                .submit_batch(id, &stream[i * batch..(i + 1) * batch], true)
                .unwrap();
            id
        })
        .collect();

    let mut rng = Srng(seed ^ 0x4D49_4E45);
    let mut jobs: Vec<(u64, u64)> = Vec::new(); // (job id, session id)
    let mut closed: Vec<u64> = Vec::new();
    let mut rejected = 0u64;
    let mut shed = 0u64;
    let mut cancels = 0u64;
    for i in 0..48 * scale {
        // Bias toward the most recently created sessions (likely
        // resident) so the scenario exercises completions as well as
        // rejections; the tail still hits spilled and closed sessions.
        let sid = if rng.below(10) < 6 {
            ids[n_sessions - 1 - rng.below(3)]
        } else {
            ids[rng.below(n_sessions)]
        };
        match client.mine_rules(sid, &MineSpec::default()) {
            Ok(job) => jobs.push((job, sid)),
            Err(ServiceError::Remote { message, .. }) if message.contains("queue is full") => {
                shed += 1;
            }
            Err(ServiceError::Remote { message, .. }) if message.contains("unknown session") => {
                // Rejected in-band at dispatch before any job exists:
                // the session was closed, or the LRU spilled it (live
                // access does not resurrect — only a restart does).
                rejected += 1;
            }
            Err(e) => {
                s.check("mining_churn", false, || format!("submit to {sid}: {e}"));
            }
        }
        if i % 9 == 8 && closed.len() < 3 {
            // Close a random session — possibly one with queued or
            // running jobs, possibly one already spilled by the LRU.
            let sid = ids[rng.below(n_sessions)];
            if !closed.contains(&sid) {
                client.close_session(sid).unwrap();
                closed.push(sid);
            }
        }
        if i % 7 == 3 && !jobs.is_empty() {
            // Cancel a random earlier job, whatever state it is in.
            let (job, _) = jobs[rng.below(jobs.len())];
            client.job_cancel(job).unwrap();
            cancels += 1;
        }
    }

    // Drain: every accepted job must reach exactly one terminal state.
    let mut done = 0u64;
    let mut failed = 0u64;
    let mut cancelled = 0u64;
    for &(job, sid) in &jobs {
        let status = match client.wait_job(job, Duration::from_secs(30)) {
            Ok(v) => v,
            Err(e) => {
                s.check("mining_churn", false, || {
                    format!("job {job} never reached a terminal state: {e}")
                });
                continue;
            }
        };
        match status.get("state").and_then(Value::as_str) {
            Some("done") => {
                done += 1;
                let result = client.job_result(job).unwrap();
                s.check("mining_churn", result.get("rules").is_some(), || {
                    format!("done job {job} served a result without rules")
                });
            }
            Some("cancelled") => cancelled += 1,
            Some("failed") => {
                failed += 1;
                let error = status
                    .get("error")
                    .and_then(Value::as_str)
                    .unwrap_or_default()
                    .to_owned();
                s.check(
                    "mining_churn",
                    closed.contains(&sid) && error.contains("closed"),
                    || format!("job {job} on session {sid} failed for the wrong reason: {error}"),
                );
            }
            other => s.check("mining_churn", false, || {
                format!("job {job} drained into non-terminal state {other:?}")
            }),
        }
    }

    // The server is still healthy and the counters balance.
    client.ping().unwrap();
    let tm = client.server_metrics().unwrap();
    s.check(
        "mining_churn",
        tm.jobs_submitted == jobs.len() as u64 && tm.jobs_shed == shed,
        || {
            format!(
                "counters submitted={} shed={} vs observed {}/{shed}",
                tm.jobs_submitted,
                tm.jobs_shed,
                jobs.len()
            )
        },
    );
    s.check(
        "mining_churn",
        tm.jobs_completed + tm.jobs_failed + tm.jobs_cancelled == jobs.len() as u64,
        || {
            format!(
                "terminal counters {}+{}+{} != accepted {}",
                tm.jobs_completed,
                tm.jobs_failed,
                tm.jobs_cancelled,
                jobs.len()
            )
        },
    );
    handle.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    s.record(
        "mining_churn",
        round,
        vec![
            kv("jobs", jobs.len()),
            kv("done", done),
            kv("failed", failed),
            kv("cancelled", cancelled),
            kv("cancel_requests", cancels),
            kv("closed_sessions", closed.len()),
            kv("rejected", rejected),
            kv("shed", shed),
        ],
    );
}

/// The acceptance scenario: a 3-node cluster (replication 2) with
/// injected peer-link delays. Ingest with monotone watermarks, kill an
/// owner, require a degraded partial read with accurate coverage,
/// restart the owner from its shutdown snapshot and require the
/// cluster to heal to bit-identity with a single-node baseline —
/// while every link's replay history stays bounded.
fn federated_outage(s: &mut Soak, round: usize, scale: usize, seed: u64) {
    let schema = SMALL;
    let stream = perturbed_stream(schema, 2_400 * scale, seed);
    let baseline = single_node_estimates(schema, &stream, 150);

    let base = temp_dir("fed");
    let ports = free_ports(3);
    let peers: Vec<String> = ports.iter().map(|p| format!("127.0.0.1:{p}")).collect();
    let configs: Vec<ServiceConfig> = peers
        .iter()
        .enumerate()
        .map(|(node, addr)| {
            let mut c = ServiceConfig::with_addr(addr.clone()).with_peers(peers.clone(), node, 2);
            c.persist_dir = Some(base.join(format!("node{node}")));
            c.connect_timeout_ms = 2_000;
            c.read_timeout_ms = 5_000;
            // Fast breaker cycles so the heal probe fires within the
            // soak budget, plus small injected link delays so the
            // retry path is continuously exercised.
            c.breaker_threshold = 2;
            c.breaker_cooldown_ms = 100;
            c.fault_plan =
                FaultPlan::parse(&format!("seed={seed},peer_send=delay(1):0.1")).unwrap();
            c
        })
        .collect();
    let mut handles: Vec<Option<ServerHandle>> = configs
        .iter()
        .map(|c| Some(Server::bind(c.clone()).unwrap().spawn().unwrap()))
        .collect();

    // Create through node 0; read through a non-owner coordinator so
    // the outage hits a remote partition, not the local one.
    let mut boot = Client::connect(handles[0].as_ref().unwrap().addr()).unwrap();
    let session = boot.create_session(&spec(schema, 2, 0x5EED)).unwrap();
    let topology = frapp_fed::Topology::new(peers.clone(), 0, 2).unwrap();
    let owners = topology.owners(session);
    let victim = owners[0];
    let coordinator = (0..3).find(|n| !owners.contains(n)).unwrap();
    drop(boot);

    let mut client = Client::connect(handles[coordinator].as_ref().unwrap().addr()).unwrap();
    let mut acked = 0u64;
    let mut submitted = 0u64;
    for (b, chunk) in stream.chunks(150).enumerate() {
        client.submit_nowait(session, chunk, true).unwrap();
        submitted += chunk.len() as u64;
        if b % 4 == 3 {
            acked += client.flush().unwrap();
            s.check("federated_outage", acked <= submitted, || {
                format!("watermark {acked} overtook submissions {submitted}")
            });
        }
    }
    acked += client.flush().unwrap();
    s.check("federated_outage", acked == submitted, || {
        format!("final watermark {acked} != submitted {submitted} (lost or duplicated acks)")
    });

    // Replay history must stay bounded on every node's links.
    let mut max_history = 0u64;
    for h in handles.iter().flatten() {
        let mut c = Client::connect(h.addr()).unwrap();
        for peer in c.federation_metrics().unwrap() {
            max_history = max_history.max(peer.history_batches);
            s.check(
                "federated_outage",
                peer.history_batches < HISTORY_BOUND,
                || {
                    format!(
                        "link to {} holds {} replay batches (bound {})",
                        peer.addr, peer.history_batches, HISTORY_BOUND
                    )
                },
            );
        }
    }

    // Kill one owner (clean shutdown: it snapshots its partition).
    handles[victim].take().unwrap().shutdown().unwrap();
    let strict = client.reconstruct(session, ReconstructionMethod::ClosedForm, false);
    s.check("federated_outage", strict.is_err(), || {
        "strict read succeeded with an owner down".to_string()
    });
    let (rec, coverage) = client
        .reconstruct_partial(session, ReconstructionMethod::ClosedForm, false)
        .unwrap();
    match coverage {
        Some(cov) => {
            s.check(
                "federated_outage",
                cov.owners_total == 2 && cov.owners_reachable == 1,
                || {
                    format!(
                        "coverage {}/{} after one of two owners died",
                        cov.owners_reachable, cov.owners_total
                    )
                },
            );
            s.check(
                "federated_outage",
                cov.missing.iter().any(|(node, _)| *node == victim),
                || {
                    format!(
                        "coverage blames {:?}, victim was node {victim}",
                        cov.missing
                    )
                },
            );
        }
        None => s.check("federated_outage", false, || {
            "degraded read was not labelled degraded".to_string()
        }),
    }
    s.check(
        "federated_outage",
        rec.n > 0 && (rec.n as usize) < stream.len(),
        || {
            format!(
                "degraded read covered {} of {} records",
                rec.n,
                stream.len()
            )
        },
    );

    // Restart the owner from its shutdown snapshot; the coordinator's
    // breaker half-opens after its cooldown and the cluster heals.
    handles[victim] = Some(
        Server::bind(configs[victim].clone())
            .unwrap()
            .spawn()
            .unwrap(),
    );
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut healed = None;
    while Instant::now() < deadline {
        if let Ok(rec) = client.reconstruct(session, ReconstructionMethod::ClosedForm, false) {
            if rec.n as usize == stream.len() {
                healed = Some(rec);
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    match healed {
        Some(rec) => s.check("federated_outage", rec.estimates == baseline, || {
            "healed reconstruction is not bit-identical to the single-node baseline".to_string()
        }),
        None => s.check("federated_outage", false, || {
            "cluster failed to heal within 30s of the owner restarting".to_string()
        }),
    }
    let (_, coverage) = client
        .reconstruct_partial(session, ReconstructionMethod::ClosedForm, false)
        .unwrap();
    s.check("federated_outage", coverage.is_none(), || {
        "healed cluster still reports partial coverage".to_string()
    });

    for h in handles.iter_mut().filter_map(Option::take) {
        let _ = h.shutdown();
    }
    let _ = std::fs::remove_dir_all(&base);
    s.record(
        "federated_outage",
        round,
        vec![
            kv("records", submitted),
            kv("victim", victim),
            kv("coordinator", coordinator),
            kv("max_history_batches", max_history),
        ],
    );
}

// ---------------------------------------------------------------- main

fn write_report(
    soak: &Soak,
    quick: bool,
    seed: u64,
    rounds: usize,
    elapsed: Duration,
    out: Option<&String>,
) {
    use std::fmt::Write as _;
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    let mut json = String::new();
    json.push_str("{\n  \"benchmark\": \"soak\",\n");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"seed\": {seed},");
    let _ = writeln!(json, "  \"rounds\": {rounds},");
    let _ = writeln!(json, "  \"elapsed_secs\": {:.2},", elapsed.as_secs_f64());
    json.push_str("  \"violations\": [\n");
    for (i, v) in soak.violations.iter().enumerate() {
        let _ = writeln!(
            json,
            "    \"{}\"{}",
            esc(v),
            if i + 1 < soak.violations.len() {
                ","
            } else {
                ""
            }
        );
    }
    json.push_str("  ],\n  \"scenarios\": [\n");
    for (i, (name, details)) in soak.scenarios.iter().enumerate() {
        let _ = write!(json, "    {{\"name\": \"{name}\"");
        for (k, v) in details {
            // Values are numbers except the odd pre-formatted string.
            if v.parse::<f64>().is_ok() {
                let _ = write!(json, ", \"{k}\": {v}");
            } else {
                let _ = write!(json, ", \"{k}\": \"{}\"", esc(v));
            }
        }
        let _ = writeln!(
            json,
            "}}{}",
            if i + 1 < soak.scenarios.len() {
                ","
            } else {
                ""
            }
        );
    }
    json.push_str("  ]\n}\n");

    match out {
        Some(path) => {
            let mut file = std::fs::File::create(path).expect("create output file");
            std::io::Write::write_all(&mut file, json.as_bytes()).expect("write output file");
            eprintln!("wrote {path}");
        }
        None => print!("{json}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };
    let seed: u64 = flag("--seed").map_or(42, |v| v.parse().expect("--seed"));
    let duration_secs: u64 =
        flag("--duration-secs").map_or(60, |v| v.parse().expect("--duration-secs"));
    let out = flag("--out").cloned();
    let scale = if quick { 1 } else { 2 };

    let start = Instant::now();
    let mut soak = Soak::default();
    let mut rounds = 0usize;
    loop {
        let rseed = seed.wrapping_add(101 * rounds as u64);
        eprintln!("round {rounds} (seed {rseed})");
        eprintln!("  churn: session churn at the LRU cap");
        churn(&mut soak, rounds, scale, rseed);
        eprintln!("  skew_flood: hot-session pipelined flood");
        skew_flood(&mut soak, rounds, scale, rseed);
        eprintln!("  reconnect_storm: connect/submit/drop cycles");
        reconnect_storm(&mut soak, rounds, scale, rseed);
        eprintln!("  slow_reader: write backpressure");
        slow_reader(&mut soak, rounds, scale, rseed);
        eprintln!("  persist_faults: snapshots under injected IO faults");
        persist_faults(&mut soak, rounds, scale, rseed);
        eprintln!("  mining_churn: jobs racing session eviction and close");
        mining_churn(&mut soak, rounds, scale, rseed);
        eprintln!("  federated_outage: owner outage, degraded read, heal");
        federated_outage(&mut soak, rounds, scale, rseed);
        rounds += 1;
        if quick || start.elapsed() >= Duration::from_secs(duration_secs) {
            break;
        }
    }

    let elapsed = start.elapsed();
    write_report(&soak, quick, seed, rounds, elapsed, out.as_ref());
    if soak.violations.is_empty() {
        eprintln!(
            "soak: PASS — {} scenario run(s), 0 violations in {:.1}s",
            soak.scenarios.len(),
            elapsed.as_secs_f64()
        );
    } else {
        eprintln!(
            "soak: FAIL — {} violation(s) in {:.1}s",
            soak.violations.len(),
            elapsed.as_secs_f64()
        );
        std::process::exit(1);
    }
}
