//! Ablation (exp id A2): empirical check of the paper's Section-3
//! optimality theorem — among symmetric column-stochastic matrices
//! satisfying the γ-amplification constraint, the gamma-diagonal matrix
//! has the minimum condition number `(γ + n − 1)/(γ − 1)`.
//!
//! We draw random feasible symmetric Markov matrices and verify none
//! beats the bound; we also show how much worse "ad-hoc" choices are.

use frapp_bench::write_results;
use frapp_linalg::{condition_number_2, Matrix};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use std::fmt::Write as _;

/// Generates a random symmetric column-stochastic matrix whose entries
/// satisfy the γ-amplification constraint, by blending the
/// gamma-diagonal matrix with random feasible symmetric noise.
fn random_feasible_matrix(n: usize, gamma: f64, rng: &mut StdRng) -> Matrix {
    let x = 1.0 / (gamma + n as f64 - 1.0);
    // Start from the gamma-diagonal matrix and apply random symmetric
    // doubly-stochastic-preserving perturbations: pick (i, j, k, l) and
    // rotate mass around the 2x2 submatrices symmetrically.
    let mut m = Matrix::from_fn(n, n, |i, j| if i == j { gamma * x } else { x });
    for _ in 0..(n * n * 4) {
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        if i == j {
            continue;
        }
        // Move eps from (i,i),(j,j) to (i,j),(j,i): preserves symmetry
        // and all row/column sums.
        let eps_max = (m[(i, i)].min(m[(j, j)]) - x).max(0.0) * 0.5;
        let headroom = (gamma * x - m[(i, j)]).max(0.0); // keep within gamma bound
        let cap = eps_max.min(headroom);
        if cap <= 0.0 {
            continue;
        }
        let eps = rng.gen_range(0.0..=cap);
        m[(i, i)] -= eps;
        m[(j, j)] -= eps;
        m[(i, j)] += eps;
        m[(j, i)] += eps;
    }
    m
}

/// Checks the amplification constraint.
fn feasible(m: &Matrix, gamma: f64) -> bool {
    m.amplification() <= gamma * (1.0 + 1e-9) && m.is_column_stochastic(1e-9)
}

fn main() {
    let gamma = 19.0;
    let n = 24;
    let optimal = (gamma + n as f64 - 1.0) / (gamma - 1.0);
    let mut rng = StdRng::seed_from_u64(99);
    let trials = 200;
    let mut csv = String::from("trial,condition_number,optimal\n");
    let mut worst: f64 = optimal;
    let mut best = f64::INFINITY;
    let mut checked = 0usize;
    for t in 0..trials {
        let m = random_feasible_matrix(n, gamma, &mut rng);
        if !feasible(&m, gamma) {
            continue;
        }
        checked += 1;
        let c = condition_number_2(&m).expect("square matrix");
        best = best.min(c);
        worst = worst.max(c);
        let _ = writeln!(csv, "{t},{c:.6},{optimal:.6}");
        assert!(
            c >= optimal * (1.0 - 1e-6),
            "optimality violated: found condition {c} < bound {optimal}"
        );
    }
    println!("gamma-diagonal optimality check (n = {n}, gamma = {gamma})");
    println!("  theoretical optimum   : {optimal:.4}");
    println!("  {checked} random feasible matrices checked");
    println!("  best random condition : {best:.4}");
    println!("  worst random condition: {worst:.4}");
    println!("  => no feasible matrix beat the gamma-diagonal bound");
    write_results("optimality.csv", &csv).expect("write results/optimality.csv");
    println!("wrote results/optimality.csv");
}
