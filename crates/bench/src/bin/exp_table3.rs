//! Reproduces the paper's Table 3: the number of frequent itemsets per
//! length at `sup_min = 2%` on CENSUS and HEALTH (exp id T3).
//!
//! The paper's counts (on the real datasets):
//!   CENSUS: 19 / 102 / 203 / 165 / 64 / 10        (lengths 1-6)
//!   HEALTH: 23 / 123 / 292 / 361 / 250 / 86 / 12  (lengths 1-7)
//!
//! Our synthetic datasets are calibrated against these rows; the
//! measured values below are recorded in EXPERIMENTS.md.

use frapp_bench::{paper_experiments, write_results};
use std::fmt::Write as _;

fn main() {
    let paper: &[(&str, &[usize])] = &[
        ("CENSUS", &[19, 102, 203, 165, 64, 10]),
        ("HEALTH", &[23, 123, 292, 361, 250, 86, 12]),
    ];
    let mut csv = String::from("dataset,length,measured,paper\n");
    println!("Table 3: frequent itemsets at sup_min = 2%\n");
    for (exp, &(name, paper_row)) in paper_experiments().iter().zip(paper) {
        let profile = exp.truth.length_profile();
        println!("{name} (N = {}):", exp.dataset.len());
        println!(
            "  length    : {}",
            (1..=paper_row.len())
                .map(|k| format!("{k:>5}"))
                .collect::<String>()
        );
        println!(
            "  this repro: {}",
            (0..paper_row.len())
                .map(|i| format!("{:>5}", profile.get(i).copied().unwrap_or(0)))
                .collect::<String>()
        );
        println!(
            "  paper     : {}\n",
            paper_row
                .iter()
                .map(|c| format!("{c:>5}"))
                .collect::<String>()
        );
        for (i, &p) in paper_row.iter().enumerate() {
            let _ = writeln!(
                csv,
                "{name},{},{},{p}",
                i + 1,
                profile.get(i).copied().unwrap_or(0)
            );
        }
    }
    write_results("table3.csv", &csv).expect("write results/table3.csv");
    println!("wrote results/table3.csv");
}
