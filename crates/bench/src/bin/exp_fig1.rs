//! Reproduces the paper's Figure 1: support error ρ, false negatives
//! σ⁻ and false positives σ⁺ versus frequent-itemset length on CENSUS,
//! for RAN-GD (α = γx/2), DET-GD, MASK and C&P (exp id F1).

use frapp_bench::{
    accuracy_csv, format_accuracy_table, write_results, Experiment, Method, DATA_SEED,
    PERTURBATION_SEED,
};

fn main() {
    let exp = Experiment::paper_default("CENSUS", frapp_data::census_like(DATA_SEED));
    let runs: Vec<_> = Method::paper_set()
        .into_iter()
        .map(|m| {
            eprintln!("running {} ...", m.name());
            exp.run(m, PERTURBATION_SEED)
        })
        .collect();
    println!("{}", format_accuracy_table(&exp, &runs));
    write_results("fig1_census.csv", &accuracy_csv(&exp, &runs))
        .expect("write results/fig1_census.csv");
    println!("wrote results/fig1_census.csv");
}
