//! Reproduces the paper's Tables 1 and 2: the attribute categories of
//! the CENSUS and HEALTH schemas (exp id T1/T2 in DESIGN.md).

use frapp_core::schema::Schema;

fn print_schema(title: &str, schema: &Schema) {
    println!("== {title} ==");
    println!("{:<18} Categories", "Attribute");
    for a in schema.attributes() {
        let cats: Vec<String> = (0..a.cardinality())
            .map(|v| a.label(v).map_or_else(|| v.to_string(), str::to_string))
            .collect();
        println!("{:<18} {}", a.name(), cats.join("; "));
    }
    println!(
        "domain |S_U| = {}, boolean width M_b = {}\n",
        schema.domain_size(),
        schema.boolean_width()
    );
}

fn main() {
    print_schema("Table 1: CENSUS", &frapp_data::census::schema());
    print_schema("Table 2: HEALTH", &frapp_data::health::schema());
}
