//! Extension experiment (the paper notes it "experimented with a
//! variety of privacy settings" but shows only `(5%, 50%)`): sweep the
//! posterior ceiling ρ2 — hence γ — and measure DET-GD mining accuracy
//! on CENSUS. Stricter privacy (smaller γ) means a flatter matrix,
//! larger condition number `(γ+n−1)/(γ−1)` and worse accuracy.

use frapp_bench::{write_results, Experiment, Method, DATA_SEED, PERTURBATION_SEED};
use frapp_core::PrivacyRequirement;
use std::fmt::Write as _;

fn main() {
    let dataset = frapp_data::census_like(DATA_SEED);
    let mut csv =
        String::from("rho2,gamma,condition_number,length,true_count,rho,sigma_minus,sigma_plus\n");
    println!("DET-GD accuracy vs privacy level (CENSUS, rho1 = 5%, sup_min = 2%)\n");
    println!(
        "{:>6} {:>8} {:>10} | {:>24} | {:>24}",
        "rho2", "gamma", "cond(A)", "len-2 rho%/sig-%/sig+%", "len-4 rho%/sig-%/sig+%"
    );
    for rho2 in [0.30f64, 0.40, 0.50, 0.60, 0.70] {
        let req = PrivacyRequirement::new(0.05, rho2).expect("valid requirement");
        let gamma = req.gamma();
        let exp = Experiment::new("CENSUS", dataset.clone(), req, 0.02);
        let cond = (gamma + dataset.schema().domain_size() as f64 - 1.0) / (gamma - 1.0);
        let run = exp.run(Method::DetGd, PERTURBATION_SEED);
        let fmt_len = |k: usize| -> String {
            match run.metrics.of_length(k) {
                Some(m) => format!(
                    "{} / {:.0} / {:.0}",
                    m.support_error.map_or("--".into(), |e| format!("{e:.0}")),
                    m.false_negatives,
                    m.false_positives
                ),
                None => "--".into(),
            }
        };
        println!(
            "{:>6.2} {:>8.2} {:>10.1} | {:>24} | {:>24}",
            rho2,
            gamma,
            cond,
            fmt_len(2),
            fmt_len(4)
        );
        for m in &run.metrics.per_length {
            let _ = writeln!(
                csv,
                "{rho2},{gamma:.4},{cond:.2},{},{},{},{:.4},{:.4}",
                m.length,
                m.true_count,
                m.support_error
                    .map_or(String::from("NA"), |e| format!("{e:.4}")),
                m.false_negatives,
                m.false_positives
            );
        }
    }
    write_results("privacy_sweep.csv", &csv).expect("write results/privacy_sweep.csv");
    println!("\nwrote results/privacy_sweep.csv");
}
