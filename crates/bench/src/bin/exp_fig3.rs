//! Reproduces the paper's Figure 3: the randomization sweep over
//! `α/(γx) ∈ [0, 1]` (exp id F3).
//!
//! (a) the determinable posterior-probability range `[ρ2⁻, ρ2⁺]` and
//!     the deterministic posterior `ρ2` for a 5%-prior property;
//! (b) RAN-GD support error ρ for length-4 itemsets on CENSUS vs the
//!     DET-GD reference;
//! (c) the same on HEALTH.

use frapp_bench::{paper_experiments, write_results, Method, PERTURBATION_SEED};
use frapp_core::privacy::RandomizedPosterior;
use std::fmt::Write as _;

const TARGET_LENGTH: usize = 4;
const STEPS: usize = 10;

fn main() {
    let mut csv = String::from(
        "dataset,alpha_fraction,posterior_lo,posterior_mid,posterior_hi,rho_len4_rangd,rho_len4_detgd\n",
    );
    for exp in paper_experiments() {
        let n = exp.dataset.schema().domain_size();
        let gamma = exp.gamma();
        let x = 1.0 / (gamma + n as f64 - 1.0);
        // DET-GD reference (α = 0 by definition).
        let det = exp.run(Method::DetGd, PERTURBATION_SEED);
        let det_rho = det
            .metrics
            .of_length(TARGET_LENGTH)
            .and_then(|m| m.support_error)
            .unwrap_or(f64::NAN);
        println!(
            "{} — Figure 3 sweep (length-{TARGET_LENGTH} support error; DET-GD ref {:.2}%)",
            exp.dataset_name, det_rho
        );
        println!(
            "{:>10} {:>9} {:>9} {:>9} {:>12} {:>12}",
            "alpha/gx", "rho2-", "rho2", "rho2+", "RAN-GD rho%", "DET-GD rho%"
        );
        // The sweep's mining runs are independent: fan them out.
        let rows: Vec<(f64, f64, f64, f64, f64)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..=STEPS)
                .map(|step| {
                    let exp = &exp;
                    scope.spawn(move || {
                        let fraction = step as f64 / STEPS as f64;
                        let rp = RandomizedPosterior {
                            prior: exp.requirement.rho1(),
                            gamma,
                            n,
                            alpha: fraction * gamma * x,
                        };
                        let (lo, hi) = rp.range();
                        let mid = rp.deterministic();
                        let run = exp.run(
                            Method::RanGd {
                                alpha_fraction: fraction,
                            },
                            PERTURBATION_SEED + step as u64,
                        );
                        let rho = run
                            .metrics
                            .of_length(TARGET_LENGTH)
                            .and_then(|m| m.support_error)
                            .unwrap_or(f64::NAN);
                        (lo, mid, hi, rho, fraction)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sweep worker"))
                .collect()
        });
        for (lo, mid, hi, rho, fraction) in rows {
            println!(
                "{:>10.2} {:>9.3} {:>9.3} {:>9.3} {:>12.2} {:>12.2}",
                fraction, lo, mid, hi, rho, det_rho
            );
            let _ = writeln!(
                csv,
                "{},{:.2},{:.6},{:.6},{:.6},{:.4},{:.4}",
                exp.dataset_name, fraction, lo, mid, hi, rho, det_rho
            );
        }
        println!();
    }
    write_results("fig3_alpha_sweep.csv", &csv).expect("write results/fig3_alpha_sweep.csv");
    println!("wrote results/fig3_alpha_sweep.csv");
}
