//! Reproduces the paper's Figure 2: support error ρ, false negatives
//! σ⁻ and false positives σ⁺ versus frequent-itemset length on HEALTH,
//! for RAN-GD (α = γx/2), DET-GD, MASK and C&P (exp id F2).

use frapp_bench::{
    accuracy_csv, format_accuracy_table, write_results, Experiment, Method, DATA_SEED,
    PERTURBATION_SEED,
};

fn main() {
    let exp = Experiment::paper_default("HEALTH", frapp_data::health_like(DATA_SEED));
    let runs: Vec<_> = Method::paper_set()
        .into_iter()
        .map(|m| {
            eprintln!("running {} ...", m.name());
            exp.run(m, PERTURBATION_SEED)
        })
        .collect();
    println!("{}", format_accuracy_table(&exp, &runs));
    write_results("fig2_health.csv", &accuracy_csv(&exp, &runs))
        .expect("write results/fig2_health.csv");
    println!("wrote results/fig2_health.csv");
}
