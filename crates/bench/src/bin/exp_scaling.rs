//! Extension experiment: how DET-GD accuracy scales with database size.
//!
//! Theorem 1 bounds the estimation error by
//! `cond(A) · ‖Y − E(Y)‖/‖E(Y)‖`; the deviation term is sampling noise
//! that shrinks as `1/√N`, so support errors should fall roughly as the
//! square root of the database size. This experiment quantifies that on
//! CENSUS-like data from 5k to 100k records.

use frapp_bench::{write_results, Experiment, Method, PERTURBATION_SEED};
use frapp_core::PrivacyRequirement;
use std::fmt::Write as _;

fn main() {
    let mut csv = String::from("n,length,true_count,rho,sigma_minus,sigma_plus\n");
    println!("DET-GD accuracy vs database size (CENSUS-like, gamma = 19, sup_min = 2%)\n");
    println!(
        "{:>8} | {:>20} | {:>20} | {:>20}",
        "N", "len-1 rho%/sig-%", "len-3 rho%/sig-%", "len-5 rho%/sig-%"
    );
    for n in [5_000usize, 12_500, 25_000, 50_000, 100_000] {
        let dataset = frapp_data::census::census_like_n(n, 17);
        let exp = Experiment::new("CENSUS", dataset, PrivacyRequirement::paper_default(), 0.02);
        let run = exp.run(Method::DetGd, PERTURBATION_SEED);
        let fmt_len = |k: usize| -> String {
            match run.metrics.of_length(k) {
                Some(m) => format!(
                    "{} / {:.0}",
                    m.support_error.map_or("--".into(), |e| format!("{e:.0}")),
                    m.false_negatives
                ),
                None => "--".into(),
            }
        };
        println!(
            "{:>8} | {:>20} | {:>20} | {:>20}",
            n,
            fmt_len(1),
            fmt_len(3),
            fmt_len(5)
        );
        for m in &run.metrics.per_length {
            let _ = writeln!(
                csv,
                "{n},{},{},{},{:.4},{:.4}",
                m.length,
                m.true_count,
                m.support_error
                    .map_or(String::from("NA"), |e| format!("{e:.4}")),
                m.false_negatives,
                m.false_positives
            );
        }
    }
    write_results("scaling.csv", &csv).expect("write results/scaling.csv");
    println!("\nwrote results/scaling.csv");
}
