//! Criterion micro-benchmarks for record perturbation throughput
//! (ablation A1 in DESIGN.md): the naive full-domain CDF walk versus
//! the paper's Section-5 dependent-column algorithm versus this
//! implementation's O(M) mixture sampler, plus the baselines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use frapp_baselines::{CutAndPaste, Mask};
use frapp_core::perturb::{ExplicitMatrix, GammaDiagonal, Perturber, RandomizedGammaDiagonal};
use frapp_core::schema::Schema;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn census_schema() -> Schema {
    frapp_data::census::schema()
}

fn bench_gamma_diagonal_samplers(c: &mut Criterion) {
    let schema = census_schema();
    let gd = GammaDiagonal::new(&schema, 19.0).expect("gamma > 1");
    let record = vec![1u32, 0, 1, 0, 1, 0];
    let mut group = c.benchmark_group("perturb_record");
    group.throughput(Throughput::Elements(1));

    group.bench_function("gd_mixture_o_m", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| black_box(gd.perturb_record(black_box(&record), &mut rng).unwrap()));
    });
    group.bench_function("gd_columnwise_section5", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| {
            black_box(
                gd.perturb_record_columnwise(black_box(&record), &mut rng)
                    .unwrap(),
            )
        });
    });
    // The naive CDF walk needs the dense matrix; use a reduced 3-attr
    // schema (domain 125) to keep the dense matrix small while still
    // showing the O(|S_V|) scaling.
    let small = Schema::new(vec![("a", 5), ("b", 5), ("c", 5)]).expect("static schema");
    let gd_small = GammaDiagonal::new(&small, 19.0).expect("gamma > 1");
    let dense = ExplicitMatrix::new(&small, gd_small.as_uniform_diagonal().to_dense())
        .expect("valid matrix");
    let small_record = vec![1u32, 2, 3];
    group.bench_function("gd_naive_cdf_domain125", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| {
            black_box(
                dense
                    .perturb_record(black_box(&small_record), &mut rng)
                    .unwrap(),
            )
        });
    });
    group.bench_function("gd_mixture_domain125", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| {
            black_box(
                gd_small
                    .perturb_record(black_box(&small_record), &mut rng)
                    .unwrap(),
            )
        });
    });
    group.finish();
}

fn bench_methods(c: &mut Criterion) {
    let schema = census_schema();
    let record = vec![1u32, 0, 1, 0, 1, 0];
    let mut group = c.benchmark_group("perturb_methods");
    group.throughput(Throughput::Elements(1));

    let gd = GammaDiagonal::new(&schema, 19.0).expect("gamma > 1");
    group.bench_function("det_gd", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| black_box(gd.perturb_record(black_box(&record), &mut rng).unwrap()));
    });
    let rgd =
        RandomizedGammaDiagonal::with_alpha_fraction(&schema, 19.0, 0.5).expect("valid alpha");
    group.bench_function("ran_gd", |b| {
        let mut rng = StdRng::seed_from_u64(6);
        b.iter(|| black_box(rgd.perturb_record(black_box(&record), &mut rng).unwrap()));
    });
    let mask = Mask::from_gamma(&schema, 19.0).expect("gamma > 1");
    group.bench_function("mask", |b| {
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| black_box(mask.perturb_record(black_box(&record), &mut rng).unwrap()));
    });
    let cnp = CutAndPaste::paper_params(&schema).expect("static params");
    group.bench_function("cnp", |b| {
        let mut rng = StdRng::seed_from_u64(8);
        b.iter(|| black_box(cnp.perturb_record(black_box(&record), &mut rng).unwrap()));
    });
    group.finish();
}

fn bench_dataset_scaling(c: &mut Criterion) {
    let schema = census_schema();
    let gd = GammaDiagonal::new(&schema, 19.0).expect("gamma > 1");
    let mut group = c.benchmark_group("perturb_dataset");
    for n in [1_000usize, 10_000] {
        let ds = frapp_data::census::census_like_n(n, 1);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &ds, |b, ds| {
            let mut rng = StdRng::seed_from_u64(9);
            b.iter(|| black_box(gd.perturb_dataset(ds.records(), &mut rng).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = quick_config();
    targets =
    bench_gamma_diagonal_samplers,
    bench_methods,
    bench_dataset_scaling
);
criterion_main!(benches);

/// Short measurement windows: the suite covers many cases and the CI
/// budget matters more than sub-percent precision here.
fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}
