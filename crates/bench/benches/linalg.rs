//! Criterion benchmarks for the linear-algebra substrate: LU
//! factorisation, condition-number estimation and the structured
//! gamma-diagonal fast paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use frapp_linalg::structured::UniformDiagonal;
use frapp_linalg::{condition_number_2, lu, Matrix};
use std::hint::black_box;

fn test_matrix(n: usize) -> Matrix {
    // Diagonally dominant, well-conditioned, deterministic.
    Matrix::from_fn(n, n, |i, j| {
        if i == j {
            (n as f64) + 1.0
        } else {
            ((i * 31 + j * 17) % 7) as f64 / 7.0
        }
    })
}

fn bench_lu(c: &mut Criterion) {
    let mut group = c.benchmark_group("lu");
    for n in [16usize, 64, 128] {
        let m = test_matrix(n);
        group.bench_with_input(BenchmarkId::new("factor", n), &m, |b, m| {
            b.iter(|| black_box(lu::LuDecomposition::new(black_box(m)).unwrap()));
        });
        let f = lu::LuDecomposition::new(&m).unwrap();
        let rhs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        group.bench_with_input(BenchmarkId::new("solve", n), &rhs, |b, rhs| {
            b.iter(|| black_box(f.solve(black_box(rhs)).unwrap()));
        });
    }
    group.finish();
}

fn bench_condition_numbers(c: &mut Criterion) {
    let mut group = c.benchmark_group("condition_number");
    group.sample_size(20);
    for n in [16usize, 64] {
        let m = test_matrix(n);
        group.bench_with_input(BenchmarkId::new("numeric_2norm", n), &m, |b, m| {
            b.iter(|| black_box(condition_number_2(black_box(m)).unwrap()));
        });
    }
    group.bench_function("gd_closed_form_n2000", |b| {
        let gd = UniformDiagonal::gamma_diagonal(2000, 19.0);
        b.iter(|| black_box(black_box(&gd).condition_number()));
    });
    group.finish();
}

fn bench_structured_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("structured_vs_dense");
    let n = 512;
    let gd = UniformDiagonal::gamma_diagonal(n, 19.0);
    let y: Vec<f64> = (0..n).map(|i| (i % 13) as f64).collect();
    group.bench_function("uniform_diagonal_solve_512", |b| {
        b.iter(|| black_box(gd.solve(black_box(&y)).unwrap()));
    });
    group.bench_function("uniform_diagonal_mul_512", |b| {
        b.iter(|| black_box(gd.mul_vec(black_box(&y)).unwrap()));
    });
    let dense = gd.to_dense();
    group.bench_function("dense_mul_512", |b| {
        b.iter(|| black_box(dense.mul_vec(black_box(&y)).unwrap()));
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = quick_config();
    targets = bench_lu, bench_condition_numbers, bench_structured_solve);
criterion_main!(benches);

/// Short measurement windows: the suite covers many cases and the CI
/// budget matters more than sub-percent precision here.
fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}
