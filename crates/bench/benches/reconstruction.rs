//! Criterion micro-benchmarks for distribution/support reconstruction:
//! the O(n) gamma-diagonal closed form versus the generic LU solve, and
//! the per-itemset estimators of each method.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use frapp_baselines::{CutAndPaste, Mask};
use frapp_core::perturb::GammaDiagonal;
use frapp_core::reconstruct::{reconstruct_counts, GammaDiagonalReconstructor};
use frapp_core::schema::Schema;
use frapp_linalg::lu::LuDecomposition;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_full_domain_reconstruction(c: &mut Criterion) {
    let mut group = c.benchmark_group("reconstruct_full_domain");
    for n_attrs in [2usize, 3] {
        // Domain sizes 100 and 1000.
        let specs: Vec<(&str, u32)> = (0..n_attrs).map(|_| ("a", 10u32)).collect();
        let schema = Schema::new(specs).expect("static schema");
        let gd = GammaDiagonal::new(&schema, 19.0).expect("gamma > 1");
        let n = schema.domain_size();
        let mut rng = StdRng::seed_from_u64(1);
        let y: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..100.0)).collect();

        group.bench_with_input(BenchmarkId::new("closed_form", n), &y, |b, y| {
            let rec = GammaDiagonalReconstructor::new(&gd);
            b.iter(|| black_box(rec.reconstruct(black_box(y))));
        });
        group.bench_with_input(BenchmarkId::new("lu_solve", n), &y, |b, y| {
            let dense = gd.as_uniform_diagonal().to_dense();
            b.iter(|| black_box(reconstruct_counts(&dense, black_box(y)).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("lu_presolved", n), &y, |b, y| {
            let dense = gd.as_uniform_diagonal().to_dense();
            let lu = LuDecomposition::new(&dense).expect("non-singular");
            b.iter(|| black_box(lu.solve(black_box(y)).unwrap()));
        });
    }
    group.finish();
}

fn bench_itemset_reconstruction(c: &mut Criterion) {
    let schema = frapp_data::census::schema();
    let mut group = c.benchmark_group("reconstruct_itemset");
    // Gamma-diagonal O(1) formula.
    group.bench_function("gd_closed_form", |b| {
        b.iter(|| {
            black_box(frapp_core::reconstruct::reconstruct_itemset_support(
                black_box(0.31),
                2000,
                20,
                19.0,
            ))
        });
    });
    // MASK Kronecker-factored inverse at various lengths.
    let mask = Mask::from_gamma(&schema, 19.0).expect("gamma > 1");
    for k in [2usize, 4, 6] {
        let counts: Vec<f64> = (0..(1usize << k)).map(|i| (i * 7 % 13) as f64).collect();
        group.bench_with_input(
            BenchmarkId::new("mask_patterns", k),
            &counts,
            |b, counts| {
                b.iter(|| black_box(mask.reconstruct_patterns(black_box(counts))));
            },
        );
    }
    // C&P (k+1) x (k+1) matrix build + solve.
    let cnp = CutAndPaste::paper_params(&schema).expect("static params");
    for k in [2usize, 4, 6] {
        group.bench_with_input(BenchmarkId::new("cnp_matrix_build", k), &k, |b, &k| {
            b.iter(|| black_box(cnp.itemset_transition_matrix(black_box(k), 6)));
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = quick_config();
    targets = bench_full_domain_reconstruction, bench_itemset_reconstruction);
criterion_main!(benches);

/// Short measurement windows: the suite covers many cases and the CI
/// budget matters more than sub-percent precision here.
fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}
