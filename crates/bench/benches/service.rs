//! Criterion benchmarks for `frapp-service`: sharded ingest throughput
//! and reconstruction-query cost with and without the cached LU
//! factorization.
//!
//! Interpreting the ingest numbers: each iteration splits one batch
//! across `shards` worker threads, one pinned per shard. On a
//! single-core host the 1/4/8-shard timings come out flat — which is
//! itself the interesting datum (lock striping costs nothing) — while
//! multi-core hosts see per-shard wall-clock scaling because no two
//! threads ever touch the same counter vector.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use frapp_core::perturb::{GammaDiagonal, Perturber};
use frapp_core::Schema;
use frapp_service::session::{CollectionSession, Mechanism, ReconstructionMethod};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

const GAMMA: f64 = 19.0;

fn schema() -> Schema {
    // 500-cell domain: big enough that reconstruction cost is visible,
    // small enough that the dense-LU comparison stays fair to run.
    Schema::new(vec![("a", 10), ("b", 10), ("c", 5)]).expect("static schema")
}

fn session(shards: usize) -> CollectionSession {
    CollectionSession::new(
        0,
        schema(),
        Mechanism::Deterministic { gamma: GAMMA },
        shards,
        7,
        4096,
    )
    .expect("valid session")
}

fn synthetic_records(n: usize) -> Vec<Vec<u32>> {
    let s = schema();
    let gd = GammaDiagonal::new(&s, GAMMA).expect("gamma > 1");
    let mut rng = StdRng::seed_from_u64(3);
    // Perturb a skewed base so the stream looks like real client
    // submissions.
    (0..n)
        .map(|i| {
            let base = vec![(i % 3) as u32, (i % 7) as u32, (i % 5) as u32];
            gd.perturb_record(&base, &mut rng).expect("valid record")
        })
        .collect()
}

/// Records ingested per timed iteration, split across worker threads.
/// Large enough that per-thread work dominates thread-spawn overhead,
/// so the shard-scaling signal is visible.
const INGEST_BATCH: usize = 65_536;

fn bench_sharded_ingest(c: &mut Criterion) {
    let records = synthetic_records(INGEST_BATCH);
    let mut group = c.benchmark_group("service_ingest");
    group.throughput(Throughput::Elements(INGEST_BATCH as u64));
    for shards in [1usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("pre_perturbed", shards),
            &records,
            |b, records| {
                let session = session(shards);
                b.iter(|| {
                    std::thread::scope(|scope| {
                        for (i, chunk) in records.chunks(records.len() / shards).enumerate() {
                            let session = &session;
                            scope.spawn(move || {
                                session
                                    .submit_batch_to_shard(i % shards, chunk, true)
                                    .expect("ingest");
                            });
                        }
                    });
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("server_perturbed", shards),
            &records,
            |b, records| {
                let session = session(shards);
                b.iter(|| {
                    std::thread::scope(|scope| {
                        for (i, chunk) in records.chunks(records.len() / shards).enumerate() {
                            let session = &session;
                            scope.spawn(move || {
                                session
                                    .submit_batch_to_shard(i % shards, chunk, false)
                                    .expect("ingest");
                            });
                        }
                    });
                });
            },
        );
    }
    // The pre-rewrite per-record raw path (perturb_record's fresh Vec +
    // per-attribute draws + re-encode), kept as a baseline so the
    // index-domain fast path's win stays measurable. Single-threaded:
    // the comparison isolates per-record cost, not lock striping. See
    // `bench_ingest` (src/bin) for the records/sec report.
    group.bench_with_input(
        BenchmarkId::new("server_perturbed_legacy", 1),
        &records,
        |b, records| {
            let s = schema();
            let gd = GammaDiagonal::new(&s, GAMMA).expect("gamma > 1");
            b.iter(|| {
                let mut acc = frapp_core::CountAccumulator::new(s.clone());
                let mut rng = StdRng::seed_from_u64(7);
                for record in records {
                    let perturbed = gd.perturb_record(record, &mut rng).expect("valid record");
                    let idx = s.encode(&perturbed).expect("schema-valid output");
                    acc.observe_index(idx);
                }
                black_box(acc)
            });
        },
    );
    group.finish();
}

fn bench_reconstruction_queries(c: &mut Criterion) {
    let s = session(4);
    s.submit_batch(&synthetic_records(20_000), true)
        .expect("ingest");
    let mut group = c.benchmark_group("service_reconstruct");
    group.sample_size(10);
    // O(n) closed form: the production path.
    group.bench_function("closed_form", |b| {
        b.iter(|| {
            black_box(
                s.reconstruct(ReconstructionMethod::ClosedForm, true)
                    .unwrap(),
            )
        });
    });
    // Cached LU: the first call factors (O(n^3)), the steady state
    // measured here is O(n^2) solves against the cached factors.
    let warm = s.reconstruct(ReconstructionMethod::CachedLu, true).unwrap();
    assert!(!warm.lu_cache_hit);
    group.bench_function("cached_lu_repeat", |b| {
        b.iter(|| {
            let rec = s.reconstruct(ReconstructionMethod::CachedLu, true).unwrap();
            debug_assert!(rec.lu_cache_hit);
            black_box(rec)
        });
    });
    // Fresh LU: what every query would cost without the session cache.
    group.bench_function("fresh_lu_per_query", |b| {
        b.iter(|| black_box(s.reconstruct(ReconstructionMethod::FreshLu, true).unwrap()));
    });
    group.finish();
}

/// Snapshot persistence cost: what the periodic persister pays to dump
/// a loaded 500-cell, 4-shard session, and what recovery pays to read
/// it back (parse + count validation + RNG fast-forward).
fn bench_persistence(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("frapp-bench-persist-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let session = session(4);
    // Server-perturbed ingest so recovery also fast-forwards the RNG.
    let base: Vec<Vec<u32>> = (0..20_000)
        .map(|i| vec![(i % 3) as u32, (i % 7) as u32, (i % 5) as u32])
        .collect();
    session.submit_batch(&base, false).expect("ingest");

    let mut group = c.benchmark_group("service_persist");
    group.bench_function("save_snapshot", |b| {
        b.iter(|| black_box(frapp_service::persist::save_session(&dir, &session).unwrap()));
    });
    let path = frapp_service::persist::save_session(&dir, &session).expect("snapshot");
    group.bench_function("load_snapshot", |b| {
        b.iter(|| black_box(frapp_service::persist::load_session(&path, 4096, 1 << 24).unwrap()));
    });
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(
    name = benches;
    config = quick_config();
    targets = bench_sharded_ingest, bench_reconstruction_queries, bench_persistence);
criterion_main!(benches);

/// Short measurement windows, matching the other benches in this crate.
fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}
