//! Criterion benchmarks for the mining pipeline: exact Apriori versus
//! the privacy-preserving variants on scaled-down paper datasets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use frapp_baselines::Mask;
use frapp_core::perturb::{GammaDiagonal, Perturber};
use frapp_core::Dataset;
use frapp_mining::apriori::{apriori, AprioriParams};
use frapp_mining::estimators::{ExactSupport, GammaDiagonalSupport, MaskSupport};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn params() -> AprioriParams {
    AprioriParams {
        min_support: 0.02,
        max_length: 0,
        max_candidates: 100_000,
    }
}

fn bench_exact_apriori(c: &mut Criterion) {
    let mut group = c.benchmark_group("apriori_exact");
    group.sample_size(10);
    for n in [2_000usize, 10_000] {
        let ds = frapp_data::census::census_like_n(n, 1);
        let est = ExactSupport::from_dataset(&ds);
        group.bench_with_input(BenchmarkId::from_parameter(n), &est, |b, est| {
            b.iter(|| black_box(apriori(est, &params())));
        });
    }
    group.finish();
}

fn bench_pp_apriori(c: &mut Criterion) {
    let mut group = c.benchmark_group("apriori_pp");
    group.sample_size(10);
    let n = 5_000;
    let ds = frapp_data::census::census_like_n(n, 1);
    let schema = ds.schema().clone();

    let gd = GammaDiagonal::new(&schema, 19.0).expect("gamma > 1");
    let mut rng = StdRng::seed_from_u64(2);
    let perturbed = Dataset::from_trusted(
        schema.clone(),
        gd.perturb_dataset(ds.records(), &mut rng).unwrap(),
    );
    let gd_est = GammaDiagonalSupport::new(&perturbed, &gd);
    group.bench_function("det_gd", |b| {
        b.iter(|| black_box(apriori(&gd_est, &params())));
    });

    let mask = Mask::from_gamma(&schema, 19.0).expect("gamma > 1");
    let rows = mask.perturb_dataset(ds.records(), &mut rng).unwrap();
    let mask_est = MaskSupport::new(&mask, &rows);
    group.bench_function("mask", |b| {
        b.iter(|| black_box(apriori(&mask_est, &params())));
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = quick_config();
    targets = bench_exact_apriori, bench_pp_apriori);
criterion_main!(benches);

/// Short measurement windows: the suite covers many cases and the CI
/// budget matters more than sub-percent precision here.
fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}
