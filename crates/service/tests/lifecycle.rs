//! End-to-end session lifecycle: LRU eviction under a `max_sessions`
//! cap, snapshot persistence across a full server restart (identical
//! reconstructions before and after), and deterministic continuation of
//! server-side perturbation after recovery.
//!
//! Temp directories honour `FRAPP_PERSIST_TEST_DIR` (set by CI to a
//! `mktemp -d` sandbox) and fall back to the system temp dir.

use frapp_service::client::{Client, SessionSpec};
use frapp_service::session::{Mechanism, ReconstructionMethod};
use frapp_service::{Server, ServiceConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const GAMMA: f64 = 19.0;

fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let base = std::env::var_os("FRAPP_PERSIST_TEST_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(std::env::temp_dir);
    let dir = base.join(format!(
        "frapp-lifecycle-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn spec(shards: usize, seed: u64) -> SessionSpec {
    SessionSpec {
        schema: vec![("a".into(), 4), ("b".into(), 3)],
        mechanism: Mechanism::Deterministic { gamma: GAMMA },
        shards: Some(shards),
        seed: Some(seed),
    }
}

fn records(n: usize, offset: u32) -> Vec<Vec<u32>> {
    (0..n)
        .map(|i| vec![(i as u32 + offset) % 4, (i as u32) % 3])
        .collect()
}

#[test]
fn registry_at_capacity_evicts_in_lru_order() {
    let config = ServiceConfig {
        max_sessions: 3,
        ..ServiceConfig::default()
    };
    let handle = Server::bind(config).unwrap().spawn().unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    let s1 = client.create_session(&spec(1, 1)).unwrap();
    let s2 = client.create_session(&spec(1, 2)).unwrap();
    let s3 = client.create_session(&spec(1, 3)).unwrap();
    assert_eq!(client.list_sessions().unwrap(), vec![s1, s2, s3]);

    // Touch s1 so s2 becomes least-recently-used, then overflow the cap.
    client.stats(s1).unwrap();
    let s4 = client.create_session(&spec(1, 4)).unwrap();
    assert_eq!(client.list_sessions().unwrap(), vec![s1, s3, s4]);
    let err = client.stats(s2).unwrap_err();
    assert!(
        err.to_string().contains("unknown session"),
        "evicted session must be gone: {err}"
    );

    // With no further touches, creation order is eviction order: the
    // next create evicts s3.
    let s5 = client.create_session(&spec(1, 5)).unwrap();
    assert_eq!(client.list_sessions().unwrap(), vec![s1, s4, s5]);

    handle.shutdown().unwrap();
}

#[test]
fn restarted_server_serves_identical_reconstructions() {
    let dir = temp_dir("restart");
    let config = ServiceConfig::default().with_persist_dir(&dir);

    // First server lifetime: ingest both pre-perturbed and raw records
    // across two shards, snapshot via the persist op, reconstruct.
    let handle = Server::bind(config.clone()).unwrap().spawn().unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let session = client.create_session(&spec(2, 0xBEEF)).unwrap();
    client
        .submit_batch_to_shard(session, 0, &records(2_000, 0), false)
        .unwrap();
    client
        .submit_batch_to_shard(session, 1, &records(1_000, 1), true)
        .unwrap();
    assert_eq!(client.persist(Some(session)).unwrap(), vec![session]);
    let before = client
        .reconstruct(session, ReconstructionMethod::ClosedForm, false)
        .unwrap();
    assert_eq!(before.n, 3_000);
    handle.shutdown().unwrap();

    // Second lifetime over the same directory: the session is back
    // under its id with identical state — restored from native RNG
    // state words (snapshot v2), so recovery replays zero draws.
    let handle = Server::bind(config).unwrap().spawn().unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    assert_eq!(client.list_sessions().unwrap(), vec![session]);
    assert_eq!(
        handle
            .registry()
            .get(session)
            .unwrap()
            .recovery_fast_forward_draws(),
        0,
        "v2 recovery must not fast-forward the RNG"
    );
    let after = client
        .reconstruct(session, ReconstructionMethod::ClosedForm, false)
        .unwrap();
    assert_eq!(after.n, before.n);
    assert_eq!(
        after.estimates, before.estimates,
        "recovered reconstruction must be bit-identical"
    );
    let stats = client.stats(session).unwrap();
    assert_eq!(stats.per_shard, vec![2_000, 1_000]);
    handle.shutdown().unwrap();

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn raw_ingest_after_restart_matches_an_uninterrupted_server() {
    // The deterministic-replay acceptance: a server that restarts
    // mid-stream must perturb the remaining raw records with exactly
    // the RNG draws the uninterrupted server would have used.
    let first_half = records(1_500, 0);
    let second_half = records(1_500, 2);

    // Control: one uninterrupted server ingesting both halves.
    let control_handle = Server::bind(ServiceConfig::default())
        .unwrap()
        .spawn()
        .unwrap();
    let mut control = Client::connect(control_handle.addr()).unwrap();
    let control_session = control.create_session(&spec(1, 0xD1CE)).unwrap();
    control
        .submit_batch_to_shard(control_session, 0, &first_half, false)
        .unwrap();
    control
        .submit_batch_to_shard(control_session, 0, &second_half, false)
        .unwrap();
    let expected = control
        .reconstruct(control_session, ReconstructionMethod::ClosedForm, false)
        .unwrap();
    control_handle.shutdown().unwrap();

    // Interrupted: first half, clean shutdown (which snapshots), then a
    // fresh server over the same directory ingests the second half.
    let dir = temp_dir("replay");
    let config = ServiceConfig::default().with_persist_dir(&dir);
    let handle = Server::bind(config.clone()).unwrap().spawn().unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let session = client.create_session(&spec(1, 0xD1CE)).unwrap();
    client
        .submit_batch_to_shard(session, 0, &first_half, false)
        .unwrap();
    handle.shutdown().unwrap();

    let handle = Server::bind(config).unwrap().spawn().unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    client
        .submit_batch_to_shard(session, 0, &second_half, false)
        .unwrap();
    let actual = client
        .reconstruct(session, ReconstructionMethod::ClosedForm, false)
        .unwrap();
    assert_eq!(actual.n, expected.n);
    assert_eq!(
        actual.estimates, expected.estimates,
        "replayed perturbation must match the uninterrupted stream"
    );
    handle.shutdown().unwrap();

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cap_limited_recovery_keeps_the_newest_snapshots() {
    let dir = temp_dir("cap-recovery");
    let config = ServiceConfig::default().with_persist_dir(&dir);

    // Three sessions persisted with strictly increasing snapshot times.
    let handle = Server::bind(config.clone()).unwrap().spawn().unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let mut ids = Vec::new();
    for seed in 1..=3u64 {
        let id = client.create_session(&spec(1, seed)).unwrap();
        client.submit_batch(id, &records(10, 0), true).unwrap();
        client.persist(Some(id)).unwrap();
        ids.push(id);
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    // Leave only the on-demand snapshots: a blunt shutdown (abandoning
    // the handle would leak the server thread), so instead re-persist
    // the oldest session *first* and shut down — shutdown rewrites all
    // three, so recreate distinct mtimes by rewriting 2 and 3 last.
    handle.shutdown().unwrap();
    // Shutdown snapshotted all three at ~the same instant; force a
    // clear ordering: make session 1's file the oldest again.
    let old = std::time::SystemTime::now() - std::time::Duration::from_secs(60);
    let f = std::fs::File::options()
        .append(true)
        .open(frapp_service::persist::session_path(&dir, ids[0]))
        .unwrap();
    f.set_times(std::fs::FileTimes::new().set_modified(old))
        .unwrap();
    drop(f);

    // Recover under a 2-session cap: the oldest snapshot (session 1)
    // must be the one skipped.
    let config = ServiceConfig {
        max_sessions: 2,
        ..ServiceConfig::default().with_persist_dir(&dir)
    };
    let handle = Server::bind(config).unwrap().spawn().unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    assert_eq!(client.list_sessions().unwrap(), vec![ids[1], ids[2]]);
    handle.shutdown().unwrap();

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn partial_batch_error_carries_the_retry_offset_over_the_wire() {
    let handle = Server::bind(ServiceConfig::default())
        .unwrap()
        .spawn()
        .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let session = client.create_session(&spec(1, 7)).unwrap();

    // Record 2 is out of the schema's domain.
    let batch = vec![vec![0, 0], vec![1, 1], vec![9, 9], vec![2, 2]];
    let err = client.submit_batch(session, &batch, true).unwrap_err();
    match err {
        frapp_service::ServiceError::Remote { accepted, .. } => assert_eq!(accepted, Some(2)),
        other => panic!("expected a remote error with an accepted count, got {other:?}"),
    }
    // Following the contract — resubmit only records[accepted..] with
    // the bad record dropped — lands every valid record exactly once.
    client
        .submit_batch(session, &[batch[3].clone()], true)
        .unwrap();
    assert_eq!(client.stats(session).unwrap().total, 3);
    handle.shutdown().unwrap();
}

#[test]
fn metrics_are_served_over_the_wire() {
    let handle = Server::bind(ServiceConfig::default())
        .unwrap()
        .spawn()
        .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let session = client.create_session(&spec(2, 7)).unwrap();
    client
        .submit_batch(session, &records(500, 0), true)
        .unwrap();
    client
        .reconstruct(session, ReconstructionMethod::ClosedForm, true)
        .unwrap();

    let (report, total) = client.metrics(session).unwrap();
    assert_eq!(total, 500);
    assert_eq!(report.records_ingested, 500);
    assert_eq!(report.batches, 1);
    assert_eq!(report.reconstructions, 1);
    assert_eq!(report.query_latency.count, 1);
    assert_eq!(
        report
            .query_latency
            .buckets
            .iter()
            .map(|&(_, c)| c)
            .sum::<u64>(),
        1
    );
    assert!(report.ingest_rate > 0.0);

    let detail = client.list_sessions_detail().unwrap();
    assert_eq!(detail.len(), 1);
    assert_eq!(detail[0].total, 500);
    assert_eq!(detail[0].shards, 2);
    handle.shutdown().unwrap();
}
