//! Concurrent-ingest determinism: because every shard owns a seeded RNG
//! derived from `(session seed, shard index)`, ingesting the same
//! per-shard record partitions concurrently must produce exactly the
//! counts of a single-threaded run — independent of thread scheduling.

use frapp_core::Schema;
use frapp_service::session::{CollectionSession, Mechanism, ReconstructionMethod};

const SHARDS: usize = 4;
const RECORDS_PER_SHARD: usize = 12_500;

fn schema() -> Schema {
    Schema::new(vec![("a", 4), ("b", 3), ("c", 2)]).unwrap()
}

fn session() -> CollectionSession {
    CollectionSession::new(
        1,
        schema(),
        Mechanism::Deterministic { gamma: 19.0 },
        SHARDS,
        0xDEED,
        4096,
    )
    .unwrap()
}

/// The partition of client records assigned to one shard.
fn partition(shard: usize) -> Vec<Vec<u32>> {
    (0..RECORDS_PER_SHARD)
        .map(|i| {
            let k = shard * RECORDS_PER_SHARD + i;
            vec![(k % 4) as u32, ((k / 4) % 3) as u32, ((k / 12) % 2) as u32]
        })
        .collect()
}

#[test]
fn concurrent_ingest_matches_single_threaded_counts() {
    // Concurrent: four threads, one shard each, batched submissions.
    let concurrent = session();
    std::thread::scope(|scope| {
        for shard in 0..SHARDS {
            let session = &concurrent;
            scope.spawn(move || {
                for batch in partition(shard).chunks(997) {
                    session.submit_batch_to_shard(shard, batch, false).unwrap();
                }
            });
        }
    });

    // Sequential: same shard assignment, single thread, different
    // batching (batch boundaries must not matter either).
    let sequential = session();
    for shard in 0..SHARDS {
        for batch in partition(shard).chunks(64) {
            sequential
                .submit_batch_to_shard(shard, batch, false)
                .unwrap();
        }
    }

    let a = concurrent.snapshot();
    let b = sequential.snapshot();
    assert_eq!(a.n() as usize, SHARDS * RECORDS_PER_SHARD);
    assert_eq!(a.counts(), b.counts(), "scheduling changed the counts");

    // And the reconstructions built on those counts agree bit-for-bit.
    let ra = concurrent
        .reconstruct(ReconstructionMethod::ClosedForm, false)
        .unwrap();
    let rb = sequential
        .reconstruct(ReconstructionMethod::ClosedForm, false)
        .unwrap();
    assert_eq!(ra.estimates, rb.estimates);
}

#[test]
fn pre_perturbed_ingest_is_order_independent_across_shards() {
    // Pre-perturbed records involve no RNG at all, so even *round-robin*
    // submission across racing threads must yield identical merged
    // counts regardless of which shard each batch landed on.
    let records: Vec<Vec<u32>> = (0..20_000)
        .map(|k| vec![(k % 4) as u32, (k % 3) as u32, (k % 2) as u32])
        .collect();

    let racing = session();
    std::thread::scope(|scope| {
        for chunk in records.chunks(2_500) {
            let session = &racing;
            scope.spawn(move || {
                for batch in chunk.chunks(333) {
                    session.submit_batch(batch, true).unwrap();
                }
            });
        }
    });

    let reference = session();
    reference.submit_batch_to_shard(0, &records, true).unwrap();

    assert_eq!(racing.snapshot().counts(), reference.snapshot().counts());
}
