//! The async (epoll/kqueue) front-end against the threaded one:
//! raw-byte wire parity over both protocols, chunked request bodies on
//! both paths, reactor metrics, and a concurrent-fan-in soak with
//! pipelined clients.

#![cfg(unix)]

use frapp_service::client::{Client, HttpClient, SessionSpec};
use frapp_service::session::{Mechanism, ReconstructionMethod};
use frapp_service::{Server, ServerHandle, ServiceConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

const GAMMA: f64 = 19.0;

fn spawn_threaded() -> ServerHandle {
    Server::bind(ServiceConfig::default().with_http_addr("127.0.0.1:0"))
        .unwrap()
        .spawn()
        .unwrap()
}

fn spawn_async(reactor_threads: usize) -> ServerHandle {
    Server::bind(
        ServiceConfig::default()
            .with_http_addr("127.0.0.1:0")
            .with_reactor(reactor_threads),
    )
    .unwrap()
    .spawn()
    .unwrap()
}

fn small_spec(seed: u64) -> SessionSpec {
    SessionSpec {
        schema: vec![("a".into(), 4), ("b".into(), 3)],
        mechanism: Mechanism::Deterministic { gamma: GAMMA },
        shards: Some(1),
        seed: Some(seed),
    }
}

/// Connects with a short retry loop: under the soak test's fan-in the
/// listener backlog can momentarily overflow.
fn connect_patiently(addr: SocketAddr) -> TcpStream {
    for attempt in 0..50 {
        match TcpStream::connect(addr) {
            Ok(s) => return s,
            Err(_) if attempt < 49 => std::thread::sleep(Duration::from_millis(20)),
            Err(e) => panic!("connect failed: {e}"),
        }
    }
    unreachable!()
}

/// Sends raw request lines over one connection and returns each raw
/// response line (deferred submits produce none, by design).
fn raw_line_exchange(addr: SocketAddr, lines: &[&str], expected_responses: usize) -> Vec<String> {
    let stream = connect_patiently(addr);
    stream.set_nodelay(true).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    for line in lines {
        writer.write_all(line.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
    }
    writer.flush().unwrap();
    let mut responses = Vec::new();
    for _ in 0..expected_responses {
        let mut line = String::new();
        assert!(reader.read_line(&mut line).unwrap() > 0, "server hung up");
        responses.push(line);
    }
    responses
}

/// Sends one raw HTTP/1.1 request and returns the full raw response
/// (head + body) as bytes.
fn raw_http_exchange(addr: SocketAddr, request: &[u8]) -> Vec<u8> {
    let mut stream = connect_patiently(addr);
    stream.set_nodelay(true).unwrap();
    stream.write_all(request).unwrap();
    stream.flush().unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = BufReader::new(stream);
    // Head.
    let mut response = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        assert!(reader.read_line(&mut line).unwrap() > 0, "server hung up");
        if let Some(v) = line
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
        {
            content_length = v.parse().unwrap();
        }
        response.extend_from_slice(line.as_bytes());
        if line == "\r\n" {
            break;
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).unwrap();
    response.extend_from_slice(&body);
    response
}

#[test]
fn async_line_protocol_is_byte_identical_to_threaded() {
    // The same raw request script against two fresh servers — one
    // threaded, one reactor — must produce byte-identical response
    // lines: same ids (fresh registries), same seeds, same JSON
    // encoding, same error strings, same deferred-watermark splices.
    let threaded = spawn_threaded();
    let reactor = spawn_async(1);

    let script: Vec<String> = vec![
        r#"{"op":"ping"}"#.into(),
        r#"{"op":"create_session","schema":[["a",4],["b",3]],"gamma":19.0,"shards":1,"seed":7}"#
            .into(),
        r#"{"op":"submit","session":1,"records":[[0,0],[1,2]],"pre_perturbed":false}"#.into(),
        // Deferred submits: quiet, then the stats response carries the
        // watermark splice.
        r#"{"op":"submit","session":1,"records":[[3,1]],"pre_perturbed":true,"ack":"deferred"}"#
            .into(),
        r#"{"op":"stats","session":1}"#.into(),
        // Failure paths must agree byte-for-byte too.
        r#"{"op":"submit","session":1,"records":[[9,9]],"pre_perturbed":true}"#.into(),
        r#"{"op":"stats","session":404}"#.into(),
        "not json at all".into(),
        r#"{"op":"reconstruct","session":1,"method":"closed","clamp":true}"#.into(),
        r#"{"op":"flush"}"#.into(),
        r#"{"op":"list_sessions"}"#.into(),
        r#"{"op":"close_session","session":1}"#.into(),
    ];
    let refs: Vec<&str> = script.iter().map(String::as_str).collect();
    // One line produces no response (the deferred submit).
    let expected = refs.len() - 1;
    let via_threaded = raw_line_exchange(threaded.addr(), &refs, expected);
    let via_reactor = raw_line_exchange(reactor.addr(), &refs, expected);
    assert_eq!(via_threaded.len(), via_reactor.len());
    for (i, (a, b)) in via_threaded.iter().zip(&via_reactor).enumerate() {
        assert_eq!(a, b, "response {i} diverged");
    }

    threaded.shutdown().unwrap();
    reactor.shutdown().unwrap();
}

#[test]
fn async_http_is_byte_identical_to_threaded() {
    let threaded = spawn_threaded();
    let reactor = spawn_async(1);

    let requests: Vec<Vec<u8>> = vec![
        b"GET /ping HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n".to_vec(),
        {
            let body = br#"{"schema":[["a",4],["b",3]],"gamma":19.0,"shards":1,"seed":7}"#;
            let mut r = format!(
                "POST /sessions HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
                body.len()
            )
            .into_bytes();
            r.extend_from_slice(body);
            r
        },
        {
            let body = br#"{"records":[[0,0],[1,2]],"pre_perturbed":false}"#;
            let mut r = format!(
                "POST /sessions/1/records HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
                body.len()
            )
            .into_bytes();
            r.extend_from_slice(body);
            r
        },
        b"GET /sessions/1/reconstruct?method=closed&clamp=true HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
            .to_vec(),
        b"GET /sessions/404 HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n".to_vec(),
        b"GET /not/a/route HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n".to_vec(),
        b"GET /sessions HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n".to_vec(),
        b"DELETE /sessions/1 HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n".to_vec(),
    ];
    for (i, request) in requests.iter().enumerate() {
        let a = raw_http_exchange(threaded.http_addr().unwrap(), request);
        let b = raw_http_exchange(reactor.http_addr().unwrap(), request);
        assert_eq!(
            String::from_utf8_lossy(&a),
            String::from_utf8_lossy(&b),
            "response {i} diverged"
        );
    }

    threaded.shutdown().unwrap();
    reactor.shutdown().unwrap();
}

#[test]
fn async_serves_the_bundled_clients_and_reports_reactor_metrics() {
    // The stock Client/HttpClient work unchanged against --async, and
    // the reactor counters become visible through `{"op":"metrics"}`.
    let handle = spawn_async(2);
    let mut tcp = Client::connect(handle.addr()).unwrap();
    let mut http = HttpClient::connect(handle.http_addr().unwrap()).unwrap();
    tcp.ping().unwrap();
    http.ping().unwrap();

    let session = tcp.create_session(&small_spec(3)).unwrap();
    tcp.submit_batch(session, &[vec![0, 0], vec![1, 1]], true)
        .unwrap();
    http.submit_batch(session, &[vec![2, 2]], true).unwrap();
    assert_eq!(http.stats(session).unwrap().total, 3);
    let rec = tcp
        .reconstruct(session, ReconstructionMethod::ClosedForm, true)
        .unwrap();
    assert_eq!(rec.estimates.len(), 12);

    let report = tcp.server_metrics().unwrap();
    assert!(report.tcp_connections >= 1, "{report:?}");
    assert!(report.http_connections >= 1, "{report:?}");
    // Two reactors, each registering at least both listeners, plus two
    // live connections somewhere among them.
    assert!(report.reactor_registered_fds >= 4, "{report:?}");
    assert!(report.reactor_wakeups > 0, "{report:?}");

    handle.shutdown().unwrap();
}

/// One chunked submit via a raw socket; returns the response status
/// line plus parsed body.
fn chunked_submit(addr: SocketAddr, session: u64, chunks: &[&[u8]]) -> (String, String) {
    let mut stream = connect_patiently(addr);
    stream.set_nodelay(true).unwrap();
    let head = format!(
        "POST /sessions/{session}/records HTTP/1.1\r\nHost: x\r\n\
         Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
    );
    stream.write_all(head.as_bytes()).unwrap();
    for chunk in chunks {
        stream
            .write_all(format!("{:x}\r\n", chunk.len()).as_bytes())
            .unwrap();
        stream.write_all(chunk).unwrap();
        stream.write_all(b"\r\n").unwrap();
        // Flush each chunk separately so the server's incremental
        // decoder actually sees a split stream.
        stream.flush().unwrap();
    }
    stream.write_all(b"0\r\n\r\n").unwrap();
    stream.flush().unwrap();
    raw_response_of(stream)
}

fn raw_response_of(stream: TcpStream) -> (String, String) {
    let mut reader = BufReader::new(stream);
    let mut status = String::new();
    reader.read_line(&mut status).unwrap();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        assert!(reader.read_line(&mut line).unwrap() > 0);
        if let Some(v) = line
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
        {
            content_length = v.parse().unwrap();
        }
        if line == "\r\n" {
            break;
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).unwrap();
    (status.trim().to_owned(), String::from_utf8(body).unwrap())
}

#[test]
fn chunked_request_bodies_work_on_both_http_paths() {
    let threaded = spawn_threaded();
    let reactor = spawn_async(1);
    for handle in [&threaded, &reactor] {
        let addr = handle.http_addr().unwrap();
        let mut http = HttpClient::connect(addr).unwrap();
        let session = http.create_session(&small_spec(5)).unwrap();

        // A body split awkwardly across three chunks (mid-key, mid-
        // number) must parse exactly like a Content-Length body.
        let (status, body) = chunked_submit(
            addr,
            session,
            &[
                br#"{"records":[[0,"#,
                br#"0],[1,2],[3"#,
                br#",1]],"pre_perturbed":true}"#,
            ],
        );
        assert_eq!(status, "HTTP/1.1 200 OK", "{body}");
        assert!(body.contains(r#""accepted":3"#), "{body}");
        assert_eq!(http.stats(session).unwrap().total, 3);

        // Malformed chunk framing: 400 with an in-band error.
        let mut stream = connect_patiently(addr);
        stream
            .write_all(
                format!(
                    "POST /sessions/{session}/records HTTP/1.1\r\nHost: x\r\n\
                     Transfer-Encoding: chunked\r\n\r\nZZZ\r\n"
                )
                .as_bytes(),
            )
            .unwrap();
        let (status, body) = raw_response_of(stream);
        assert_eq!(status, "HTTP/1.1 400 Bad Request", "{body}");
        assert!(body.contains("chunk"), "{body}");
    }
    threaded.shutdown().unwrap();
    reactor.shutdown().unwrap();
}

#[test]
fn soak_256_pipelined_clients_fan_in_without_sheds() {
    // ≥256 concurrent pipelined line-protocol clients against one
    // --async server (2 reactor threads): every connection below the
    // cap must be admitted (zero sheds), every per-connection flush
    // watermark must be exactly the records that client queued
    // (contiguous, no loss, no double-count), and the reconstruction
    // must be bit-identical to a threaded server fed the same records.
    const CLIENTS: usize = 256;
    const BATCHES: usize = 20;
    const BATCH: usize = 8;

    let config = ServiceConfig {
        max_connections: 1024,
        ..ServiceConfig::default()
    }
    .with_reactor(2);
    let handle = Server::bind(config).unwrap().spawn().unwrap();
    let addr = handle.addr();

    let mut setup = Client::connect(addr).unwrap();
    let spec = SessionSpec {
        schema: vec![("a".into(), 4), ("b".into(), 3)],
        mechanism: Mechanism::Deterministic { gamma: GAMMA },
        shards: Some(4),
        seed: Some(11),
    };
    let session = setup.create_session(&spec).unwrap();

    // Pre-perturbed records make the shared session's counts (and thus
    // the reconstruction) independent of ingest interleaving.
    let record_of = |client: usize, i: usize| vec![((client + i) % 4) as u32, (i % 3) as u32];

    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let handles: Vec<_> = (0..BATCHES)
                .map(|b| {
                    (0..BATCH)
                        .map(|r| record_of(c, b * BATCH + r))
                        .collect::<Vec<_>>()
                })
                .collect();
            scope.spawn(move || {
                let mut client = loop {
                    // The listener backlog can overflow under 256
                    // simultaneous connects; retry until admitted.
                    match Client::connect(addr) {
                        Ok(c) => break c,
                        Err(_) => std::thread::sleep(Duration::from_millis(10)),
                    }
                };
                for batch in &handles {
                    client.submit_nowait(session, batch, true).unwrap();
                }
                let accepted = client.flush().unwrap();
                assert_eq!(
                    accepted,
                    (BATCHES * BATCH) as u64,
                    "client {c}: watermark must cover exactly its own stream"
                );
            });
        }
    });

    let total = (CLIENTS * BATCHES * BATCH) as u64;
    assert_eq!(setup.stats(session).unwrap().total, total);
    let report = setup.server_metrics().unwrap();
    assert_eq!(report.sheds, 0, "no connection below the cap may be shed");
    assert!(
        report.tcp_connections >= CLIENTS as u64,
        "all {CLIENTS} clients must have been admitted: {report:?}"
    );
    assert_eq!(report.deferred_batches, (CLIENTS * BATCHES) as u64);
    let via_async = setup
        .reconstruct(session, ReconstructionMethod::ClosedForm, false)
        .unwrap();

    // Reference: a threaded server fed the identical records.
    let threaded = spawn_threaded();
    let mut reference = Client::connect(threaded.addr()).unwrap();
    let ref_session = reference.create_session(&spec).unwrap();
    for c in 0..CLIENTS {
        let records: Vec<_> = (0..BATCHES * BATCH).map(|i| record_of(c, i)).collect();
        reference.submit_batch(ref_session, &records, true).unwrap();
    }
    assert_eq!(reference.stats(ref_session).unwrap().total, total);
    let via_threaded = reference
        .reconstruct(ref_session, ReconstructionMethod::ClosedForm, false)
        .unwrap();
    assert_eq!(
        via_async.estimates, via_threaded.estimates,
        "fan-in ingest must reconstruct bit-identically to threaded"
    );

    threaded.shutdown().unwrap();
    handle.shutdown().unwrap();
}

#[test]
fn backpressured_pipelined_requests_resume_after_the_peer_drains() {
    // Two pipelined reconstructs whose responses (~15 MB each, a
    // 1M-cell domain) far exceed the 256 KiB write high-water mark AND
    // the socket buffers: the reactor must park the second request
    // under backpressure while the first response drains, then resume
    // it from the read buffer — driven by writable events alone, since
    // the socket has no more request bytes to deliver. A regression
    // here hangs the second read forever (hence the read timeout).
    let handle = spawn_async(1);
    let mut client = Client::connect(handle.addr()).unwrap();
    let session = client
        .create_session(&SessionSpec {
            schema: vec![("wide".into(), 1_000_000)],
            mechanism: Mechanism::Deterministic { gamma: GAMMA },
            shards: Some(1),
            seed: Some(2),
        })
        .unwrap();
    client
        .submit_batch(session, &[vec![3], vec![7], vec![3]], true)
        .unwrap();

    let stream = connect_patiently(handle.addr());
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    let request =
        format!(r#"{{"op":"reconstruct","session":{session},"method":"closed","clamp":false}}"#);
    writer
        .write_all(format!("{request}\n{request}\n").as_bytes())
        .unwrap();
    writer.flush().unwrap();
    // Give the server time to wedge itself against full buffers before
    // we start draining.
    std::thread::sleep(Duration::from_millis(300));
    let mut reader = BufReader::new(stream);
    let mut first = String::new();
    reader.read_line(&mut first).unwrap();
    assert!(
        first.len() > 1 << 20,
        "response must be large enough to trigger backpressure ({} bytes)",
        first.len()
    );
    let mut second = String::new();
    assert!(
        reader.read_line(&mut second).unwrap() > 0,
        "second pipelined response must arrive after the drain"
    );
    assert_eq!(first, second, "identical requests, identical responses");

    handle.shutdown().unwrap();
}

#[test]
fn async_sheds_past_the_cap_in_band() {
    let config = ServiceConfig {
        max_connections: 2,
        ..ServiceConfig::default()
    }
    .with_reactor(1);
    let handle = Server::bind(config).unwrap().spawn().unwrap();

    let mut c1 = Client::connect(handle.addr()).unwrap();
    c1.ping().unwrap();
    let mut c2 = Client::connect(handle.addr()).unwrap();
    c2.ping().unwrap();
    let mut shed = Client::connect(handle.addr()).unwrap();
    match shed.ping().unwrap_err() {
        frapp_service::ServiceError::Remote { message, .. } => {
            assert!(message.contains("connection capacity"), "{message}")
        }
        frapp_service::ServiceError::Io(_) | frapp_service::ServiceError::ConnectionClosed => {}
        other => panic!("unexpected error {other:?}"),
    }
    assert_eq!(handle.transport_metrics().report().sheds, 1);

    drop(shed);
    drop(c2);
    // A freed slot admits again.
    let mut retry = None;
    for _ in 0..50 {
        let mut c = Client::connect(handle.addr()).unwrap();
        if c.ping().is_ok() {
            retry = Some(c);
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(retry.is_some());
    drop(retry);
    drop(c1);
    handle.shutdown().unwrap();
}
