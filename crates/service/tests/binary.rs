//! Binary-framing integration tests: three-framing bit parity on both
//! front-ends, the negotiated-upgrade handshake over raw sockets,
//! response byte-equivalence with the line protocol, the
//! negotiated-framing counters, and malformed-frame rejection
//! (truncated varints, oversized lengths, unknown opcodes/flags,
//! mid-frame disconnects) on the threaded and reactor paths alike.

#![cfg(unix)]

use frapp_service::client::{Client, HttpClient, SessionSpec};
use frapp_service::framing::{
    encode_json_frame, encode_submit_frame, read_varint, write_varint, OP_JSON, OP_SUBMIT,
};
use frapp_service::session::{Mechanism, ReconstructionMethod};
use frapp_service::{Server, ServerHandle, ServiceConfig, ServiceError};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

const GAMMA: f64 = 19.0;

fn spawn_threaded() -> ServerHandle {
    Server::bind(ServiceConfig::default().with_http_addr("127.0.0.1:0"))
        .unwrap()
        .spawn()
        .unwrap()
}

fn spawn_async() -> ServerHandle {
    Server::bind(
        ServiceConfig::default()
            .with_http_addr("127.0.0.1:0")
            .with_reactor(2),
    )
    .unwrap()
    .spawn()
    .unwrap()
}

fn small_spec(seed: u64) -> SessionSpec {
    SessionSpec {
        schema: vec![("a".into(), 4), ("b".into(), 3)],
        mechanism: Mechanism::Deterministic { gamma: GAMMA },
        shards: Some(1),
        seed: Some(seed),
    }
}

/// A deterministic raw workload over the 12-cell `small_spec` domain.
fn workload(n: usize) -> Vec<Vec<u32>> {
    (0..n)
        .map(|i| {
            if i % 10 < 6 {
                vec![1, 2]
            } else {
                vec![(i % 4) as u32, (i % 3) as u32]
            }
        })
        .collect()
}

/// Opens a raw connection and upgrades it to binary framing via the
/// line-protocol `hello`, asserting the ack arrives in the *old*
/// framing. Returns the stream positioned just past the ack.
fn raw_binary_upgrade(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    writer
        .write_all(b"{\"op\":\"hello\",\"framing\":\"binary\"}\n")
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut ack = String::new();
    assert!(reader.read_line(&mut ack).unwrap() > 0, "no hello ack");
    assert!(ack.contains("\"ok\":true"), "{ack}");
    assert!(ack.contains("\"framing\":\"binary\""), "{ack}");
    assert!(
        reader.buffer().is_empty(),
        "nothing may follow the ack until the client speaks binary"
    );
    stream
}

/// Reads one `[opcode][varint len][payload]` frame off a raw stream.
fn read_frame(stream: &mut TcpStream) -> Option<(u8, Vec<u8>)> {
    let mut opcode = [0u8; 1];
    match stream.read_exact(&mut opcode) {
        Ok(()) => {}
        Err(_) => return None,
    }
    let mut varint = Vec::new();
    loop {
        let mut b = [0u8; 1];
        stream.read_exact(&mut b).unwrap();
        varint.push(b[0]);
        if b[0] & 0x80 == 0 {
            break;
        }
    }
    let (len, _) = read_varint(&varint).unwrap().unwrap();
    let mut payload = vec![0u8; len as usize];
    stream.read_exact(&mut payload).unwrap();
    Some((opcode[0], payload))
}

/// Reads until EOF, asserting the server closed without sending a
/// single byte — the fatal-frame contract. A stalled server trips the
/// read timeout and fails the test; a reset (close with unread input)
/// counts as a close.
fn assert_silent_close(stream: &mut TcpStream) {
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut buf = Vec::new();
    match stream.read_to_end(&mut buf) {
        Ok(n) => assert_eq!(
            n,
            0,
            "malformed frames must be dropped silently, got {:?}",
            String::from_utf8_lossy(&buf)
        ),
        Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset => {
            assert!(buf.is_empty(), "{:?}", String::from_utf8_lossy(&buf))
        }
        Err(e) => panic!("server must close the connection, not stall: {e}"),
    }
}

#[test]
fn all_three_framings_reconstruct_bit_identically_on_both_front_ends() {
    // The same create/submit/reconstruct script over the line protocol,
    // HTTP, and the negotiated binary framing, against a threaded and a
    // reactor server. Identical seeds + pinned shards mean identical
    // server-side perturbation streams, so every pair of transports
    // must agree bit-for-bit.
    for handle in [spawn_threaded(), spawn_async()] {
        let mut line = Client::connect(handle.addr()).unwrap();
        let mut http = HttpClient::connect(handle.http_addr().unwrap()).unwrap();
        let mut binary = Client::connect(handle.addr()).unwrap();
        binary.negotiate_binary().unwrap();
        assert_eq!(
            binary.framing(),
            frapp_service::protocol::WireFraming::Binary
        );

        let records = workload(5_000);
        let line_session = line.create_session(&small_spec(0xBEEF)).unwrap();
        let http_session = http.create_session(&small_spec(0xBEEF)).unwrap();
        let binary_session = binary.create_session(&small_spec(0xBEEF)).unwrap();

        for batch in records.chunks(500) {
            line.submit_batch_to_shard(line_session, 0, batch, false)
                .unwrap();
            http.submit_batch_to_shard(http_session, 0, batch, false)
                .unwrap();
            binary
                .submit_batch_to_shard(binary_session, 0, batch, false)
                .unwrap();
        }

        let a = line.stats(line_session).unwrap();
        let b = http.stats(http_session).unwrap();
        let c = binary.stats(binary_session).unwrap();
        assert_eq!(a.total, records.len() as u64);
        assert_eq!(a.total, b.total);
        assert_eq!(a.total, c.total);
        assert_eq!(a.per_shard, c.per_shard);

        for (method, clamp) in [
            (ReconstructionMethod::ClosedForm, false),
            (ReconstructionMethod::CachedLu, false),
        ] {
            let via_line = line.reconstruct(line_session, method, clamp).unwrap();
            let via_http = http.reconstruct(http_session, method, clamp).unwrap();
            let via_binary = binary.reconstruct(binary_session, method, clamp).unwrap();
            assert_eq!(via_line.estimates, via_http.estimates, "{method:?}");
            assert_eq!(via_line.estimates, via_binary.estimates, "{method:?}");
        }

        // The negotiated-framing counters saw the upgraded connection
        // and every frame it sent after the hello.
        let report = line.server_metrics().unwrap();
        assert_eq!(report.binary_connections, 1, "{report:?}");
        assert!(
            report.binary_requests >= (records.len() / 500) as u64,
            "{report:?}"
        );
        // Binary frames also count toward the shared TCP request
        // counter, so the per-framing split always sums to the total.
        assert!(report.tcp_requests >= report.binary_requests);

        handle.shutdown().unwrap();
    }
}

#[test]
fn binary_pipelined_submits_match_line_pipelining_including_failures() {
    // Deferred binary OP_SUBMIT frames are silent, flush reports the
    // same contiguous watermark the line protocol would, and a partial
    // batch poisons the watermark identically.
    let handle = spawn_threaded();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.negotiate_binary().unwrap();
    let session = client.create_session(&small_spec(7)).unwrap();

    let records = workload(5_000);
    for batch in records.chunks(100) {
        client.submit_nowait(session, batch, false).unwrap();
    }
    let accepted = client.flush().unwrap();
    assert_eq!(accepted, records.len() as u64);
    assert_eq!(client.stats(session).unwrap().total, records.len() as u64);
    assert_eq!(client.server_metrics().unwrap().deferred_batches, 50);

    // A mid-batch schema violation: the flush error carries the
    // watermark, exactly like the line protocol's retry contract.
    client
        .submit_nowait(session, &[vec![0, 0], vec![9, 9], vec![1, 1]], true)
        .unwrap();
    let err = client.flush().unwrap_err();
    match err {
        ServiceError::Remote { accepted, message } => {
            assert!(message.contains("counted"), "{message}");
            // The first flush reset the watermark, so only the one
            // record accepted from the failing batch is counted.
            assert_eq!(accepted, Some(1));
        }
        other => panic!("expected Remote, got {other:?}"),
    }

    // The same session stays usable for the retry past the watermark.
    client
        .submit_nowait(session, &[vec![2, 1], vec![1, 1]], true)
        .unwrap();
    assert_eq!(client.flush().unwrap(), 2);
    assert_eq!(
        client.stats(session).unwrap().total,
        records.len() as u64 + 3
    );

    handle.shutdown().unwrap();
}

#[test]
fn binary_responses_are_line_responses_minus_the_newline() {
    // §6.4: an OP_JSON response frame's payload is byte-identical to
    // the line-protocol response for the same request, minus the
    // trailing '\n'. The same script runs over the line protocol on one
    // fresh server and over binary frames on a second fresh server of
    // the same kind — fresh registries, identical seeds, so identical
    // ids and identical bytes. Checked on both front-ends.
    for spawn in [spawn_threaded as fn() -> ServerHandle, spawn_async] {
        let line_server = spawn();
        let bin_server = spawn();
        let script = [
            r#"{"op":"ping"}"#,
            r#"{"op":"create_session","schema":[["a",4],["b",3]],"gamma":19.0,"shards":1,"seed":7}"#,
            r#"{"op":"submit","session":1,"records":[[0,0],[1,2]],"pre_perturbed":false}"#,
            r#"{"op":"stats","session":1}"#,
            r#"{"op":"stats","session":404}"#,
            r#"{"op":"reconstruct","session":1,"method":"closed","clamp":true}"#,
        ];

        let line_stream = TcpStream::connect(line_server.addr()).unwrap();
        let mut line_writer = line_stream.try_clone().unwrap();
        let mut line_reader = BufReader::new(line_stream);
        let mut bin_stream = raw_binary_upgrade(bin_server.addr());
        let mut frame = Vec::new();
        for request in script {
            line_writer.write_all(request.as_bytes()).unwrap();
            line_writer.write_all(b"\n").unwrap();
            line_writer.flush().unwrap();
            let mut line_response = String::new();
            assert!(line_reader.read_line(&mut line_response).unwrap() > 0);

            frame.clear();
            encode_json_frame(&mut frame, request);
            bin_stream.write_all(&frame).unwrap();
            bin_stream.flush().unwrap();
            let (opcode, payload) = read_frame(&mut bin_stream).expect("response frame");
            assert_eq!(opcode, OP_JSON);
            let bin_response = String::from_utf8(payload).unwrap();
            assert_eq!(
                bin_response,
                line_response.trim_end_matches('\n'),
                "request {request}"
            );
        }
        line_server.shutdown().unwrap();
        bin_server.shutdown().unwrap();
    }
}

#[test]
fn binary_submit_frames_land_like_json_submits() {
    // A raw OP_SUBMIT frame (varint cells) and its FIXED32 twin ingest
    // exactly like the tunnelled JSON submit, on both front-ends.
    for handle in [spawn_threaded(), spawn_async()] {
        let mut control = Client::connect(handle.addr()).unwrap();
        let session = control.create_session(&small_spec(3)).unwrap();

        let mut stream = raw_binary_upgrade(handle.addr());
        let records = vec![vec![1u32, 2], vec![3, 1], vec![0, 0]];
        let mut frame = Vec::new();
        encode_submit_frame(&mut frame, session, &records, true, None, false, false);
        stream.write_all(&frame).unwrap();
        let (opcode, payload) = read_frame(&mut stream).expect("submit response");
        assert_eq!(opcode, OP_JSON);
        let response = String::from_utf8(payload).unwrap();
        assert!(response.contains("\"accepted\":3"), "{response}");

        // FIXED32 cells, routed to a pinned shard, deferred (silent).
        frame.clear();
        encode_submit_frame(&mut frame, session, &records, true, Some(0), true, true);
        stream.write_all(&frame).unwrap();
        // Flush via the JSON tunnel to collect the watermark.
        frame.clear();
        encode_json_frame(&mut frame, r#"{"op":"flush"}"#);
        stream.write_all(&frame).unwrap();
        let (opcode, payload) = read_frame(&mut stream).expect("flush response");
        assert_eq!(opcode, OP_JSON);
        let response = String::from_utf8(payload).unwrap();
        assert!(response.contains("\"accepted\":3"), "{response}");

        assert_eq!(control.stats(session).unwrap().total, 6);
        handle.shutdown().unwrap();
    }
}

#[test]
fn malformed_binary_frames_close_the_connection_silently() {
    // Every malformed-frame class from §6 must produce a silent fatal
    // close on the threaded path and the reactor path alike — and the
    // server must keep serving fresh connections afterwards.
    for handle in [spawn_threaded(), spawn_async()] {
        let addr = handle.addr();

        // Unknown opcode.
        let mut s = raw_binary_upgrade(addr);
        s.write_all(&[0x7F, 0x00]).unwrap();
        assert_silent_close(&mut s);

        // Overlong varint length (11 continuation bytes can never be a
        // valid LEB128 u64).
        let mut s = raw_binary_upgrade(addr);
        let mut frame = vec![OP_JSON];
        frame.extend_from_slice(&[0xFF; 11]);
        s.write_all(&frame).unwrap();
        assert_silent_close(&mut s);

        // Oversized declared length: rejected before any payload byte
        // is read (the write of the length alone triggers the close).
        let mut s = raw_binary_upgrade(addr);
        let mut frame = vec![OP_JSON];
        write_varint(&mut frame, u64::MAX / 2);
        s.write_all(&frame).unwrap();
        assert_silent_close(&mut s);

        // Truncated varint then disconnect: the server must just drop
        // the connection, not stall or crash.
        let mut s = raw_binary_upgrade(addr);
        s.write_all(&[OP_SUBMIT, 0x80, 0x80]).unwrap();
        s.shutdown(std::net::Shutdown::Write).unwrap();
        assert_silent_close(&mut s);

        // Mid-frame disconnect: a frame that declares 100 payload bytes
        // but delivers 10.
        let mut s = raw_binary_upgrade(addr);
        let mut frame = vec![OP_SUBMIT];
        write_varint(&mut frame, 100);
        frame.extend_from_slice(&[0u8; 10]);
        s.write_all(&frame).unwrap();
        s.shutdown(std::net::Shutdown::Write).unwrap();
        assert_silent_close(&mut s);

        // Unknown flag bit in an otherwise valid OP_SUBMIT.
        let mut control = Client::connect(addr).unwrap();
        let session = control.create_session(&small_spec(1)).unwrap();
        let mut s = raw_binary_upgrade(addr);
        let mut frame = Vec::new();
        encode_submit_frame(&mut frame, session, &[vec![0, 0]], true, None, false, false);
        // The flags byte sits right after the opcode and length varint;
        // for this tiny frame the length is a single byte.
        frame[2] |= 0x80;
        s.write_all(&frame).unwrap();
        assert_silent_close(&mut s);

        // A cell-count lie: n_records * n_attrs larger than the payload
        // can hold must be rejected by pre-validation, not by a giant
        // allocation.
        let mut s = raw_binary_upgrade(addr);
        let mut payload = vec![0u8]; // flags
        write_varint(&mut payload, session);
        write_varint(&mut payload, u64::MAX / 4); // n_records
        write_varint(&mut payload, 2); // n_attrs
        let mut frame = vec![OP_SUBMIT];
        write_varint(&mut frame, payload.len() as u64);
        frame.extend_from_slice(&payload);
        s.write_all(&frame).unwrap();
        assert_silent_close(&mut s);

        // The server survived all of it: fresh connections still work,
        // and no malformed frame ingested anything.
        let mut after = Client::connect(addr).unwrap();
        after.ping().unwrap();
        assert_eq!(control.stats(session).unwrap().total, 0);
        handle.shutdown().unwrap();
    }
}

#[test]
fn binary_negotiation_can_downgrade_back_to_line() {
    // §6.1: a tunnelled hello can switch the connection back to the
    // line framing; the ack arrives as the last binary frame.
    let handle = spawn_threaded();
    let mut stream = raw_binary_upgrade(handle.addr());
    let mut frame = Vec::new();
    encode_json_frame(&mut frame, r#"{"op":"hello","framing":"line"}"#);
    stream.write_all(&frame).unwrap();
    let (opcode, payload) = read_frame(&mut stream).expect("downgrade ack");
    assert_eq!(opcode, OP_JSON);
    assert!(
        String::from_utf8(payload)
            .unwrap()
            .contains("\"framing\":\"line\""),
        "ack must confirm the downgrade"
    );
    // Back on the line protocol: a plain newline-terminated request.
    stream.write_all(b"{\"op\":\"ping\"}\n").unwrap();
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    assert!(reader.read_line(&mut response).unwrap() > 0);
    assert!(response.contains("\"pong\":true"), "{response}");
    handle.shutdown().unwrap();
}
