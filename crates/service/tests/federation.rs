//! Federation tier end-to-end tests: a real multi-node loopback
//! cluster with consistent-hash routing, pipelined inter-node
//! replication and conflict-free merge.
//!
//! The load-bearing property throughout is *bit-identity*: with
//! pre-perturbed streams the collected counts are pure integer tallies
//! (exact in f64 far below 2^53 and order-independent), so a federated
//! reconstruction — partitions merged across owner nodes, solved once
//! on the coordinator — must equal a single-node run on the same
//! stream down to the last bit, even across a node crash and
//! anti-entropy catch-up.

use frapp_core::perturb::{GammaDiagonal, Perturber};
use frapp_service::client::{Client, SessionSpec};
use frapp_service::session::{Mechanism, ReconstructionMethod};
use frapp_service::{Server, ServiceConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

const GAMMA: f64 = 19.0;

fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let base = std::env::var_os("FRAPP_PERSIST_TEST_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(std::env::temp_dir);
    let dir = base.join(format!(
        "frapp-federation-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Reserves `n` distinct loopback ports. The listeners are dropped
/// before the servers bind, so a tiny reuse race exists — acceptable
/// in tests, unavoidable when the peer list must be known up front.
fn free_ports(n: usize) -> Vec<u16> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().unwrap().port())
        .collect()
}

/// One identical config per node: the same ordered peer list, each
/// node's own index, and (optionally) a per-node persistence dir.
fn cluster_configs(
    ports: &[u16],
    replication: usize,
    persist_base: Option<&PathBuf>,
) -> Vec<ServiceConfig> {
    let peers: Vec<String> = ports.iter().map(|p| format!("127.0.0.1:{p}")).collect();
    peers
        .iter()
        .enumerate()
        .map(|(node, addr)| {
            let mut config =
                ServiceConfig::with_addr(addr.clone()).with_peers(peers.clone(), node, replication);
            if let Some(base) = persist_base {
                config.persist_dir = Some(base.join(format!("node{node}")));
            }
            // Loopback: fail fast rather than waiting out WAN-scale
            // timeouts when a test deliberately kills a node.
            config.connect_timeout_ms = 2_000;
            config.read_timeout_ms = 5_000;
            config
        })
        .collect()
}

fn spec(shards: usize, seed: u64) -> SessionSpec {
    SessionSpec {
        schema: vec![("a".into(), 4), ("b".into(), 3), ("c".into(), 2)],
        mechanism: Mechanism::Deterministic { gamma: GAMMA },
        shards: Some(shards),
        seed: Some(seed),
    }
}

/// A deterministic pre-perturbed stream: raw records from a fixed
/// pattern, perturbed client-side with a seeded RNG — the paper's
/// trust model, and the precondition for cross-topology bit-identity.
fn perturbed_stream(n: usize, seed: u64) -> Vec<Vec<u32>> {
    let schema = frapp_core::Schema::new(vec![("a", 4), ("b", 3), ("c", 2)]).unwrap();
    let gd = GammaDiagonal::new(&schema, GAMMA).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let raw = vec![(i % 4) as u32, (i % 3) as u32, (i % 2) as u32];
            gd.perturb_record(&raw, &mut rng).unwrap()
        })
        .collect()
}

/// The single-node ground truth for a stream: same spec, same batches,
/// one plain server.
fn single_node_estimates(stream: &[Vec<u32>], batch: usize) -> Vec<f64> {
    let handle = Server::bind(ServiceConfig::default())
        .unwrap()
        .spawn()
        .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let session = client.create_session(&spec(2, 0x5EED)).unwrap();
    for chunk in stream.chunks(batch) {
        client.submit_batch(session, chunk, true).unwrap();
    }
    let rec = client
        .reconstruct(session, ReconstructionMethod::ClosedForm, false)
        .unwrap();
    assert_eq!(rec.n as usize, stream.len());
    handle.shutdown().unwrap();
    rec.estimates
}

#[test]
fn federated_reconstruction_is_bit_identical_to_single_node() {
    let stream = perturbed_stream(6_000, 0xFED1);
    let baseline = single_node_estimates(&stream, 250);

    let ports = free_ports(3);
    let configs = cluster_configs(&ports, 2, None);
    let handles: Vec<_> = configs
        .iter()
        .map(|c| Server::bind(c.clone()).unwrap().spawn().unwrap())
        .collect();

    // Coordinate through node 2 regardless of ownership: any node can
    // create, ingest and reconstruct a federated session.
    let mut client = Client::connect(handles[2].addr()).unwrap();
    let session = client.create_session(&spec(2, 0x5EED)).unwrap();

    // Pipelined ingest: deferred batches fan out across the owners
    // with no per-batch round trip; the flush is the barrier.
    for chunk in stream.chunks(250) {
        client.submit_nowait(session, chunk, true).unwrap();
    }
    let accepted = client.flush().unwrap();
    assert_eq!(accepted as usize, stream.len());

    let stats = client.stats(session).unwrap();
    assert_eq!(stats.total as usize, stream.len());
    assert_eq!(stats.per_shard.len(), 2, "one entry per owner node");
    assert!(
        stats.per_shard.iter().all(|&n| n > 0),
        "replication factor 2 must spread ingest across both owners: {:?}",
        stats.per_shard
    );

    let rec = client
        .reconstruct(session, ReconstructionMethod::ClosedForm, false)
        .unwrap();
    assert_eq!(rec.n as usize, stream.len());
    assert_eq!(
        rec.estimates, baseline,
        "federated merge must reproduce the single-node reconstruction bitwise"
    );

    // The same session is queryable through a *different* node.
    let mut other = Client::connect(handles[0].addr()).unwrap();
    let rec_other = other
        .reconstruct(session, ReconstructionMethod::ClosedForm, false)
        .unwrap();
    assert_eq!(rec_other.estimates, baseline);

    // Topology is visible on the wire, with every peer up.
    let status = client.cluster_status().unwrap();
    assert_eq!(
        status.get("federated").and_then(|v| v.as_bool()),
        Some(true)
    );
    let peers = status.get("peers").and_then(|v| v.as_array()).unwrap();
    assert_eq!(peers.len(), 3);
    assert!(peers
        .iter()
        .all(|p| p.get("up").and_then(|v| v.as_bool()) == Some(true)));

    assert!(client.close_session(session).unwrap());
    for handle in handles {
        handle.shutdown().unwrap();
    }
}

#[test]
fn owner_restart_loses_nothing_and_double_counts_nothing() {
    let stream = perturbed_stream(4_800, 0xFED2);
    let baseline = single_node_estimates(&stream, 200);
    let (phase1, phase2) = stream.split_at(stream.len() / 2);

    let base = temp_dir("restart");
    let ports = free_ports(3);
    let configs = cluster_configs(&ports, 2, Some(&base));
    let mut handles: Vec<_> = configs
        .iter()
        .map(|c| Some(Server::bind(c.clone()).unwrap().spawn().unwrap()))
        .collect();

    // Work out the ownership so the test can kill an *owner* while
    // coordinating through the non-owner — both owners remote, the
    // fan-out fully exercised.
    let peers: Vec<String> = ports.iter().map(|p| format!("127.0.0.1:{p}")).collect();
    let topology = frapp_fed::Topology::new(peers, 0, 2).unwrap();

    // Session ids are assigned from the coordinator's residue class,
    // so create first, then derive the roles from the actual id.
    let mut bootstrap = Client::connect(handles[0].as_ref().unwrap().addr()).unwrap();
    let session = bootstrap.create_session(&spec(2, 0x5EED)).unwrap();
    drop(bootstrap);
    let owners = topology.owners(session);
    let coordinator = (0..3).find(|n| !owners.contains(n)).unwrap();
    let victim = owners[0];

    let mut client = Client::connect(handles[coordinator].as_ref().unwrap().addr()).unwrap();

    // Phase 1: half the stream through the full cluster, barriered.
    for chunk in phase1.chunks(200) {
        client.submit_nowait(session, chunk, true).unwrap();
    }
    assert_eq!(client.flush().unwrap() as usize, phase1.len());

    // Kill the owner mid-ingest. Its partition (plus its replication
    // watermarks) persists via its snapshot directory.
    handles[victim].take().unwrap().shutdown().unwrap();

    // Phase 2: ingest continues while the owner is down — its share of
    // the stream queues on the coordinator's replication link.
    for chunk in phase2.chunks(200) {
        client.submit_nowait(session, chunk, true).unwrap();
    }

    // Restart the owner from its snapshot, then barrier: the link
    // reconnects, asks the owner which sequence numbers it already
    // applied, and resends exactly the gap — the phase-1 batches must
    // not be double-counted, the phase-2 backlog must not be lost.
    handles[victim] = Some(
        Server::bind(configs[victim].clone())
            .unwrap()
            .spawn()
            .unwrap(),
    );
    assert_eq!(client.flush().unwrap() as usize, phase2.len());

    let stats = client.stats(session).unwrap();
    assert_eq!(stats.total as usize, stream.len());

    let rec = client
        .reconstruct(session, ReconstructionMethod::ClosedForm, false)
        .unwrap();
    assert_eq!(
        rec.estimates, baseline,
        "post-restart federated reconstruction must stay bit-identical \
         to the single-node run"
    );

    for handle in handles.into_iter().flatten() {
        handle.shutdown().unwrap();
    }
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn forwarded_duplicates_are_acked_but_not_recounted() {
    // The receiver-side half of exactly-once: the same (origin, seq)
    // batch delivered twice — a retry after an ambiguous failure —
    // claims once and is acked both times.
    let handle = Server::bind(ServiceConfig::default())
        .unwrap()
        .spawn()
        .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let session = client.create_session(&spec(2, 7)).unwrap();

    let line = format!(
        r#"{{"op":"submit","session":{session},"records":[[0,0,0],[1,1,1],[2,2,0]],"pre_perturbed":true,"origin":4,"seq":9}}"#
    );
    let first = client.request(&line).unwrap();
    assert_eq!(first.get("accepted").and_then(|v| v.as_u64()), Some(3));
    assert_eq!(first.get("duplicate"), None);
    let second = client.request(&line).unwrap();
    assert_eq!(
        second.get("accepted").and_then(|v| v.as_u64()),
        Some(3),
        "a duplicate retry is acknowledged — its records already count"
    );
    assert_eq!(
        second.get("duplicate").and_then(|v| v.as_bool()),
        Some(true)
    );

    let stats = client.stats(session).unwrap();
    assert_eq!(stats.total, 3, "the duplicate must not be recounted");
    handle.shutdown().unwrap();
}

#[test]
fn replay_history_is_bounded_by_the_peers_durable_watermark() {
    // Regression for unbounded link memory: before durable-watermark
    // truncation, every deferred forward stayed in the link's replay
    // history for the life of the session. Now, once the peer reports
    // a batch persisted (snapshot or delta on disk), the forwarder may
    // forget it — so steady-state history is bounded by the truncation
    // threshold plus one persistence interval, while the forwarded
    // counter keeps growing.
    //
    // Mirrors HISTORY_TRUNCATE_THRESHOLD in fed.rs: the forward path
    // checks the peer's durable marks whenever a session's backlog
    // reaches a multiple of this.
    const THRESHOLD: u64 = 64;

    let stream = perturbed_stream(600, 0xFED4);
    let baseline = single_node_estimates(&stream, 2);

    let base = temp_dir("durable-truncate");
    let ports = free_ports(2);
    let configs = cluster_configs(&ports, 2, Some(&base));
    let mut handles: Vec<_> = configs
        .iter()
        .map(|c| Some(Server::bind(c.clone()).unwrap().spawn().unwrap()))
        .collect();

    // With two nodes at replication 2 both own every session, and the
    // per-session sequence alternates owners — exactly half of the
    // batches are forwarded over the single node0 -> node1 link.
    let mut client = Client::connect(handles[0].as_ref().unwrap().addr()).unwrap();
    let mut peer_admin = Client::connect(handles[1].as_ref().unwrap().addr()).unwrap();
    let session = client.create_session(&spec(2, 0x5EED)).unwrap();

    // Six rounds of pipelined ingest; after every round but the last,
    // the peer persists, advancing the durable watermark the link
    // truncates against. The final round stays memory-only on the peer
    // so the restart below has to be fed from the (truncated) history.
    let rounds: Vec<&[Vec<u32>]> = stream.chunks(100).collect();
    let last = rounds.len() - 1;
    for (round, records) in rounds.iter().enumerate() {
        for chunk in records.chunks(2) {
            client.submit_nowait(session, chunk, true).unwrap();
        }
        assert_eq!(client.flush().unwrap() as usize, records.len());
        if round < last {
            assert_eq!(peer_admin.persist(None).unwrap(), vec![session]);
        }
    }

    // 300 batches, 150 forwarded: well past two truncation rounds.
    let report = client
        .federation_metrics()
        .unwrap()
        .into_iter()
        .find(|p| p.forwarded_batches > 0)
        .expect("the link to the co-owner must have forwarded batches");
    assert!(
        report.forwarded_batches >= 2 * THRESHOLD,
        "test must drive the link past two truncation checks \
         (forwarded {})",
        report.forwarded_batches
    );
    assert!(
        report.history_batches < report.forwarded_batches,
        "durable truncation must have dropped persisted batches \
         (history {} vs forwarded {})",
        report.history_batches,
        report.forwarded_batches
    );
    assert!(
        report.history_batches < 2 * THRESHOLD,
        "replay history must stay bounded by the truncation threshold \
         plus one persistence interval, got {}",
        report.history_batches
    );

    // Truncation must never forget a batch a restart still needs: kill
    // the peer (its memory-only last round vanishes), restart it from
    // its snapshot, and let anti-entropy resend exactly the gap from
    // what remains of the history.
    handles[1].take().unwrap().shutdown().unwrap();
    handles[1] = Some(Server::bind(configs[1].clone()).unwrap().spawn().unwrap());
    client.flush().unwrap();

    let stats = client.stats(session).unwrap();
    assert_eq!(stats.total as usize, stream.len());
    let rec = client
        .reconstruct(session, ReconstructionMethod::ClosedForm, false)
        .unwrap();
    assert_eq!(
        rec.estimates, baseline,
        "reconstruction after truncation and a peer restart must stay \
         bit-identical to the single-node run"
    );

    for handle in handles.into_iter().flatten() {
        handle.shutdown().unwrap();
    }
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn degraded_reads_cover_reachable_partitions_and_heal_bit_identical() {
    // The graceful-degradation contract end to end: with one owner
    // down, a strict read fails, an `allow_partial` read returns the
    // reachable partitions tagged `degraded` with an exact coverage
    // report — and once the owner heals, the answer returns to
    // bit-identity with the single-node run.
    let stream = perturbed_stream(3_000, 0xFED7);
    let baseline = single_node_estimates(&stream, 150);

    let base = temp_dir("degraded");
    let ports = free_ports(3);
    let mut configs = cluster_configs(&ports, 2, Some(&base));
    for config in &mut configs {
        // A short breaker cooldown so the healing phase is not stuck
        // in fail-fast connects for the default full second.
        config.breaker_cooldown_ms = 100;
        config.breaker_threshold = 2;
    }
    let mut handles: Vec<_> = configs
        .iter()
        .map(|c| Some(Server::bind(c.clone()).unwrap().spawn().unwrap()))
        .collect();

    // Derive the roles from the actual session id: coordinate through
    // the non-owner so the outage hits a *remote* partition.
    let peers: Vec<String> = ports.iter().map(|p| format!("127.0.0.1:{p}")).collect();
    let topology = frapp_fed::Topology::new(peers, 0, 2).unwrap();
    let mut bootstrap = Client::connect(handles[0].as_ref().unwrap().addr()).unwrap();
    let session = bootstrap.create_session(&spec(2, 0x5EED)).unwrap();
    drop(bootstrap);
    let owners = topology.owners(session);
    let coordinator = (0..3).find(|n| !owners.contains(n)).unwrap();
    let victim = owners[0];

    let mut client = Client::connect(handles[coordinator].as_ref().unwrap().addr()).unwrap();
    for chunk in stream.chunks(150) {
        client.submit_nowait(session, chunk, true).unwrap();
    }
    assert_eq!(client.flush().unwrap() as usize, stream.len());

    // Healthy cluster: the partial-capable read is exact — no
    // `degraded` tag, no coverage report, bit-identical estimates.
    let (rec, coverage) = client
        .reconstruct_partial(session, ReconstructionMethod::ClosedForm, false)
        .unwrap();
    assert!(coverage.is_none(), "full coverage must not be degraded");
    assert_eq!(rec.estimates, baseline);

    // Kill one owner. Its partition of the ingest becomes unreachable.
    handles[victim].take().unwrap().shutdown().unwrap();

    // A strict read refuses rather than silently under-counting.
    assert!(client
        .reconstruct(session, ReconstructionMethod::ClosedForm, false)
        .is_err());

    // The partial read answers from the surviving owner and says
    // exactly what is missing.
    let (rec, coverage) = client
        .reconstruct_partial(session, ReconstructionMethod::ClosedForm, false)
        .unwrap();
    let coverage = coverage.expect("an owner outage must surface as partial coverage");
    assert_eq!(coverage.owners_total, 2);
    assert_eq!(coverage.owners_reachable, 1);
    assert_eq!(coverage.missing.len(), 1);
    assert_eq!(coverage.missing[0].0, victim);
    assert!(
        rec.n > 0 && (rec.n as usize) < stream.len(),
        "the degraded estimate must cover some but not all records (n = {})",
        rec.n
    );

    // Stats degrade the same way.
    let (stats, coverage) = client.stats_partial(session).unwrap();
    assert!(coverage.is_some());
    assert!(stats.total > 0 && (stats.total as usize) < stream.len());

    // Heal: restart the owner from its shutdown snapshot, wait out
    // the breaker cooldown (the next connect is the half-open probe),
    // and the exact answer must come back — bit-identical to the
    // single-node run.
    handles[victim] = Some(
        Server::bind(configs[victim].clone())
            .unwrap()
            .spawn()
            .unwrap(),
    );
    let deadline = Instant::now() + Duration::from_secs(20);
    let healed = loop {
        match client.reconstruct(session, ReconstructionMethod::ClosedForm, false) {
            Ok(rec) if rec.n as usize == stream.len() => break rec,
            result => {
                assert!(
                    Instant::now() < deadline,
                    "cluster failed to heal in time: {result:?}"
                );
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    };
    assert_eq!(
        healed.estimates, baseline,
        "post-heal reconstruction must return to single-node bit-identity"
    );
    // And the healed partial read is exact again.
    let (_, coverage) = client
        .reconstruct_partial(session, ReconstructionMethod::ClosedForm, false)
        .unwrap();
    assert!(coverage.is_none());

    for handle in handles.into_iter().flatten() {
        handle.shutdown().unwrap();
    }
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn client_read_timeout_unwedges_a_stalled_server() {
    // Regression: `Client` used to connect with no timeouts at all, so
    // a stalled peer (accepts, never answers) wedged the caller
    // forever — fatal once clients double as federation links.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let stall = std::thread::spawn(move || {
        // Accept and hold the connection open without ever writing.
        let conn = listener.accept().map(|(s, _)| s);
        std::thread::sleep(Duration::from_secs(10));
        drop(conn);
    });

    let started = Instant::now();
    let mut client = Client::connect_with_timeouts(
        addr,
        Some(Duration::from_secs(2)),
        Some(Duration::from_millis(300)),
    )
    .unwrap();
    let err = client.ping().unwrap_err();
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(5),
        "a stalled server must fail the call via the read timeout, \
         not hang (took {elapsed:?}: {err})"
    );
    stall.join().unwrap();
}
