//! End-to-end conformance suite for the background-job subsystem: the
//! `mine_rules`/`classify`/`job_*` ops over real sockets on all three
//! framings (line-JSON, HTTP, binary) and both front-ends (threaded,
//! reactor), cancellation latency, queue shedding, TTL retention, the
//! ingest-latency acceptance bound, a chi-squared / itemset-recovery
//! accuracy check against exact mining, and property tests driving
//! random submit/cancel/status/result interleavings against a model
//! state machine.

use frapp_core::dataset::Dataset;
use frapp_core::schema::Schema;
use frapp_mining::apriori::{apriori, AprioriParams};
use frapp_mining::estimators::ExactSupport;
use frapp_service::client::{job_status_is_terminal, Client, HttpClient, SessionSpec};
use frapp_service::json::Value;
use frapp_service::session::Mechanism;
use frapp_service::{FaultPlan, MineAlgo, MineSpec, Server, ServiceConfig, ServiceError};
use std::collections::BTreeSet;
use std::time::{Duration, Instant};

const GAMMA: f64 = 19.0;

fn mine_spec(seed: u64) -> SessionSpec {
    SessionSpec {
        schema: vec![("a".into(), 3), ("b".into(), 2), ("c".into(), 2)],
        mechanism: Mechanism::Deterministic { gamma: GAMMA },
        shards: Some(2),
        seed: Some(seed),
    }
}

/// The planted mixture the unit suite uses: [0,0,0] at 50%, [1,1,1] at
/// 30%, [2,0,1] at 20% — majority itemsets far from any mining
/// threshold used below.
fn mixture(n: usize) -> Vec<Vec<u32>> {
    (0..n)
        .map(|i| match i % 10 {
            0..=4 => vec![0, 0, 0],
            5..=7 => vec![1, 1, 1],
            _ => vec![2, 0, 1],
        })
        .collect()
}

fn load(client: &mut Client, session: u64, records: &[Vec<u32>], pre_perturbed: bool) {
    for batch in records.chunks(1_000) {
        client.submit_batch(session, batch, pre_perturbed).unwrap();
    }
}

fn wait_state(client: &mut Client, job: u64, state: &str) {
    for _ in 0..500 {
        let status = client.job_status(job).unwrap();
        if status.get("state").and_then(Value::as_str) == Some(state) {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("job {job} never reached state {state}");
}

#[test]
fn mining_results_are_bit_identical_across_framings_and_front_ends() {
    // The same pre-perturbed stream (client-side values, so the server
    // draws no RNG) mined through every framing on both front-ends:
    // all six result payloads per algorithm must be byte-identical.
    let records = mixture(20_000);
    let mut per_front_end: Vec<Vec<String>> = Vec::new();

    for reactor in [false, true] {
        let mut config = ServiceConfig::default().with_http_addr("127.0.0.1:0");
        if reactor {
            config = config.with_reactor(1);
        }
        let handle = Server::bind(config).unwrap().spawn().unwrap();
        let mut line = Client::connect(handle.addr()).unwrap();
        let mut binary = Client::connect(handle.addr()).unwrap();
        binary.negotiate_binary().unwrap();
        let mut http = HttpClient::connect(handle.http_addr().unwrap()).unwrap();

        let session = line.create_session(&mine_spec(7)).unwrap();
        load(&mut line, session, &records, true);

        let mut results = Vec::new();
        for algo in [MineAlgo::Apriori, MineAlgo::FpGrowth] {
            let spec = MineSpec {
                algo,
                min_support: 0.15,
                min_confidence: 0.5,
                max_length: 0,
            };
            let mut framing_results = Vec::new();
            let jobs = [
                line.mine_rules(session, &spec).unwrap(),
                binary.mine_rules(session, &spec).unwrap(),
                http.mine_rules(session, &spec).unwrap(),
            ];
            for job in jobs {
                let status = line.wait_job(job, Duration::from_secs(30)).unwrap();
                assert_eq!(
                    status.get("state").and_then(Value::as_str),
                    Some("done"),
                    "{status:?}"
                );
                framing_results.push(line.job_result(job).unwrap().to_json());
            }
            // A job submitted over one framing is visible over the
            // others (one server-wide job namespace).
            assert_eq!(framing_results[0], framing_results[1], "line vs binary");
            assert_eq!(framing_results[0], framing_results[2], "line vs http");
            assert!(
                framing_results[0].contains("\"rules\":[{"),
                "no rules mined: {}",
                framing_results[0]
            );
            // HTTP sees the same result bytes when it asks itself.
            let via_http = http.job_result(jobs[2]).unwrap().to_json();
            assert_eq!(framing_results[2], via_http);
            results.push(framing_results.remove(0));
        }
        per_front_end.push(results);
        handle.shutdown().unwrap();
    }

    assert_eq!(
        per_front_end[0], per_front_end[1],
        "threaded and reactor front-ends mined different results"
    );
}

#[test]
fn cancelling_a_running_job_is_bounded_and_final() {
    // The injected delay pins the job in `running`; cancellation must
    // land cooperatively within the checkpoint bound, far below the
    // job's natural runtime.
    let config = ServiceConfig {
        fault_plan: FaultPlan::parse("seed=1,job_exec=delay(1500):1.0").unwrap(),
        ..ServiceConfig::default()
    };
    let handle = Server::bind(config).unwrap().spawn().unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let session = client.create_session(&mine_spec(7)).unwrap();
    load(&mut client, session, &mixture(2_000), true);

    let job = client.mine_rules(session, &MineSpec::default()).unwrap();
    wait_state(&mut client, job, "running");

    let cancelled_at = Instant::now();
    client.job_cancel(job).unwrap();
    let status = client.wait_job(job, Duration::from_secs(10)).unwrap();
    let latency = cancelled_at.elapsed();
    assert_eq!(
        status.get("state").and_then(Value::as_str),
        Some("cancelled"),
        "{status:?}"
    );
    // Bounded: the injected 1.5 s delay plus one mining checkpoint,
    // with generous CI slack — never the 10 s wait ceiling.
    assert!(latency < Duration::from_secs(5), "cancel took {latency:?}");

    // Terminal means terminal: the cancelled state survives re-cancel
    // and re-status, and the result op refuses in-band.
    let again = client.job_cancel(job).unwrap();
    assert_eq!(
        again.get("state").and_then(Value::as_str),
        Some("cancelled")
    );
    let err = client.job_result(job).unwrap_err();
    assert!(matches!(err, ServiceError::Remote { ref message, .. }
        if message.contains("cancelled")));

    assert!(handle.transport_metrics().report().jobs_cancelled >= 1);
    handle.shutdown().unwrap();
}

#[test]
fn full_job_queue_sheds_in_band() {
    // One worker pinned by the delay + a one-slot queue: the third
    // submission must shed with an in-band error, counted in jobs_shed,
    // without disturbing the queued job.
    let config = ServiceConfig {
        job_threads: 1,
        job_queue_depth: 1,
        fault_plan: FaultPlan::parse("seed=1,job_exec=delay(800):1.0").unwrap(),
        ..ServiceConfig::default()
    };
    let handle = Server::bind(config).unwrap().spawn().unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let session = client.create_session(&mine_spec(7)).unwrap();
    load(&mut client, session, &mixture(1_000), true);

    let spec = MineSpec::default();
    let running = client.mine_rules(session, &spec).unwrap();
    wait_state(&mut client, running, "running");
    let queued = client.mine_rules(session, &spec).unwrap();

    let err = client.mine_rules(session, &spec).unwrap_err();
    assert!(matches!(err, ServiceError::Remote { ref message, .. }
        if message.contains("job queue is full")));

    let report = client.server_metrics().unwrap();
    assert_eq!(report.jobs_shed, 1);
    assert_eq!(report.jobs_submitted, 2, "sheds are not submissions");

    // The shed left the accepted jobs intact; drain them.
    client.job_cancel(running).unwrap();
    client.job_cancel(queued).unwrap();
    for job in [running, queued] {
        let status = client.wait_job(job, Duration::from_secs(10)).unwrap();
        assert!(job_status_is_terminal(&status), "{status:?}");
    }
    handle.shutdown().unwrap();
}

#[test]
fn expired_jobs_answer_unknown_job_on_every_framing() {
    let config = ServiceConfig {
        job_result_ttl_secs: 1,
        ..ServiceConfig::default()
    }
    .with_http_addr("127.0.0.1:0");
    let handle = Server::bind(config).unwrap().spawn().unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let mut http = HttpClient::connect(handle.http_addr().unwrap()).unwrap();
    let session = client.create_session(&mine_spec(7)).unwrap();
    load(&mut client, session, &mixture(1_000), true);

    let job = client.mine_rules(session, &MineSpec::default()).unwrap();
    let status = client.wait_job(job, Duration::from_secs(10)).unwrap();
    assert_eq!(status.get("state").and_then(Value::as_str), Some("done"));
    client.job_result(job).unwrap();

    std::thread::sleep(Duration::from_millis(1_300));

    // Purged: status, result and cancel all answer `unknown job` — on
    // HTTP that is the 404 mapping, same as an id that never existed.
    for err in [
        client.job_status(job).unwrap_err(),
        client.job_result(job).unwrap_err(),
        http.job_status(job).unwrap_err(),
        http.job_cancel(job).unwrap_err(),
    ] {
        assert!(
            matches!(err, ServiceError::Remote { ref message, .. }
            if message.contains("unknown job")),
            "{err:?}"
        );
    }
    assert!(client.list_jobs().unwrap().is_empty());
    handle.shutdown().unwrap();
}

#[test]
fn submit_latency_stays_bounded_while_the_job_pool_is_busy() {
    // The acceptance bound, scaled for a unit-test budget (bench_ingest
    // measures the full 1M-record configuration): with every job worker
    // occupied by a running mining job, ingest p99 must stay within 2x
    // the idle baseline (plus an absolute floor to absorb scheduler
    // noise on loopback) — mining never executes on a
    // connection-serving thread.
    let config = ServiceConfig {
        job_threads: 2,
        fault_plan: FaultPlan::parse("seed=1,job_exec=delay(4000):1.0").unwrap(),
        ..ServiceConfig::default()
    };
    let handle = Server::bind(config).unwrap().spawn().unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let session = client.create_session(&mine_spec(7)).unwrap();
    let records = mixture(15_000);
    load(&mut client, session, &records, true);

    let p99 = |mut samples: Vec<Duration>| -> Duration {
        samples.sort();
        samples[samples.len() * 99 / 100]
    };
    let measure = |client: &mut Client| -> Vec<Duration> {
        records[..10_000]
            .chunks(50)
            .map(|batch| {
                let t0 = Instant::now();
                client.submit_batch(session, batch, true).unwrap();
                t0.elapsed()
            })
            .collect()
    };

    let idle_p99 = p99(measure(&mut client));

    // Occupy the whole pool.
    let spec = MineSpec {
        min_support: 0.001,
        ..MineSpec::default()
    };
    let jobs = [
        client.mine_rules(session, &spec).unwrap(),
        client.mine_rules(session, &spec).unwrap(),
    ];
    for job in jobs {
        wait_state(&mut client, job, "running");
    }

    let busy_p99 = p99(measure(&mut client));
    let bound = (idle_p99 * 2).max(Duration::from_millis(15));
    assert!(
        busy_p99 <= bound,
        "submit p99 under mining {busy_p99:?} exceeds bound {bound:?} (idle {idle_p99:?})"
    );

    for job in jobs {
        client.job_cancel(job).unwrap();
        client.wait_job(job, Duration::from_secs(15)).unwrap();
    }
    handle.shutdown().unwrap();
}

#[test]
fn reconstructed_mining_recovers_exact_itemsets_within_tolerance() {
    // The paper's accuracy claim, end to end: mine over the *perturbed
    // and reconstructed* session (server-side DET-GD at gamma 19,
    // seeded) and compare against exact Apriori on the original
    // records. Itemsets whose exact support sits outside the tolerance
    // band around the threshold must agree exactly; only the band may
    // differ. A chi-squared statistic over the reconstructed cell
    // counts guards the distribution itself.
    const MIN_SUPPORT: f64 = 0.10;
    const TOLERANCE: f64 = 0.05; // band half-width around the threshold
    const CHI2_BOUND: f64 = 120.0; // seeded run observes far less; df = 11

    let n = 50_000;
    let records = mixture(n);
    let handle = Server::bind(ServiceConfig::default())
        .unwrap()
        .spawn()
        .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let session = client.create_session(&mine_spec(11)).unwrap();
    // Raw submission: the server perturbs with its seeded stream.
    load(&mut client, session, &records, false);

    // Chi-squared between the clamped reconstruction and the true
    // distribution.
    let schema = Schema::new(vec![("a", 3), ("b", 2), ("c", 2)]).unwrap();
    let dataset = Dataset::new(schema, records).unwrap();
    let true_counts = dataset.count_vector();
    let rec = client
        .reconstruct(
            session,
            frapp_service::session::ReconstructionMethod::ClosedForm,
            true,
        )
        .unwrap();
    let chi2: f64 = rec
        .estimates
        .iter()
        .zip(&true_counts)
        .filter(|(_, &t)| t > 0.0)
        .map(|(&e, &t)| (e - t) * (e - t) / t)
        .sum();
    assert!(
        chi2 < CHI2_BOUND,
        "chi-squared {chi2} over bound {CHI2_BOUND}"
    );

    // Mined-over-reconstruction vs exact mining on the original data.
    let job = client
        .mine_rules(
            session,
            &MineSpec {
                min_support: MIN_SUPPORT,
                ..MineSpec::default()
            },
        )
        .unwrap();
    let status = client.wait_job(job, Duration::from_secs(30)).unwrap();
    assert_eq!(status.get("state").and_then(Value::as_str), Some("done"));
    let result = client.job_result(job).unwrap();
    let mined: BTreeSet<Vec<u64>> = result
        .get("itemsets")
        .and_then(Value::as_array)
        .unwrap()
        .iter()
        .map(|s| {
            s.get("items")
                .and_then(Value::as_array)
                .unwrap()
                .iter()
                .filter_map(Value::as_u64)
                .collect()
        })
        .collect();

    let exact_estimator = ExactSupport::from_dataset(&dataset);
    let exact = apriori(
        &exact_estimator,
        &AprioriParams {
            min_support: MIN_SUPPORT,
            max_length: 0,
            max_candidates: 0,
        },
    );
    for (set, support) in exact.iter() {
        let items: Vec<u64> = set.to_vec().iter().map(|&i| i as u64).collect();
        if support >= MIN_SUPPORT + TOLERANCE {
            assert!(
                mined.contains(&items),
                "exact itemset {items:?} (support {support:.3}) missed by reconstruction"
            );
        }
    }
    for items in &mined {
        let set = frapp_mining::ItemSet::from_items(
            &items.iter().map(|&i| i as usize).collect::<Vec<_>>(),
        );
        let support = frapp_mining::SupportEstimator::estimate(&exact_estimator, set);
        assert!(
            support >= MIN_SUPPORT - TOLERANCE,
            "mined itemset {items:?} has exact support {support:.3}, a false positive"
        );
    }
    handle.shutdown().unwrap();
}

// ---- property tests: interleavings vs a model state machine ---------

mod interleavings {
    use super::*;
    use frapp_service::jobs::JobManager;
    use frapp_service::metrics::TransportMetrics;
    use frapp_service::session::{CollectionSession, SessionRegistry};
    use proptest::prelude::*;
    use std::sync::Arc;

    /// Wire states ordered so that progress is monotone: a later
    /// observation may never map to a smaller rank, and terminal
    /// observations must be identical.
    fn rank(state: &str) -> u32 {
        match state {
            "queued" => 0,
            "running" => 1,
            "done" | "failed" | "cancelled" => 2,
            other => panic!("unknown wire state {other}"),
        }
    }

    fn is_terminal(state: &str) -> bool {
        rank(state) == 2
    }

    fn session() -> Arc<CollectionSession> {
        let registry = SessionRegistry::new();
        let created = registry
            .create(
                Schema::new(vec![("a", 3), ("b", 2), ("c", 2)]).unwrap(),
                Mechanism::Deterministic { gamma: GAMMA },
                2,
                7,
                4096,
            )
            .unwrap();
        created.session.submit_batch(&mixture(500), true).unwrap();
        created.session
    }

    fn state_of(status: &Value) -> String {
        status
            .get("state")
            .and_then(Value::as_str)
            .expect("status has a state")
            .to_owned()
    }

    fn status_of(mgr: &JobManager, id: u64) -> Option<Value> {
        match mgr.status_pairs(id) {
            Ok(pairs) => Some(pairs[0].1.clone()),
            Err(ServiceError::UnknownJob(_)) => None,
            Err(other) => panic!("status: {other}"),
        }
    }

    proptest! {
        /// Random submit/cancel/status/result interleavings against
        /// the live manager: observed states never regress, terminal
        /// states never change, results only exist for `done`, and
        /// after a drain every job is terminal with `list_jobs`
        /// consistent with per-job `job_status`.
        #[test]
        fn interleaved_ops_never_regress_job_state(
            ops in prop::collection::vec(0usize..4 * 8, 1..40),
        ) {
            // A short injected delay keeps jobs alive long enough for
            // cancels and statuses to genuinely race the workers.
            let mgr = JobManager::new(
                2,
                8,
                600,
                Arc::new(TransportMetrics::new()),
                FaultPlan::parse("seed=1,job_exec=delay(20):1.0").unwrap(),
            );
            let session = session();
            let mut ids: Vec<u64> = Vec::new();
            // Model: highest state rank observed + the terminal state
            // string once one is seen.
            let mut observed: Vec<(u32, Option<String>)> = Vec::new();

            let check = |idx: usize, status: &Value, observed: &mut Vec<(u32, Option<String>)>| {
                let state = state_of(status);
                let (seen_rank, seen_terminal) = &mut observed[idx];
                prop_assert!(
                    rank(&state) >= *seen_rank,
                    "job {} regressed from rank {} to {}", idx, seen_rank, state
                );
                *seen_rank = rank(&state);
                if let Some(t) = seen_terminal {
                    prop_assert_eq!(&state, t, "terminal state changed");
                } else if is_terminal(&state) {
                    *seen_terminal = Some(state);
                }
            };

            for op in ops {
                let (kind, target) = (op % 4, op / 4);
                match kind {
                    0 => {
                        // Submit; a full queue shedding in-band is a
                        // legal outcome, not a model transition.
                        if let Ok(rec) =
                            mgr.submit_mine_rules(Arc::clone(&session), MineSpec::default())
                        {
                            ids.push(rec.id());
                            observed.push((0, None));
                        }
                    }
                    1 if !ids.is_empty() => {
                        let idx = target % ids.len();
                        let pairs = mgr.cancel_pairs(ids[idx]).unwrap();
                        check(idx, &pairs[0].1, &mut observed);
                    }
                    2 if !ids.is_empty() => {
                        let idx = target % ids.len();
                        if let Some(status) = status_of(&mgr, ids[idx]) {
                            check(idx, &status, &mut observed);
                        }
                    }
                    3 if !ids.is_empty() => {
                        let idx = target % ids.len();
                        // result is only an Ok for done jobs; any state
                        // may legally answer an in-band error.
                        if let Ok(pairs) = mgr.result_pairs(ids[idx]) {
                            let state = pairs
                                .iter()
                                .find(|(k, _)| *k == "state")
                                .map(|(_, v)| v.as_str().unwrap().to_owned())
                                .unwrap();
                            prop_assert_eq!(state, "done", "result from a non-done job");
                            let (seen_rank, _) = &mut observed[idx];
                            *seen_rank = 2;
                        }
                    }
                    _ => {}
                }
            }

            // Drain: every job must reach exactly one terminal state.
            for (idx, &id) in ids.iter().enumerate() {
                let deadline = Instant::now() + Duration::from_secs(10);
                loop {
                    let status = status_of(&mgr, id).expect("ttl is long");
                    check(idx, &status, &mut observed);
                    if is_terminal(&state_of(&status)) {
                        break;
                    }
                    prop_assert!(Instant::now() < deadline, "job {id} never terminal");
                    std::thread::sleep(Duration::from_millis(5));
                }
            }

            // Quiesced: list_jobs agrees byte-for-byte with per-job
            // status, covers exactly the submitted ids, and results
            // exist precisely for done jobs.
            let listed = mgr.list_pairs();
            let listed = listed[0].1.as_array().unwrap();
            prop_assert_eq!(listed.len(), ids.len());
            for entry in listed {
                let id = entry.get("job").and_then(Value::as_u64).unwrap();
                prop_assert!(ids.contains(&id), "listed unknown job {}", id);
                let status = status_of(&mgr, id).expect("listed implies queryable");
                prop_assert_eq!(entry.to_json(), status.to_json());
                let done = state_of(&status) == "done";
                prop_assert_eq!(mgr.result_pairs(id).is_ok(), done);
            }
        }
    }
}
