//! Cross-transport integration tests: the HTTP front-end against the
//! line protocol, pipelined (deferred-ack) submits, the partial-batch
//! retry contract end-to-end over real sockets, and connection-cap
//! shedding.

use frapp_service::client::{Client, HttpClient, SessionSpec};
use frapp_service::session::{Mechanism, ReconstructionMethod};
use frapp_service::{Server, ServerHandle, ServiceConfig, ServiceError};

const GAMMA: f64 = 19.0;

fn spawn_with_http() -> ServerHandle {
    Server::bind(ServiceConfig::default().with_http_addr("127.0.0.1:0"))
        .unwrap()
        .spawn()
        .unwrap()
}

fn small_spec(seed: u64) -> SessionSpec {
    SessionSpec {
        schema: vec![("a".into(), 4), ("b".into(), 3)],
        mechanism: Mechanism::Deterministic { gamma: GAMMA },
        shards: Some(1),
        seed: Some(seed),
    }
}

/// A deterministic raw workload over the 12-cell `small_spec` domain.
fn workload(n: usize) -> Vec<Vec<u32>> {
    (0..n)
        .map(|i| {
            if i % 10 < 6 {
                vec![1, 2]
            } else {
                vec![(i % 4) as u32, (i % 3) as u32]
            }
        })
        .collect()
}

#[test]
fn http_and_tcp_transports_are_bit_identical() {
    // The same create/submit/reconstruct script, once over the line
    // protocol and once over HTTP, against one server. Identical seeds
    // + pinned shards mean identical server-side perturbation streams,
    // so session counts and estimates must agree bit-for-bit.
    let handle = spawn_with_http();
    let http_addr = handle.http_addr().expect("http enabled");
    let mut tcp = Client::connect(handle.addr()).unwrap();
    let mut http = HttpClient::connect(http_addr).unwrap();
    tcp.ping().unwrap();
    http.ping().unwrap();

    let records = workload(20_000);
    let tcp_session = tcp.create_session(&small_spec(0xBEEF)).unwrap();
    let http_session = http.create_session(&small_spec(0xBEEF)).unwrap();
    assert_ne!(tcp_session, http_session);

    for batch in records.chunks(1_000) {
        tcp.submit_batch_to_shard(tcp_session, 0, batch, false)
            .unwrap();
        http.submit_batch_to_shard(http_session, 0, batch, false)
            .unwrap();
    }

    let tcp_stats = tcp.stats(tcp_session).unwrap();
    let http_stats = http.stats(http_session).unwrap();
    assert_eq!(tcp_stats.total, records.len() as u64);
    assert_eq!(tcp_stats.total, http_stats.total);
    assert_eq!(tcp_stats.per_shard, http_stats.per_shard);

    // Estimates must agree exactly: same perturbation stream, same
    // solver, same shortest-roundtrip JSON float encoding both ways.
    for (method, clamp) in [
        (ReconstructionMethod::ClosedForm, false),
        (ReconstructionMethod::ClosedForm, true),
        (ReconstructionMethod::CachedLu, false),
    ] {
        let via_tcp = tcp.reconstruct(tcp_session, method, clamp).unwrap();
        let via_http = http.reconstruct(http_session, method, clamp).unwrap();
        assert_eq!(via_tcp.n, via_http.n);
        assert_eq!(
            via_tcp.estimates, via_http.estimates,
            "estimates diverged for {method:?} clamp={clamp}"
        );
    }

    // Cross-transport visibility: both sessions appear in one listing,
    // whichever transport asks.
    let via_tcp = tcp.list_sessions().unwrap();
    let via_http = http.list_sessions().unwrap();
    assert_eq!(via_tcp, via_http);
    assert!(via_tcp.contains(&tcp_session) && via_tcp.contains(&http_session));

    // Metrics agree on the ingest totals.
    let (tcp_report, tcp_total) = tcp.metrics(tcp_session).unwrap();
    let (http_report, http_total) = http.metrics(http_session).unwrap();
    assert_eq!(tcp_total, http_total);
    assert_eq!(tcp_report.records_ingested, http_report.records_ingested);
    assert_eq!(tcp_report.batches, http_report.batches);

    // Per-transport counters saw both sides.
    let transport = tcp.server_metrics().unwrap();
    assert!(transport.tcp_requests > 0, "{transport:?}");
    assert!(transport.http_requests > 0, "{transport:?}");
    assert!(transport.tcp_connections >= 1);
    assert!(transport.http_connections >= 1);

    // Close over HTTP, observe over TCP (and vice versa).
    assert!(http.close_session(tcp_session).unwrap());
    assert!(matches!(
        tcp.stats(tcp_session),
        Err(ServiceError::Remote { .. })
    ));
    assert!(tcp.close_session(http_session).unwrap());
    assert!(matches!(
        http.stats(http_session),
        Err(ServiceError::Remote { .. })
    ));

    handle.shutdown().unwrap();
}

#[test]
fn http_errors_map_to_in_band_responses() {
    let handle = spawn_with_http();
    let mut http = HttpClient::connect(handle.http_addr().unwrap()).unwrap();

    // Unknown session: 404 with the usual error body.
    let err = http.stats(404404).unwrap_err();
    assert!(matches!(err, ServiceError::Remote { ref message, .. }
        if message.contains("unknown session")));

    // Unknown route: the connection survives and later requests work.
    let err = http.request("GET", "/not/a/route", None).unwrap_err();
    assert!(matches!(err, ServiceError::Remote { ref message, .. }
        if message.contains("no route")));
    http.ping().unwrap();

    // Deferred acks are a line-protocol feature.
    let session = http.create_session(&small_spec(1)).unwrap();
    let body = frapp_service::json::parse(r#"{"records":[[0,0]],"ack":"deferred"}"#).unwrap();
    let err = http
        .request("POST", &format!("/sessions/{session}/records"), Some(&body))
        .unwrap_err();
    assert!(matches!(err, ServiceError::Remote { ref message, .. }
        if message.contains("deferred acks are not available")));

    // Partial batches carry the accepted prefix over HTTP too.
    let err = http
        .submit_batch(session, &[vec![0, 0], vec![9, 9], vec![1, 1]], true)
        .unwrap_err();
    match err {
        ServiceError::Remote { accepted, .. } => assert_eq!(accepted, Some(1)),
        other => panic!("expected Remote, got {other:?}"),
    }
    assert_eq!(http.stats(session).unwrap().total, 1);

    handle.shutdown().unwrap();
}

#[test]
fn pipelined_submits_ack_at_the_flush_watermark() {
    let handle = spawn_with_http();
    let mut client = Client::connect(handle.addr()).unwrap();
    let session = client.create_session(&small_spec(7)).unwrap();

    // Stream 50 deferred batches without reading a single response,
    // then flush once: the watermark covers every record.
    let records = workload(5_000);
    for batch in records.chunks(100) {
        client.submit_nowait(session, batch, false).unwrap();
    }
    let accepted = client.flush().unwrap();
    assert_eq!(accepted, records.len() as u64);
    assert_eq!(client.stats(session).unwrap().total, records.len() as u64);

    // The deferred batches show up in the transport counters.
    let transport = client.server_metrics().unwrap();
    assert_eq!(transport.deferred_batches, 50);

    // Pipelined reconstruction equals a synchronous session fed the
    // same stream (bit-identical server-side perturbation).
    let mut sync_client = Client::connect(handle.addr()).unwrap();
    let sync_session = sync_client.create_session(&small_spec(7)).unwrap();
    for batch in records.chunks(100) {
        sync_client
            .submit_batch_to_shard(sync_session, 0, batch, false)
            .unwrap();
    }
    let a = client
        .reconstruct(session, ReconstructionMethod::ClosedForm, false)
        .unwrap();
    let b = sync_client
        .reconstruct(sync_session, ReconstructionMethod::ClosedForm, false)
        .unwrap();
    assert_eq!(a.estimates, b.estimates);

    handle.shutdown().unwrap();
}

#[test]
fn pipelined_failure_reports_a_contiguous_retry_watermark() {
    let handle = spawn_with_http();
    let mut client = Client::connect(handle.addr()).unwrap();
    let session = client.create_session(&small_spec(3)).unwrap();

    // Three deferred batches: the second fails mid-way (1 of its 2
    // records lands), so the third must be dropped un-ingested.
    client
        .submit_nowait(session, &[vec![0, 0], vec![1, 1]], true)
        .unwrap();
    client
        .submit_nowait(session, &[vec![2, 2], vec![9, 9]], true)
        .unwrap();
    client
        .submit_nowait(session, &[vec![3, 1], vec![0, 2]], true)
        .unwrap();
    let err = client.flush().unwrap_err();
    let watermark = match err {
        ServiceError::Remote { accepted, message } => {
            assert!(message.contains("counted"), "{message}");
            accepted.expect("flush errors carry the watermark")
        }
        other => panic!("expected Remote, got {other:?}"),
    };
    assert_eq!(watermark, 3, "2 from batch 1 + 1 accepted from batch 2");
    assert_eq!(client.stats(session).unwrap().total, watermark);

    // Retry contract: resubmit everything past the watermark (with the
    // bad record fixed). Final counts show no double-counting.
    let full: Vec<Vec<u32>> = vec![
        vec![0, 0],
        vec![1, 1],
        vec![2, 2],
        vec![2, 1], // the fixed record
        vec![3, 1],
        vec![0, 2],
    ];
    for batch in full[watermark as usize..].chunks(2) {
        client.submit_nowait(session, batch, true).unwrap();
    }
    assert_eq!(
        client.flush().unwrap(),
        (full.len() - watermark as usize) as u64
    );
    assert_eq!(client.stats(session).unwrap().total, full.len() as u64);

    handle.shutdown().unwrap();
}

#[test]
fn synchronous_retry_contract_end_to_end_no_double_counting() {
    // The PR 2 retry contract over a real socket: a partial-batch
    // failure reports `accepted: Some(k)`, the client resubmits only
    // `records[k..]`, and the final counts (and the reconstruction
    // total) show each valid record exactly once.
    let handle = spawn_with_http();
    let mut client = Client::connect(handle.addr()).unwrap();
    let session = client.create_session(&small_spec(11)).unwrap();

    let mut batch = workload(500);
    batch[137] = vec![99, 99]; // violates the 4x3 schema

    let err = client.submit_batch(session, &batch, false).unwrap_err();
    let accepted = match err {
        ServiceError::Remote { accepted, message } => {
            assert!(message.contains("counted"), "{message}");
            accepted.expect("partial batches carry the retry offset")
        }
        other => panic!("expected Remote, got {other:?}"),
    };
    assert_eq!(accepted, 137);
    assert_eq!(client.stats(session).unwrap().total, accepted);

    // Fix the record, resubmit only the remainder.
    batch[137] = vec![3, 2];
    client
        .submit_batch(session, &batch[accepted as usize..], false)
        .unwrap();
    let stats = client.stats(session).unwrap();
    assert_eq!(stats.total, batch.len() as u64, "no double-counting");

    let rec = client
        .reconstruct(session, ReconstructionMethod::ClosedForm, true)
        .unwrap();
    assert_eq!(rec.n, batch.len() as u64);
    // Clamped estimates rescale to N, so the totals reconcile too.
    assert!((rec.estimates.iter().sum::<f64>() - batch.len() as f64).abs() < 1e-6);

    handle.shutdown().unwrap();
}

#[test]
fn connections_past_the_cap_are_shed_with_an_in_band_error() {
    let config = ServiceConfig {
        max_connections: 2,
        ..ServiceConfig::default()
    };
    let handle = Server::bind(config).unwrap().spawn().unwrap();

    // Fill the cap with two live connections.
    let mut c1 = Client::connect(handle.addr()).unwrap();
    c1.ping().unwrap();
    let mut c2 = Client::connect(handle.addr()).unwrap();
    c2.ping().unwrap();

    // The third connection is refused in-band, not silently dropped.
    let mut shed = Client::connect(handle.addr()).unwrap();
    let err = shed.ping().unwrap_err();
    match err {
        ServiceError::Remote { message, .. } => {
            assert!(message.contains("connection capacity"), "{message}")
        }
        // The server may close before the request write lands; either
        // way the client sees a hard error, never a hang.
        ServiceError::Io(_) | ServiceError::ConnectionClosed => {}
        other => panic!("unexpected error {other:?}"),
    }
    let report = handle.transport_metrics().report();
    assert_eq!(report.sheds, 1);
    assert_eq!(
        report.tcp_connections, 2,
        "shed connections are not counted"
    );

    // Freed slots admit new connections again.
    drop(shed);
    drop(c2);
    let mut retry = None;
    for _ in 0..50 {
        let mut c = Client::connect(handle.addr()).unwrap();
        if c.ping().is_ok() {
            retry = Some(c);
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    assert!(retry.is_some(), "a freed slot must admit a new connection");

    drop(retry);
    drop(c1);
    handle.shutdown().unwrap();
}

#[test]
fn http_connections_past_the_cap_get_503() {
    let config = ServiceConfig {
        max_connections: 1,
        ..ServiceConfig::default()
    }
    .with_http_addr("127.0.0.1:0");
    let handle = Server::bind(config).unwrap().spawn().unwrap();
    let http_addr = handle.http_addr().unwrap();

    // The only slot goes to an HTTP connection; the next HTTP
    // connection must be shed with a 503 + in-band JSON error.
    let mut held = HttpClient::connect(http_addr).unwrap();
    held.ping().unwrap();
    let mut shed = HttpClient::connect(http_addr).unwrap();
    let err = shed.ping().unwrap_err();
    match err {
        ServiceError::Remote { message, .. } => {
            assert!(message.contains("connection capacity"), "{message}")
        }
        ServiceError::Io(_) | ServiceError::ConnectionClosed => {}
        other => panic!("unexpected error {other:?}"),
    }
    assert_eq!(handle.transport_metrics().report().sheds, 1);

    // Free the slot so the shutdown connection can get in.
    drop(held);
    drop(shed);
    for _ in 0..50 {
        let mut c = Client::connect(handle.addr()).unwrap();
        if c.ping().is_ok() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    handle.shutdown().unwrap();
}
