//! End-to-end loopback test: a client streams 100k+ synthetic
//! CENSUS-like records through a real TCP server, and the service's
//! reconstruction matches the offline `reconstruct` path within
//! floating-point tolerance.

use frapp_core::perturb::{GammaDiagonal, Perturber};
use frapp_core::reconstruct::GammaDiagonalReconstructor;
use frapp_core::{CountAccumulator, Dataset};
use frapp_service::client::{Client, SessionSpec};
use frapp_service::session::{Mechanism, ReconstructionMethod};
use frapp_service::shard::shard_seed;
use frapp_service::{Server, ServiceConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const N_RECORDS: usize = 100_000;
const GAMMA: f64 = 19.0;
const SESSION_SEED: u64 = 0xCE9505;

/// The CENSUS-like workload: the paper's Table 1 schema, records from
/// the calibrated mixture model.
fn census_workload() -> Dataset {
    frapp_data::census::census_like_n(N_RECORDS, 41)
}

fn census_spec(shards: usize) -> SessionSpec {
    SessionSpec {
        schema: frapp_data::census::schema()
            .attributes()
            .iter()
            .map(|a| (a.name().to_owned(), a.cardinality()))
            .collect(),
        mechanism: Mechanism::Deterministic { gamma: GAMMA },
        shards: Some(shards),
        seed: Some(SESSION_SEED),
    }
}

#[test]
fn loopback_e2e_matches_offline_reconstruction() {
    let dataset = census_workload();
    let schema = dataset.schema().clone();

    let handle = Server::bind(ServiceConfig::default())
        .unwrap()
        .spawn()
        .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.ping().unwrap();

    // One shard, pinned: the server perturbs with the shard-0 RNG, so
    // the whole pipeline is reproducible offline record-for-record.
    let session = client.create_session(&census_spec(1)).unwrap();
    for batch in dataset.records().chunks(2_000) {
        client
            .submit_batch_to_shard(session, 0, batch, false)
            .unwrap();
    }
    let stats = client.stats(session).unwrap();
    assert_eq!(stats.total as usize, N_RECORDS);

    let via_service = client
        .reconstruct(session, ReconstructionMethod::ClosedForm, false)
        .unwrap();
    assert_eq!(via_service.n as usize, N_RECORDS);

    // Offline replay: perturb the same records in the same order with
    // the same derived RNG stream — through the index-domain sampler
    // the server's ingest fast path uses — then run the offline
    // reconstructor.
    let gd = GammaDiagonal::new(&schema, GAMMA).unwrap();
    let mut rng = StdRng::seed_from_u64(shard_seed(SESSION_SEED, 0));
    let mut acc = CountAccumulator::new(schema.clone());
    for record in dataset.records() {
        let u = schema.encode(record).unwrap();
        acc.observe_index(gd.perturb_index(u, &mut rng));
    }
    let offline = GammaDiagonalReconstructor::new(&gd).reconstruct(acc.counts());

    assert_eq!(via_service.estimates.len(), offline.len());
    for (s, o) in via_service.estimates.iter().zip(&offline) {
        assert!(
            (s - o).abs() < 1e-9 * (1.0 + o.abs()),
            "service {s} vs offline {o}"
        );
    }

    client.close_session(session).unwrap();

    // Accuracy sanity on a *well-conditioned* domain: at n = 2000 the
    // full-joint estimate is dominated by sampling noise amplified by
    // 1/a ≈ 112 (the paper's conditioning story — its experiments
    // reconstruct itemset supports, not the joint). On a 12-cell domain
    // the same pipeline must track the true distribution closely:
    // sigma per cell ≈ sqrt(q(1-q)/N)/a ≈ 0.003 at gamma 19, N = 100k.
    let small_spec = SessionSpec {
        schema: vec![("a".into(), 4), ("b".into(), 3)],
        mechanism: Mechanism::Deterministic { gamma: GAMMA },
        shards: Some(2),
        seed: Some(5),
    };
    let small = client.create_session(&small_spec).unwrap();
    let records: Vec<Vec<u32>> = (0..N_RECORDS)
        .map(|i| {
            if i % 10 < 6 {
                vec![1, 2]
            } else {
                vec![(i % 4) as u32, (i % 3) as u32]
            }
        })
        .collect();
    for batch in records.chunks(5_000) {
        client.submit_batch(small, batch, false).unwrap();
    }
    let rec = client
        .reconstruct(small, ReconstructionMethod::ClosedForm, true)
        .unwrap();
    let small_schema = frapp_core::Schema::new(vec![("a", 4), ("b", 3)]).unwrap();
    let truth = Dataset::new(small_schema, records).unwrap().count_vector();
    let n = N_RECORDS as f64;
    let tv: f64 = rec
        .estimates
        .iter()
        .zip(&truth)
        .map(|(e, t)| (e / n - t / n).abs())
        .sum::<f64>()
        / 2.0;
    assert!(tv < 0.05, "total-variation distance {tv}");

    handle.shutdown().unwrap();
}

#[test]
fn loopback_pre_perturbed_multi_shard_equals_offline_exactly() {
    // The paper's real trust model: clients perturb, the server only
    // counts. Then shard assignment is irrelevant and the service must
    // equal the offline path exactly, even with concurrent clients.
    let dataset = census_workload();
    let schema = dataset.schema().clone();
    let gd = GammaDiagonal::new(&schema, GAMMA).unwrap();
    let mut rng = StdRng::seed_from_u64(99);
    let perturbed: Vec<Vec<u32>> = dataset
        .records()
        .iter()
        .map(|r| gd.perturb_record(r, &mut rng).unwrap())
        .collect();

    let handle = Server::bind(ServiceConfig::default())
        .unwrap()
        .spawn()
        .unwrap();
    let mut control = Client::connect(handle.addr()).unwrap();
    let session = control.create_session(&census_spec(4)).unwrap();

    // Four concurrent client connections, round-robin shard placement.
    let addr = handle.addr();
    std::thread::scope(|scope| {
        for chunk in perturbed.chunks(perturbed.len().div_ceil(4)) {
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for batch in chunk.chunks(1_000) {
                    client.submit_batch(session, batch, true).unwrap();
                }
            });
        }
    });

    let via_service = control
        .reconstruct(session, ReconstructionMethod::ClosedForm, false)
        .unwrap();

    let counts = Dataset::from_trusted(schema, perturbed).count_vector();
    let offline = GammaDiagonalReconstructor::new(&gd).reconstruct(&counts);
    for (s, o) in via_service.estimates.iter().zip(&offline) {
        assert!((s - o).abs() < 1e-9 * (1.0 + o.abs()));
    }

    // The cached-LU path agrees with the closed form over the wire too
    // (2000-cell domain: first query factors, second hits the cache).
    let lu1 = control
        .reconstruct(session, ReconstructionMethod::CachedLu, false)
        .unwrap();
    assert!(!lu1.lu_cache_hit);
    let lu2 = control
        .reconstruct(session, ReconstructionMethod::CachedLu, false)
        .unwrap();
    assert!(lu2.lu_cache_hit);
    for (a, b) in lu2.estimates.iter().zip(&via_service.estimates) {
        assert!((a - b).abs() < 1e-6 * (1.0 + b.abs()));
    }

    handle.shutdown().unwrap();
}
