//! The federated collection tier: consistent-hash routing, inter-node
//! replication links and conflict-free merge of per-owner partitions.
//!
//! # Model
//!
//! A federation is a static list of `frapp-serve` nodes, each started
//! with the identical `--peers` list. Placement is pure — every node
//! derives the same [`frapp_fed::Topology`] from the same list, so
//! there is no membership protocol and no coordination traffic:
//!
//! * **Creates replicate everywhere.** The coordinator allocates a
//!   cluster-unique id from its residue class (node `k` of `n` only
//!   assigns ids `≡ k mod n`), creates locally, and replays the create
//!   (with the id, seed and shard count made explicit) to every peer.
//!   Any node can therefore coordinate any session's later requests
//!   from its local registry alone.
//! * **Ingest partitions across the owners.** A session's `replication`
//!   owner nodes are the first distinct peers clockwise from its hash
//!   point on the ring. The coordinator stamps each batch with a
//!   per-session sequence number and routes it to
//!   `owners[seq % replication]`; non-owner copies of the session stay
//!   empty. Forwarded batches carry `origin` (the coordinator's node
//!   index) and `seq`, and the receiving shard claims the pair under
//!   the same lock as the ingest — retries after a dropped link or a
//!   peer restart can never double-count.
//! * **Queries fan out and merge.** `reconstruct`/`stats` barrier the
//!   replication links (so every acknowledged record is visible), pull
//!   each owner's local partition (`sync_session`), fold them with
//!   [`frapp_fed::merge_partitions`] — a commutative, bitwise
//!   order-independent merge, because the partitions are disjoint
//!   integer tallies — and solve once locally on the cached-LU path.
//!
//! # Anti-entropy
//!
//! Each peer link is a background forwarder thread owning one
//! [`Client`]. Deferred batches pipeline through it with no round
//! trip; a *barrier* flushes the link and confirms the peer's
//! watermark. When a link drops (peer crash/restart), the forwarder
//! reconnects, replays its session creates (`already exists` is fine),
//! asks the peer for its per-shard replication watermarks
//! (`repl_status`) and resends exactly the batches past them — the
//! push-based anti-entropy that, combined with the receiver-side
//! claim, turns at-least-once delivery into exactly-once counting.
//! The forwarder keeps each session's forwarded-batch history in
//! memory for this purpose, truncated below the peer's *durable*
//! (persisted) watermark: `repl_status` reports both the live marks
//! and the marks last captured by a successful snapshot or delta
//! append, and batches at or below the durable mark can never be
//! needed again — a peer restart recovers them from its own disk.
//! History above the durable mark is retained so a crash between
//! persists stays replayable; link memory is therefore bounded by the
//! peer's persistence cadence, not by total ingest volume.

use crate::client::Client;
use crate::config::ServiceConfig;
use crate::error::{Result, ServiceError};
use crate::fault::{FaultAction, FaultPlan, FaultSite};
use crate::json::{object, Value};
use crate::metrics::{PeerHealth, PeerReplCounters, PeerReplReport};
use crate::protocol::{PartialCoverage, RecordBatch};
use crate::session::{
    Created, Mechanism, Reconstruction, ReconstructionMethod, SessionRegistry, SessionStats,
};
use frapp_core::{CountAccumulator, Schema};
use frapp_fed::{merge_partitions, Topology};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Connect attempts per reconnect cycle (with exponential backoff
/// between them) before a link operation reports the peer down.
const CONNECT_ATTEMPTS: u32 = 6;
/// Barrier attempts (each may reconnect + resync) before giving up.
const BARRIER_ATTEMPTS: u32 = 4;
/// Per-session replay-history size (in batches) that triggers a
/// durable-watermark fetch and truncation on the link worker. Keeps
/// link memory proportional to the peer's persistence cadence instead
/// of total ingest; only multiples of the threshold pay the round
/// trip.
const HISTORY_TRUNCATE_THRESHOLD: usize = 64;

/// How one submit was routed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Routed {
    /// Applied to this node's own partition, on `shard`.
    Local {
        /// The shard the batch landed on (`seq % num_shards`).
        shard: usize,
    },
    /// Forwarded to the owner node `peer`.
    Forwarded {
        /// The owner's index in the peer list.
        peer: usize,
    },
}

/// The per-process federation state: topology, one replication link
/// per peer, per-session forward sequence counters and per-peer
/// replication metrics.
pub struct FedState {
    topology: Topology,
    /// Indexed by peer id; `None` at this node's own slot.
    links: Vec<Option<PeerLink>>,
    counters: Vec<Arc<PeerReplCounters>>,
    /// `session -> last assigned forward seq`. Lazily recovered from
    /// the owners' watermarks after a coordinator restart, so a
    /// restarted coordinator can never reuse a sequence number (which
    /// the owners would silently dedup away).
    seqs: Mutex<HashMap<u64, u64>>,
    /// Floor for cluster-unique session id allocation.
    id_floor: AtomicU64,
}

impl std::fmt::Debug for FedState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FedState")
            .field("self_id", &self.topology.self_id())
            .field("peers", &self.topology.peers())
            .field("replication", &self.topology.replication())
            .finish()
    }
}

impl FedState {
    /// Builds the federation state from a config, or `None` when the
    /// config names no peers (a plain single-node server). The node's
    /// own index comes from `config.node_id`, falling back to locating
    /// `config.addr` in the peer list.
    pub fn from_config(config: &ServiceConfig) -> Result<Option<Arc<FedState>>> {
        if config.peers.is_empty() {
            return Ok(None);
        }
        let self_id = match config.node_id {
            Some(id) => id,
            None => config
                .peers
                .iter()
                .position(|p| p == &config.addr)
                .ok_or_else(|| {
                    ServiceError::InvalidRequest(format!(
                        "this node's address {} is not in the peer list; pass --node-id",
                        config.addr
                    ))
                })?,
        };
        let topology = Topology::new(config.peers.clone(), self_id, config.replication)
            .map_err(ServiceError::InvalidRequest)?;
        let counters: Vec<Arc<PeerReplCounters>> = (0..config.peers.len())
            .map(|_| Arc::new(PeerReplCounters::new()))
            .collect();
        let tuning = LinkTuning::from_config(config);
        let links = config
            .peers
            .iter()
            .zip(&counters)
            .enumerate()
            .map(|(node, (addr, counters))| {
                if node == self_id {
                    Ok(None)
                } else {
                    PeerLink::spawn(
                        addr.clone(),
                        self_id as u64,
                        Arc::clone(counters),
                        tuning.clone(),
                    )
                    .map(Some)
                }
            })
            .collect::<Result<Vec<Option<PeerLink>>>>()?;
        Ok(Some(Arc::new(FedState {
            topology,
            links,
            counters,
            seqs: Mutex::new(HashMap::new()),
            id_floor: AtomicU64::new(0),
        })))
    }

    /// The cluster topology this node routes with.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    fn self_id(&self) -> u64 {
        self.topology.self_id() as u64
    }

    /// The per-session forward-sequence counters, with poisoning
    /// recovered (the map stays consistent under panic unwinding — a
    /// torn update is impossible, every mutation is a single insert or
    /// increment) and the acquisition registered with the debug
    /// lock-order checker.
    fn lock_seqs(&self) -> crate::order::Tracked<std::sync::MutexGuard<'_, HashMap<u64, u64>>> {
        crate::order::track(
            crate::order::RANK_FED_SEQS,
            "fed::seqs",
            self.seqs
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        )
    }

    /// The replication link to `peer`, or an in-band error for an
    /// out-of-range peer or this node's own slot — both indicate a
    /// routing bug upstream, which must not unwind a wire thread.
    fn link(&self, peer: usize) -> Result<&PeerLink> {
        self.links
            .get(peer)
            .and_then(Option::as_ref)
            .ok_or_else(|| ServiceError::Protocol(format!("no replication link to peer {peer}")))
    }

    /// Per-peer replication reports (self excluded), for the
    /// `federation` section of the transport metrics response.
    pub fn peer_reports(&self) -> Vec<PeerReplReport> {
        self.topology
            .peers()
            .iter()
            .zip(&self.counters)
            .enumerate()
            .filter(|(node, _)| *node != self.topology.self_id())
            .map(|(node, (addr, counters))| counters.report(node, addr))
            .collect()
    }

    /// Creates a session cluster-wide: allocates an id from this
    /// node's residue class, creates locally (deferred eviction, like
    /// any other create) and replays the create — id, seed and shard
    /// count made explicit so every node builds the identical session
    /// — to every peer link in FIFO order ahead of any forwards.
    #[allow(clippy::too_many_arguments)] // mirrors the create_session wire fields
    pub fn create_session(
        &self,
        registry: &SessionRegistry,
        raw_schema: &[(String, u32)],
        schema: Schema,
        mechanism: Mechanism,
        shards: usize,
        seed: u64,
        max_dense_domain: usize,
    ) -> Result<Created> {
        let mut floor = self.id_floor.load(Ordering::Relaxed);
        let created = loop {
            let id = self.topology.next_local_id(floor);
            self.id_floor.fetch_max(id, Ordering::Relaxed);
            match registry.create_deferred_with_id(
                id,
                schema.clone(),
                mechanism,
                shards,
                seed,
                max_dense_domain,
            ) {
                Ok(created) => break created,
                // The id is occupied (a recovered pre-restart session):
                // walk the residue class past it.
                Err(ServiceError::InvalidRequest(msg)) if msg.contains("already exists") => {
                    floor = id;
                }
                Err(e) => return Err(e),
            }
        };
        let id = created.session.id();
        let line = create_line(id, raw_schema, mechanism, shards, seed);
        // Kick every link, then wait for each to confirm it attempted
        // delivery: once the create is acknowledged to the client, the
        // session is visible through every *live* peer (read-your-
        // writes across nodes). A down peer confirms vacuously — its
        // copy arrives with the resync replay.
        let confirms: Vec<_> = self
            .links
            .iter()
            .flatten()
            .map(|link| link.register(id, line.clone()))
            .collect();
        for confirm in confirms {
            let _ = recv_link(confirm);
        }
        // Freshly created: the next forward seq starts at 1.
        self.lock_seqs().insert(id, 0);
        Ok(created)
    }

    /// Assigns the next forward sequence number for `session`. On the
    /// first submit after a coordinator restart the counter is
    /// recovered as the maximum watermark any owner has recorded for
    /// this node — reusing a sequence number would make the owners
    /// silently drop brand-new batches as duplicates.
    fn next_seq(&self, registry: &SessionRegistry, session: u64) -> Result<u64> {
        // Fast path: the counter is live — bump it under the lock.
        if let Some(seq) = self.bump_seq(session) {
            return Ok(seq);
        }
        // Recovery path (first submit after a coordinator restart).
        // The owner watermark fetch is a peer round trip, so it MUST
        // run with the counter lock released — holding `seqs` across
        // the network would stall every other session's submits (and
        // deadlock outright if the peer's answer routes back here).
        let mut max_mark = 0u64;
        for &owner in &self.topology.owners(session) {
            let marks = if owner == self.topology.self_id() {
                registry.get(session)?.repl_status(self.self_id())
            } else {
                self.fetch_repl_status(owner, session)?
            };
            max_mark = max_mark.max(marks.into_iter().max().unwrap_or(0));
        }
        // Re-acquire and merge: a concurrent submit may have recovered
        // the counter while the lock was released. Never move the
        // counter backwards — reused sequence numbers are silently
        // deduped by the owners.
        let mut seqs = self.lock_seqs();
        let last = seqs.entry(session).or_insert(max_mark);
        *last = (*last).max(max_mark) + 1;
        Ok(*last)
    }

    /// Increments and returns the live forward-seq counter for
    /// `session`, or `None` when the counter needs recovery first.
    fn bump_seq(&self, session: u64) -> Option<u64> {
        let mut seqs = self.lock_seqs();
        seqs.get_mut(&session).map(|last| {
            *last += 1;
            *last
        })
    }

    fn fetch_repl_status(&self, peer: usize, session: u64) -> Result<Vec<u64>> {
        let line = format!(
            r#"{{"op":"repl_status","session":{session},"origin":{}}}"#,
            self.self_id()
        );
        match self.link(peer)?.sync(&line) {
            Ok(v) => parse_marks(&v),
            // The peer holds nothing for this session (create not yet
            // applied there): factually, every mark is zero.
            Err(ServiceError::Remote { message, .. }) if message.contains("unknown session") => {
                Ok(Vec::new())
            }
            Err(e) => Err(e),
        }
    }

    /// Routes one client submit: stamps it with the next per-session
    /// sequence number and sends it to `owners[seq % replication]` —
    /// applied locally when that owner is this node, forwarded over
    /// the peer link otherwise (pipelined with no round trip when
    /// `deferred`). Returns the accepted record count and the route.
    ///
    /// Unlike a single-node submit, the whole batch is validated
    /// before routing and rejected atomically: a partial-batch prefix
    /// landing on a *remote* owner would leave the client's retry
    /// contract spanning two machines.
    pub fn submit(
        &self,
        registry: &SessionRegistry,
        session: u64,
        records: &RecordBatch,
        pre_perturbed: bool,
        deferred: bool,
    ) -> Result<(u64, Routed)> {
        let sess = registry.get(session)?;
        for record in records.iter() {
            sess.schema().validate_record(record)?;
        }
        let seq = self.next_seq(registry, session)?;
        let owners = self.topology.owners(session);
        let owner = *owners
            .get((seq % owners.len().max(1) as u64) as usize)
            .ok_or_else(|| ServiceError::Protocol("session has no replication owners".into()))?;
        let accepted = records.len() as u64;
        if owner == self.topology.self_id() {
            // Locally applied batches go through the same claim path
            // as forwarded ones, so this node's own partition dedups
            // identically across restarts.
            sess.submit_slices_repl(records.iter(), pre_perturbed, self.self_id(), seq)?;
            let shard = (seq % sess.num_shards() as u64) as usize;
            return Ok((accepted, Routed::Local { shard }));
        }
        let line = forwarded_line(
            session,
            records,
            pre_perturbed,
            deferred,
            self.self_id(),
            seq,
        );
        let link = self.link(owner)?;
        if deferred {
            link.forward(session, seq, accepted, line);
        } else {
            let counters = self.counters.get(owner).ok_or_else(|| {
                ServiceError::Protocol(format!("no replication counters for peer {owner}"))
            })?;
            counters.record_forward(accepted);
            link.sync(&line)?;
            counters.record_acked(accepted);
        }
        Ok((accepted, Routed::Forwarded { peer: owner }))
    }

    /// Barriers every replication link: all queued deferred forwards
    /// are flushed and acknowledged (reconnecting and resending past
    /// the peers' watermarks as needed) before this returns. The
    /// first unreachable peer aborts with its error.
    pub fn barrier_all(&self) -> Result<()> {
        // Kick every link first so they drain concurrently, then
        // collect — a barrier's cost is the slowest link, not the sum.
        let waits: Vec<_> = self
            .links
            .iter()
            .flatten()
            .map(|link| link.barrier_async())
            .collect();
        for wait in waits {
            recv_link(wait)??;
        }
        Ok(())
    }

    /// A federated reconstruction: barrier the links, pull every
    /// owner's partition, merge (bitwise order-independent) and solve
    /// once locally — the cached-LU path if the coordinator has warmed
    /// it, exactly as on a single node.
    ///
    /// With `allow_partial`, owners that cannot be reached (transport
    /// failure or an open circuit breaker) are *skipped* instead of
    /// failing the query: the reachable partitions merge into an
    /// estimate and the returned [`PartialCoverage`] says exactly
    /// which owners are missing. In-band errors a peer computed still
    /// propagate, and a query with *zero* reachable owners still
    /// fails — an estimate from nothing would be a lie. `None`
    /// coverage means every owner answered (the result is exact).
    pub fn reconstruct(
        &self,
        registry: &SessionRegistry,
        session: u64,
        method: ReconstructionMethod,
        clamp: bool,
        allow_partial: bool,
    ) -> Result<(Reconstruction, Option<PartialCoverage>)> {
        let sess = registry.get(session)?;
        let owners = self.topology.owners(session);
        let unreachable = self.barrier_for_read(&owners, allow_partial)?;
        let mut partitions = Vec::new();
        let mut missing: Vec<(usize, String)> = Vec::new();
        for &owner in &owners {
            if owner == self.topology.self_id() {
                partitions.push(sess.snapshot());
            } else if unreachable.contains(&owner) {
                missing.push((owner, self.peer_addr(owner)));
            } else {
                match self.fetch_partition(owner, session, sess.schema()) {
                    Ok(partition) => partitions.push(partition),
                    Err(e) if allow_partial && is_unreachable(&e) => {
                        missing.push((owner, self.peer_addr(owner)));
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        if partitions.is_empty() {
            return Err(all_owners_down());
        }
        let merged = merge_partitions(sess.schema(), partitions)?;
        let rec = sess.reconstruct_counts(merged, method, clamp)?;
        Ok((rec, coverage(owners.len(), missing)))
    }

    /// Federated ingest statistics: the cluster-wide record total,
    /// with `per_shard` reporting each *owner's* partition total in
    /// ring order (shard-level detail stays a per-node concern). The
    /// fan-out uses `sync_session` — strictly local on the receiving
    /// node — so federated owners never fan out in turn.
    ///
    /// `allow_partial` behaves exactly as on
    /// [`FedState::reconstruct`]: unreachable owners are skipped (and
    /// omitted from `per_shard`) rather than failing the query, with
    /// the returned [`PartialCoverage`] naming them.
    pub fn stats(
        &self,
        registry: &SessionRegistry,
        session: u64,
        allow_partial: bool,
    ) -> Result<(SessionStats, Option<PartialCoverage>)> {
        let sess = registry.get(session)?;
        let owners = self.topology.owners(session);
        let unreachable = self.barrier_for_read(&owners, allow_partial)?;
        let mut per_owner = Vec::new();
        let mut missing: Vec<(usize, String)> = Vec::new();
        for &owner in &owners {
            if owner == self.topology.self_id() {
                per_owner.push(sess.stats().total);
                continue;
            }
            if unreachable.contains(&owner) {
                missing.push((owner, self.peer_addr(owner)));
                continue;
            }
            let line = format!(r#"{{"op":"sync_session","session":{session}}}"#);
            match self.link(owner)?.sync(&line) {
                Ok(v) => {
                    let total = v.get("total").and_then(Value::as_u64).ok_or_else(|| {
                        ServiceError::Protocol("sync_session response missing `total`".into())
                    })?;
                    per_owner.push(total);
                }
                Err(e) if allow_partial && is_unreachable(&e) => {
                    missing.push((owner, self.peer_addr(owner)));
                }
                Err(e) => return Err(e),
            }
        }
        if per_owner.is_empty() {
            return Err(all_owners_down());
        }
        Ok((
            SessionStats {
                total: per_owner.iter().sum(),
                per_shard: per_owner,
            },
            coverage(owners.len(), missing),
        ))
    }

    /// The read-side barrier: exact reads flush *every* link (the
    /// historical semantics — any acknowledged forward anywhere must
    /// be visible); partial reads barrier only the owner links and
    /// tolerate unreachable peers, returning the owner ids whose
    /// barrier failed at the transport level so the fan-out can skip
    /// them. An in-band barrier failure (a deferred batch the peer
    /// refused) still aborts even a partial read — that partition is
    /// wrong-by-contract, not missing.
    fn barrier_for_read(&self, owners: &[usize], allow_partial: bool) -> Result<Vec<usize>> {
        if !allow_partial {
            self.barrier_all()?;
            return Ok(Vec::new());
        }
        let mut waits = Vec::new();
        for &owner in owners {
            if owner == self.topology.self_id() {
                continue;
            }
            waits.push((owner, self.link(owner)?.barrier_async()));
        }
        let mut unreachable = Vec::new();
        for (owner, wait) in waits {
            match recv_link(wait).and_then(|r| r) {
                Ok(()) => {}
                Err(e) if is_unreachable(&e) => unreachable.push(owner),
                Err(e) => return Err(e),
            }
        }
        Ok(unreachable)
    }

    /// The wire address of peer `node` (empty for an out-of-range id,
    /// which cannot happen for ids the topology produced).
    fn peer_addr(&self, node: usize) -> String {
        self.topology.peers().get(node).cloned().unwrap_or_default()
    }

    fn fetch_partition(
        &self,
        peer: usize,
        session: u64,
        schema: &Schema,
    ) -> Result<CountAccumulator> {
        let line = format!(r#"{{"op":"sync_session","session":{session}}}"#);
        let v = self.link(peer)?.sync(&line)?;
        let pairs = v.get("counts").and_then(Value::as_array).ok_or_else(|| {
            ServiceError::Protocol("sync_session response missing `counts`".into())
        })?;
        let mut dense = vec![0.0; schema.domain_size()];
        for pair in pairs {
            let cell = pair.as_array().filter(|p| p.len() == 2).ok_or_else(|| {
                ServiceError::Protocol("sync_session counts must be [index, count] pairs".into())
            })?;
            let idx = cell
                .first()
                .and_then(Value::as_usize)
                .filter(|&i| i < dense.len())
                .ok_or_else(|| {
                    ServiceError::Protocol("sync_session count index out of domain".into())
                })?;
            let count = cell.get(1).and_then(Value::as_f64).ok_or_else(|| {
                ServiceError::Protocol("sync_session counts must be numbers".into())
            })?;
            if let Some(slot) = dense.get_mut(idx) {
                *slot = count;
            }
        }
        CountAccumulator::from_counts(schema.clone(), dense).map_err(ServiceError::from)
    }

    /// Fans a close out to every peer (as `local: true`, so nobody
    /// re-federates it) and forgets the session's replication state.
    /// Best-effort: a peer that is down keeps its empty copy until an
    /// operator closes it directly. Returns whether any peer reported
    /// the session closed.
    pub fn close_fanout(&self, session: u64) -> bool {
        self.lock_seqs().remove(&session);
        let line = format!(r#"{{"op":"close_session","session":{session},"local":true}}"#);
        let mut any = false;
        for (link, counters) in self.links.iter().zip(&self.counters) {
            let Some(link) = link else { continue };
            link.forget(session);
            if let Ok(v) = link.sync(&line) {
                any |= v.get("closed").and_then(Value::as_bool).unwrap_or(false);
            } else {
                counters.record_peer_down();
            }
        }
        any
    }

    /// The `cluster_status` response payload: topology, replication
    /// factor and per-peer liveness (one live probe per peer).
    pub fn cluster_status_pairs(&self) -> Vec<(&'static str, Value)> {
        let self_id = self.topology.self_id();
        let peers: Vec<Value> = self
            .topology
            .peers()
            .iter()
            .enumerate()
            .map(|(node, addr)| {
                let up = node == self_id
                    || self
                        .links
                        .get(node)
                        .and_then(Option::as_ref)
                        .is_some_and(|link| link.probe());
                // Health is read *after* the probe so the freshly
                // observed outcome (the probe drives the breaker) is
                // what the status reports.
                let health = if node == self_id {
                    PeerHealth::Up
                } else {
                    self.counters
                        .get(node)
                        .map(|c| c.health())
                        .unwrap_or_default()
                };
                object(vec![
                    ("node", node.into()),
                    ("addr", addr.as_str().into()),
                    ("self", (node == self_id).into()),
                    ("up", up.into()),
                    ("health", health.as_str().into()),
                ])
            })
            .collect();
        vec![
            ("federated", true.into()),
            ("self", self_id.into()),
            ("replication", self.topology.replication().into()),
            ("peers", Value::Array(peers)),
        ]
    }
}

/// Builds the replicated create line for a session, with every
/// server-side default resolved so all nodes build identical sessions.
fn create_line(
    id: u64,
    raw_schema: &[(String, u32)],
    mechanism: Mechanism,
    shards: usize,
    seed: u64,
) -> String {
    let schema = Value::Array(
        raw_schema
            .iter()
            .map(|(name, card)| Value::Array(vec![name.as_str().into(), (*card).into()]))
            .collect(),
    );
    let mut pairs = vec![("op", Value::from("create_session")), ("schema", schema)];
    match mechanism {
        Mechanism::Deterministic { gamma } => {
            pairs.push(("mechanism", "det".into()));
            pairs.push(("gamma", gamma.into()));
        }
        Mechanism::Randomized {
            gamma,
            alpha_fraction,
        } => {
            pairs.push(("mechanism", "ran".into()));
            pairs.push(("gamma", gamma.into()));
            pairs.push(("alpha_fraction", alpha_fraction.into()));
        }
    }
    pairs.push(("shards", shards.into()));
    pairs.push(("seed", seed.into()));
    pairs.push(("session", id.into()));
    object(pairs).to_json()
}

/// Builds a forwarded submit line in the canonical field order the
/// receiving peer's zero-allocation fast-path decoder accepts.
fn forwarded_line(
    session: u64,
    records: &RecordBatch,
    pre_perturbed: bool,
    deferred: bool,
    origin: u64,
    seq: u64,
) -> String {
    use std::fmt::Write as _;
    let mut line = String::with_capacity(96 + records.len() * 12);
    let _ = write!(
        line,
        "{{\"op\":\"submit\",\"session\":{session},\"records\":["
    );
    for (i, record) in records.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        line.push('[');
        for (j, &v) in record.iter().enumerate() {
            if j > 0 {
                line.push(',');
            }
            let _ = write!(line, "{v}");
        }
        line.push(']');
    }
    let _ = write!(line, "],\"pre_perturbed\":{pre_perturbed}");
    if deferred {
        line.push_str(",\"ack\":\"deferred\"");
    }
    let _ = write!(line, ",\"origin\":{origin},\"seq\":{seq}}}");
    line
}

fn parse_marks(v: &Value) -> Result<Vec<u64>> {
    v.get("marks")
        .and_then(Value::as_array)
        .ok_or_else(|| ServiceError::Protocol("repl_status response missing `marks`".into()))?
        .iter()
        .map(|m| {
            m.as_u64()
                .ok_or_else(|| ServiceError::Protocol("watermarks must be integers".into()))
        })
        .collect()
}

/// Per-shard watermarks a peer reports for one origin: what it has
/// applied (in memory) and what it has durably persisted.
struct PeerMarks {
    /// Highest applied seq per shard; resync resends above these.
    applied: Vec<u64>,
    /// Highest persisted seq per shard; replay history at or below
    /// these can never be needed again, even across a peer restart.
    /// Empty when the peer runs without persistence.
    durable: Vec<u64>,
}

fn parse_peer_marks(v: &Value) -> Result<PeerMarks> {
    let applied = parse_marks(v)?;
    // `durable` is optional on the wire: older peers and peers running
    // without a data directory omit it, which disables truncation.
    let durable = match v.get("durable").and_then(Value::as_array) {
        None => Vec::new(),
        Some(cells) => cells
            .iter()
            .map(|m| {
                m.as_u64().ok_or_else(|| {
                    ServiceError::Protocol("durable watermarks must be integers".into())
                })
            })
            .collect::<Result<Vec<u64>>>()?,
    };
    Ok(PeerMarks { applied, durable })
}

/// Whether per-shard watermarks cover `seq`: the batch lands on shard
/// `seq % marks.len()` and is covered at or below that shard's mark.
/// Empty marks cover nothing.
fn mark_covers(marks: &[u64], seq: u64) -> bool {
    marks
        .get((seq % marks.len().max(1) as u64) as usize)
        .is_some_and(|&mark| seq <= mark)
}

fn peer_down(addr: &str) -> ServiceError {
    ServiceError::Remote {
        message: format!("federation peer {addr} is unreachable"),
        accepted: None,
    }
}

fn all_owners_down() -> ServiceError {
    ServiceError::Remote {
        message: "every replication owner is unreachable; no partition to estimate from".into(),
        accepted: None,
    }
}

/// Whether an error means the peer could not be *reached* (transport
/// failure, dead link thread, open breaker) as opposed to an in-band
/// refusal it computed — the distinction that licenses `allow_partial`
/// reads to skip an owner.
fn is_unreachable(e: &ServiceError) -> bool {
    match e {
        ServiceError::Io(_) | ServiceError::ConnectionClosed => true,
        ServiceError::Remote { message, .. } => {
            message.contains("is unreachable") || message.contains("link thread is gone")
        }
        _ => false,
    }
}

/// `Some(coverage)` when any owner went missing, `None` for an exact
/// (every-owner) answer.
fn coverage(owners_total: usize, missing: Vec<(usize, String)>) -> Option<PartialCoverage> {
    if missing.is_empty() {
        return None;
    }
    Some(PartialCoverage {
        owners_total,
        owners_reachable: owners_total - missing.len(),
        missing,
    })
}

/// FNV-1a, for deriving a per-link deterministic jitter seed from the
/// peer address without OS entropy.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Maps a dead link thread (channel closed) to a peer-down error.
fn recv_link<T>(rx: mpsc::Receiver<T>) -> Result<T> {
    rx.recv().map_err(|_| ServiceError::Remote {
        message: "replication link thread is gone".into(),
        accepted: None,
    })
}

enum LinkCmd {
    /// Remember (and replay on every reconnect) a session's create
    /// line, then try to deliver it now, signalling `resp` once the
    /// attempt completes so the coordinator can promise read-your-
    /// writes through live peers. An unreachable peer signals
    /// vacuously and receives the create during resync.
    Register {
        session: u64,
        line: String,
        resp: mpsc::Sender<()>,
    },
    /// Pipeline one deferred forwarded batch (no round trip).
    Forward {
        session: u64,
        seq: u64,
        records: u64,
        line: String,
    },
    /// One synchronous request/response over the link.
    Sync {
        line: String,
        resp: mpsc::Sender<Result<Value>>,
    },
    /// Flush and confirm every queued forward.
    Barrier {
        resp: mpsc::Sender<Result<()>>,
    },
    /// Single connect-and-ping liveness probe (no retries).
    Probe {
        resp: mpsc::Sender<bool>,
    },
    /// Drop a closed session's replay state.
    Forget {
        session: u64,
    },
    Close,
}

/// Per-link tuning shared by every peer link: socket timeouts, the
/// circuit-breaker knobs and the fault-injection plan.
#[derive(Clone)]
struct LinkTuning {
    connect_timeout: Duration,
    read_timeout: Duration,
    /// `None` = unbounded (config `write_timeout_ms = 0`).
    write_timeout: Option<Duration>,
    breaker_threshold: u32,
    breaker_cooldown: Duration,
    fault: FaultPlan,
}

impl LinkTuning {
    fn from_config(config: &ServiceConfig) -> LinkTuning {
        LinkTuning {
            connect_timeout: Duration::from_millis(config.connect_timeout_ms.max(1)),
            read_timeout: Duration::from_millis(config.read_timeout_ms.max(1)),
            write_timeout: (config.write_timeout_ms > 0)
                .then(|| Duration::from_millis(config.write_timeout_ms)),
            breaker_threshold: config.breaker_threshold.max(1),
            breaker_cooldown: Duration::from_millis(config.breaker_cooldown_ms.max(1)),
            fault: config.fault_plan.clone(),
        }
    }
}

/// A replication link to one peer: a command channel into a background
/// forwarder thread that owns the socket, the per-session replay
/// history and the reconnect/resync logic.
struct PeerLink {
    tx: mpsc::Sender<LinkCmd>,
}

impl PeerLink {
    fn spawn(
        addr: String,
        origin: u64,
        counters: Arc<PeerReplCounters>,
        tuning: LinkTuning,
    ) -> Result<PeerLink> {
        let (tx, rx) = mpsc::channel();
        // Deterministic jitter stream, distinct per link (address ⊕
        // origin ⊕ fault seed) so simultaneous reconnect storms across
        // links de-synchronize without OS entropy.
        let rng = (fnv1a(addr.as_bytes()) ^ origin.rotate_left(32) ^ tuning.fault.seed()).max(1);
        let worker = LinkWorker {
            addr,
            origin,
            client: None,
            creates: HashMap::new(),
            history: HashMap::new(),
            outstanding: 0,
            queued_while_down: 0,
            counters,
            tuning,
            consecutive_failures: 0,
            breaker_opened_at: None,
            rng,
        };
        std::thread::Builder::new()
            .name("frapp-fed-link".into())
            .spawn(move || worker.run(rx))
            .map_err(|e| {
                ServiceError::Protocol(format!("cannot spawn replication link thread: {e}"))
            })?;
        Ok(PeerLink { tx })
    }

    fn register(&self, session: u64, line: String) -> mpsc::Receiver<()> {
        let (resp, rx) = mpsc::channel();
        let _ = self.tx.send(LinkCmd::Register {
            session,
            line,
            resp,
        });
        rx
    }

    fn forward(&self, session: u64, seq: u64, records: u64, line: String) {
        let _ = self.tx.send(LinkCmd::Forward {
            session,
            seq,
            records,
            line,
        });
    }

    fn forget(&self, session: u64) {
        let _ = self.tx.send(LinkCmd::Forget { session });
    }

    fn sync(&self, line: &str) -> Result<Value> {
        let (resp, rx) = mpsc::channel();
        self.tx
            .send(LinkCmd::Sync {
                line: line.to_owned(),
                resp,
            })
            .map_err(|_| ServiceError::ConnectionClosed)?;
        recv_link(rx)?
    }

    fn barrier_async(&self) -> mpsc::Receiver<Result<()>> {
        let (resp, rx) = mpsc::channel();
        let _ = self.tx.send(LinkCmd::Barrier { resp });
        rx
    }

    fn probe(&self) -> bool {
        let (resp, rx) = mpsc::channel();
        if self.tx.send(LinkCmd::Probe { resp }).is_err() {
            return false;
        }
        rx.recv().unwrap_or(false)
    }
}

impl Drop for PeerLink {
    fn drop(&mut self) {
        // Fire-and-forget: the worker exits on Close (or when the
        // channel drops). Not joined — a worker mid-backoff would
        // stall shutdown for no benefit.
        let _ = self.tx.send(LinkCmd::Close);
    }
}

struct LinkWorker {
    addr: String,
    /// The coordinator's node id — the `origin` every forwarded line
    /// carries, and the key for the peer's `repl_status` watermarks.
    origin: u64,
    /// Invariant: `Some` implies connected *and* resynced (creates
    /// replayed, watermark gaps resent).
    client: Option<Client>,
    /// Session create lines, replayed first on every reconnect.
    creates: HashMap<u64, String>,
    /// Forwarded-batch history per session: `(seq, records, line)` in
    /// seq order. The resync source of truth.
    history: HashMap<u64, Vec<(u64, u64, String)>>,
    /// Records pipelined since the last confirmed flush.
    outstanding: u64,
    /// Records queued (or send-failed) while disconnected, awaiting
    /// resync delivery. Together with `outstanding == 0` and a live
    /// client this lets a barrier short-circuit: a node that never
    /// forwards anything must not pay reconnect retries toward a down
    /// peer on every flush.
    queued_while_down: u64,
    counters: Arc<PeerReplCounters>,
    tuning: LinkTuning,
    /// Consecutive link-level failures since the last success; drives
    /// the health state machine (`>= 1` → degraded, `>= threshold` →
    /// the breaker opens).
    consecutive_failures: u32,
    /// When the circuit breaker last opened (or re-opened after a
    /// failed half-open probe). While `elapsed < breaker_cooldown`
    /// every connect fails fast without touching the socket.
    breaker_opened_at: Option<Instant>,
    /// xorshift64 state for deterministic backoff jitter.
    rng: u64,
}

impl LinkWorker {
    fn run(mut self, rx: mpsc::Receiver<LinkCmd>) {
        loop {
            match rx.recv() {
                Err(_) => return,
                Ok(LinkCmd::Close) => return,
                Ok(LinkCmd::Forget { session }) => {
                    self.creates.remove(&session);
                    self.history.remove(&session);
                    self.publish_history_gauge();
                }
                Ok(LinkCmd::Register {
                    session,
                    line,
                    resp,
                }) => {
                    self.creates.insert(session, line.clone());
                    if self.client.is_some() {
                        // Deliver now; a failure (stale connection,
                        // peer restarted) gets one reconnect, whose
                        // resync replays the just-registered create.
                        if self.send_create(&line).is_err() {
                            self.drop_client();
                            let _ = self.ensure_connected(1);
                        }
                    } else {
                        // One quick connect (whose resync replays the
                        // just-registered create) so a healthy cluster
                        // sees creates before the coordinator acks
                        // them; a down peer catches up at the next
                        // sync/barrier.
                        let _ = self.ensure_connected(1);
                    }
                    let _ = resp.send(());
                }
                Ok(LinkCmd::Forward {
                    session,
                    seq,
                    records,
                    line,
                }) => {
                    self.counters.record_forward(records);
                    let sent = !self.peer_send_fault()
                        && match self.client.as_mut() {
                            Some(client) => client.send_raw_nowait(&line).is_ok(),
                            None => false,
                        };
                    if sent {
                        self.outstanding += records;
                    } else {
                        self.drop_client();
                        self.queued_while_down += records;
                    }
                    // Queued either way; resync resends from the
                    // peer's watermark.
                    self.history
                        .entry(session)
                        .or_default()
                        .push((seq, records, line));
                    self.maybe_truncate(session);
                    self.publish_history_gauge();
                }
                Ok(LinkCmd::Sync { line, resp }) => {
                    let result = self.sync_request(&line);
                    let _ = resp.send(result);
                }
                Ok(LinkCmd::Barrier { resp }) => {
                    let _ = resp.send(self.barrier());
                }
                Ok(LinkCmd::Probe { resp }) => {
                    let up = self.ensure_connected(1).is_ok();
                    let _ = resp.send(up);
                }
            }
        }
    }

    fn drop_client(&mut self) {
        if self.client.take().is_some() {
            self.counters.record_peer_down();
        }
    }

    /// Applies a `peer_send` fault to one pipelined forward, returning
    /// whether the send must be treated as failed. `delay` sleeps and
    /// lets the send proceed; every other action tears the link down
    /// so the batch rides the resync path — pretending a dropped batch
    /// was sent would lose it *past* the exactly-once machinery, which
    /// no real TCP failure can do.
    fn peer_send_fault(&mut self) -> bool {
        match self.tuning.fault.decide(FaultSite::PeerSend) {
            None => false,
            Some(FaultAction::Delay(ms)) => {
                std::thread::sleep(Duration::from_millis(ms));
                false
            }
            Some(_) => {
                self.drop_client();
                self.record_link_failure();
                true
            }
        }
    }

    /// One link-level failure: the first marks the peer degraded;
    /// `breaker_threshold` consecutive ones open (or re-open) the
    /// circuit breaker, after which connects fail fast until the
    /// cooldown licenses a half-open probe.
    fn record_link_failure(&mut self) {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        if self.consecutive_failures >= self.tuning.breaker_threshold {
            if !self.breaker_blocks() {
                // A fresh trip (including a re-open after a failed
                // half-open probe), not a failure piling onto an
                // already-open breaker.
                self.counters.record_breaker_trip();
            }
            self.breaker_opened_at = Some(Instant::now());
            self.counters.set_health(PeerHealth::Down);
        } else {
            self.counters.set_health(PeerHealth::Degraded);
        }
    }

    /// A link-level success closes the breaker and resets health.
    fn record_link_success(&mut self) {
        self.consecutive_failures = 0;
        self.breaker_opened_at = None;
        self.counters.set_health(PeerHealth::Up);
    }

    /// Whether the breaker currently fails connects fast: open, and
    /// the cooldown has not yet elapsed. Once it elapses the next
    /// connect *is* the half-open probe.
    fn breaker_blocks(&self) -> bool {
        self.breaker_opened_at
            .is_some_and(|at| at.elapsed() < self.tuning.breaker_cooldown)
    }

    /// Deterministic jitter: scales `delay` into `[delay/2, delay)`
    /// off this link's xorshift stream, de-synchronizing concurrent
    /// reconnect storms (the classic thundering-herd fix) while
    /// keeping every schedule reproducible from the seed.
    fn jittered(&mut self, delay: Duration) -> Duration {
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        let unit = (self.rng >> 11) as f64 / (1u64 << 53) as f64;
        delay / 2 + Duration::from_secs_f64(delay.as_secs_f64() / 2.0 * unit)
    }

    /// Connects (with up to `attempts` tries and jittered exponential
    /// backoff) and resyncs, upholding the `client.is_some() =>
    /// resynced` invariant. Fails fast while the circuit breaker is
    /// open; stops retrying the moment a failure opens it.
    fn ensure_connected(&mut self, attempts: u32) -> Result<()> {
        if self.client.is_some() {
            return Ok(());
        }
        if self.breaker_blocks() {
            return Err(peer_down(&self.addr));
        }
        let mut delay = Duration::from_millis(50);
        for attempt in 0..attempts {
            if attempt > 0 {
                let jittered = self.jittered(delay);
                std::thread::sleep(jittered);
                delay = (delay * 2).min(Duration::from_millis(500));
            }
            if self.tuning.fault.inject_io(FaultSite::PeerConnect).is_err() {
                // An injected connect failure: identical accounting to
                // a real refused connection.
                self.counters.record_peer_down();
                self.record_link_failure();
            } else {
                match Client::connect_with_all_timeouts(
                    &self.addr,
                    Some(self.tuning.connect_timeout),
                    Some(self.tuning.read_timeout),
                    self.tuning.write_timeout,
                ) {
                    Ok(client) => {
                        self.client = Some(client);
                        match self.resync() {
                            Ok(()) => {
                                self.record_link_success();
                                return Ok(());
                            }
                            Err(_) => {
                                self.drop_client();
                                self.record_link_failure();
                            }
                        }
                    }
                    Err(_) => {
                        self.counters.record_peer_down();
                        self.record_link_failure();
                    }
                }
            }
            if self.breaker_blocks() {
                // The breaker opened mid-cycle: stop hammering.
                break;
            }
        }
        Err(peer_down(&self.addr))
    }

    /// Anti-entropy after a (re)connect: replay session creates
    /// (`already exists` confirms the peer kept it), ask the peer
    /// which forwarded seqs each shard has applied, resend exactly the
    /// gap, and confirm with a flush. Leaves `outstanding` at zero on
    /// success — everything queued so far is acknowledged.
    fn resync(&mut self) -> Result<()> {
        let creates: Vec<String> = self.creates.values().cloned().collect();
        for line in creates {
            self.send_create(&line)?;
        }
        self.outstanding = 0;
        self.queued_while_down = 0;
        let sessions: Vec<u64> = self.history.keys().copied().collect();
        for session in sessions {
            let marks = self.fetch_marks(session)?;
            let batches = self.history.get(&session).cloned().unwrap_or_default();
            for (seq, records, line) in batches {
                if mark_covers(&marks.applied, seq) {
                    continue;
                }
                self.counters.record_retry();
                self.client
                    .as_mut()
                    .ok_or_else(|| peer_down(&self.addr))?
                    .send_raw_nowait(&line)?;
                self.outstanding += records;
            }
            self.truncate_history(session, &marks.durable);
        }
        self.publish_history_gauge();
        self.flush_outstanding()
    }

    /// Drops replay-history batches the peer has durably persisted.
    /// With an empty `durable` (peer has no persistence) this keeps
    /// the full history: only a durable mark survives a peer restart,
    /// so only a durable mark licenses forgetting a batch.
    fn truncate_history(&mut self, session: u64, durable: &[u64]) {
        if durable.is_empty() {
            return;
        }
        if let Some(batches) = self.history.get_mut(&session) {
            batches.retain(|&(seq, _, _)| !mark_covers(durable, seq));
        }
    }

    /// Opportunistic truncation on the forward path: once a session's
    /// replay history reaches a multiple of the threshold (and the
    /// link is up), ask the peer for its durable watermarks and drop
    /// what it has persisted. While disconnected the history *is* the
    /// pending resync payload, so nothing is fetched or dropped.
    fn maybe_truncate(&mut self, session: u64) {
        let backlog = self.history.get(&session).map_or(0, Vec::len);
        if backlog < HISTORY_TRUNCATE_THRESHOLD
            || !backlog.is_multiple_of(HISTORY_TRUNCATE_THRESHOLD)
            || self.client.is_none()
        {
            return;
        }
        match self.fetch_marks(session) {
            Ok(marks) => self.truncate_history(session, &marks.durable),
            // The fetch doubling as a health probe: a failed round
            // trip means the pipelined connection is suspect too.
            Err(_) => self.drop_client(),
        }
    }

    /// Publishes the total queued replay batches across sessions to
    /// the link's metrics gauge.
    fn publish_history_gauge(&self) {
        let total = self.history.values().map(|b| b.len() as u64).sum();
        self.counters.set_history_batches(total);
    }

    fn send_create(&mut self, line: &str) -> Result<()> {
        let client = self.client.as_mut().ok_or_else(|| peer_down(&self.addr))?;
        match client.request(line) {
            Ok(v) => {
                self.consume_watermark(&v);
                Ok(())
            }
            Err(ServiceError::Remote { message, .. }) if message.contains("already exists") => {
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    fn fetch_marks(&mut self, session: u64) -> Result<PeerMarks> {
        let status = format!(
            r#"{{"op":"repl_status","session":{session},"origin":{}}}"#,
            self.origin
        );
        let client = self.client.as_mut().ok_or_else(|| peer_down(&self.addr))?;
        match client.request(&status) {
            Ok(v) => {
                self.consume_watermark(&v);
                parse_peer_marks(&v)
            }
            // No session on the peer despite the create replay: treat
            // as nothing applied.
            Err(ServiceError::Remote { message, .. }) if message.contains("unknown session") => {
                Ok(PeerMarks {
                    applied: Vec::new(),
                    durable: Vec::new(),
                })
            }
            Err(e) => Err(e),
        }
    }

    /// Folds a response's piggybacked deferred watermark (the peer
    /// attaches it to any synchronous reply while deferred submits are
    /// pending) into the outstanding accounting.
    fn consume_watermark(&mut self, v: &Value) {
        if let Some(acked) = v.get("deferred_accepted").and_then(Value::as_u64) {
            self.counters.record_acked(acked);
            self.outstanding = self.outstanding.saturating_sub(acked);
        }
        if v.get("deferred_error").is_some() {
            // Some pipelined batch failed on the peer; ground truth
            // lives in its watermarks now. Reconnect-and-resync.
            self.drop_client();
        }
    }

    fn flush_outstanding(&mut self) -> Result<()> {
        if self.outstanding == 0 {
            return Ok(());
        }
        let client = self.client.as_mut().ok_or_else(|| peer_down(&self.addr))?;
        let v = client.request(r#"{"op":"flush"}"#)?;
        let acked = v.get("accepted").and_then(Value::as_u64).unwrap_or(0);
        self.counters.record_acked(acked);
        self.outstanding = 0;
        Ok(())
    }

    fn sync_request(&mut self, line: &str) -> Result<Value> {
        for _ in 0..2 {
            self.ensure_connected(CONNECT_ATTEMPTS)?;
            let client = self.client.as_mut().ok_or_else(|| peer_down(&self.addr))?;
            match client.request(line) {
                Ok(v) => {
                    self.consume_watermark(&v);
                    self.record_link_success();
                    return Ok(v);
                }
                // An in-band refusal: the request *was* processed;
                // retrying would re-run it for the same answer. The
                // peer is alive, so this is not a link failure.
                Err(e @ ServiceError::Remote { .. }) => return Err(e),
                // I/O failure: unknown whether it landed. Reconnect
                // and retry once — every link request is idempotent
                // (forwards dedup on (origin, seq), the rest are reads
                // or naturally idempotent creates/closes).
                Err(_) => {
                    self.drop_client();
                    self.record_link_failure();
                }
            }
        }
        Err(peer_down(&self.addr))
    }

    /// Flushes and confirms every queued forward, reconnecting and
    /// resending watermark gaps as needed.
    fn barrier(&mut self) -> Result<()> {
        // Nothing in flight and nothing queued: the barrier holds
        // vacuously. This matters cluster-wide — peers barrier their
        // own links when *they* are flushed, and a node that never
        // forwards must not pay reconnect retries toward a down peer.
        if self.outstanding == 0 && self.queued_while_down == 0 {
            return Ok(());
        }
        let mut last = None;
        for _ in 0..BARRIER_ATTEMPTS {
            let result = self
                .ensure_connected(CONNECT_ATTEMPTS)
                .and_then(|()| self.flush_outstanding());
            match result {
                Ok(()) => return Ok(()),
                Err(e) => {
                    // Whatever failed (I/O or an in-band deferred
                    // error), the peer's watermarks are the ground
                    // truth; reconnect and resync from them.
                    self.drop_client();
                    last = Some(e);
                }
            }
        }
        Err(last.unwrap_or_else(|| peer_down(&self.addr)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forwarded_lines_match_the_fast_path_grammar() {
        let batch = RecordBatch::from_rows(&[vec![0, 1], vec![2, 0]]);
        let deferred = forwarded_line(7, &batch, true, true, 2, 9);
        assert_eq!(
            deferred,
            r#"{"op":"submit","session":7,"records":[[0,1],[2,0]],"pre_perturbed":true,"ack":"deferred","origin":2,"seq":9}"#
        );
        let sync = forwarded_line(7, &batch, false, false, 0, 1);
        assert_eq!(
            sync,
            r#"{"op":"submit","session":7,"records":[[0,1],[2,0]],"pre_perturbed":false,"origin":0,"seq":1}"#
        );
        // Both shapes must decode on the receiving peer's zero-alloc
        // fast path (field order matters there).
        for line in [&deferred, &sync] {
            let req = crate::protocol::parse_submit_line_fast(line)
                .expect("forwarded line must hit the fast path");
            match req {
                crate::protocol::Request::Submit { origin, seq, .. } => {
                    assert!(origin.is_some() && seq.is_some());
                }
                other => panic!("unexpected request {other:?}"),
            }
        }
    }

    #[test]
    fn create_lines_resolve_every_default() {
        let line = create_line(
            42,
            &[("age".to_owned(), 8), ("zip".to_owned(), 4)],
            Mechanism::Deterministic { gamma: 19.0 },
            4,
            0xF00D,
        );
        let v = crate::json::parse(&line).unwrap();
        assert_eq!(v.get("session").and_then(Value::as_u64), Some(42));
        assert_eq!(v.get("shards").and_then(Value::as_u64), Some(4));
        assert_eq!(v.get("seed").and_then(Value::as_u64), Some(0xF00D));
        assert_eq!(v.get("gamma").and_then(Value::as_f64), Some(19.0));
        assert_eq!(v.get("mechanism").and_then(Value::as_str), Some("det"));
    }

    fn test_worker(
        addr: &str,
        origin: u64,
        fault_spec: &str,
        threshold: u32,
        cooldown: Duration,
    ) -> LinkWorker {
        let tuning = LinkTuning {
            connect_timeout: Duration::from_millis(10),
            read_timeout: Duration::from_millis(10),
            write_timeout: None,
            breaker_threshold: threshold,
            breaker_cooldown: cooldown,
            fault: FaultPlan::parse(fault_spec).unwrap(),
        };
        let rng = (fnv1a(addr.as_bytes()) ^ origin.rotate_left(32) ^ tuning.fault.seed()).max(1);
        LinkWorker {
            addr: addr.to_owned(),
            origin,
            client: None,
            creates: HashMap::new(),
            history: HashMap::new(),
            outstanding: 0,
            queued_while_down: 0,
            counters: Arc::new(PeerReplCounters::new()),
            tuning,
            consecutive_failures: 0,
            breaker_opened_at: None,
            rng,
        }
    }

    #[test]
    fn identical_seeds_reproduce_the_jitter_schedule_exactly() {
        // The deterministic-schedule property: a link's backoff jitter
        // is a pure function of (address, origin, fault seed), so a
        // soak run replays identically under the same seed.
        let sixty = Duration::from_secs(60);
        let base = Duration::from_millis(50);
        let schedule = |w: &mut LinkWorker| (0..64).map(|_| w.jittered(base)).collect::<Vec<_>>();

        // A seed-only spec is the *empty* plan (seed 0), so carry a
        // rule to make the seed actually bite.
        let spec9 = "seed=9,peer_send=drop:0.5";
        let spec10 = "seed=10,peer_send=drop:0.5";
        let a = schedule(&mut test_worker("10.0.0.1:7000", 2, spec9, 3, sixty));
        let b = schedule(&mut test_worker("10.0.0.1:7000", 2, spec9, 3, sixty));
        assert_eq!(
            a, b,
            "same (addr, origin, seed) must replay the same schedule"
        );

        // Every draw stays inside the jitter window [base/2, base).
        for d in &a {
            assert!(*d >= base / 2 && *d < base, "jitter {d:?} out of bounds");
        }

        // Different seed, different origin or different peer address
        // each de-synchronize the stream (the thundering-herd fix).
        assert_ne!(
            a,
            schedule(&mut test_worker("10.0.0.1:7000", 2, spec10, 3, sixty))
        );
        assert_ne!(
            a,
            schedule(&mut test_worker("10.0.0.1:7000", 3, spec9, 3, sixty))
        );
        assert_ne!(
            a,
            schedule(&mut test_worker("10.0.0.2:7000", 2, spec9, 3, sixty))
        );
    }

    #[test]
    fn breaker_state_machine_degrades_trips_cools_down_and_recovers() {
        let mut w = test_worker("10.0.0.1:7000", 0, "seed=1", 3, Duration::from_millis(40));
        assert_eq!(w.counters.health(), PeerHealth::Up);

        // One failure degrades; the breaker stays closed.
        w.record_link_failure();
        assert_eq!(w.counters.health(), PeerHealth::Degraded);
        assert!(!w.breaker_blocks());

        // The threshold-th consecutive failure trips it open.
        w.record_link_failure();
        w.record_link_failure();
        assert_eq!(w.counters.health(), PeerHealth::Down);
        assert!(w.breaker_blocks());
        assert_eq!(w.counters.report(0, "x").breaker_trips, 1);

        // Failures piling onto an already-open breaker are not fresh
        // trips.
        w.record_link_failure();
        assert_eq!(w.counters.report(0, "x").breaker_trips, 1);

        // After the cooldown the next connect is the half-open probe;
        // its failure re-opens the breaker and counts a new trip.
        std::thread::sleep(Duration::from_millis(45));
        assert!(!w.breaker_blocks());
        w.record_link_failure();
        assert!(w.breaker_blocks());
        assert_eq!(w.counters.report(0, "x").breaker_trips, 2);

        // A success closes the breaker and resets health outright.
        w.record_link_success();
        assert!(!w.breaker_blocks());
        assert_eq!(w.counters.health(), PeerHealth::Up);
        assert_eq!(w.consecutive_failures, 0);
    }

    #[test]
    fn open_breaker_fails_connects_fast_without_touching_the_socket() {
        let mut w = test_worker("10.0.0.1:7000", 0, "seed=1", 1, Duration::from_secs(60));
        w.record_link_failure();
        assert!(w.breaker_blocks());
        let err = w.ensure_connected(3).unwrap_err();
        assert!(is_unreachable(&err), "{err}");
        // Fail-fast means the network was never touched: no connect
        // attempt, no backoff sleep, no peer-down increment.
        assert_eq!(w.counters.report(0, "x").peer_down, 0);
    }

    #[test]
    fn injected_connect_faults_open_the_breaker_and_stop_the_retry_cycle() {
        let mut w = test_worker(
            "203.0.113.1:9",
            0,
            "seed=3,peer_connect=io_error",
            2,
            Duration::from_secs(60),
        );
        assert!(w.ensure_connected(5).is_err());
        assert_eq!(w.counters.health(), PeerHealth::Down);
        assert!(w.breaker_blocks());
        let report = w.counters.report(0, "x");
        assert_eq!(report.breaker_trips, 1);
        // The cycle stopped the moment the breaker opened: exactly
        // `threshold` attempts were charged, not all five.
        assert_eq!(report.peer_down, 2);
    }

    #[test]
    fn unreachable_and_coverage_helpers_classify_correctly() {
        assert!(is_unreachable(&peer_down("10.0.0.1:7000")));
        assert!(is_unreachable(&all_owners_down()));
        assert!(is_unreachable(&ServiceError::ConnectionClosed));
        assert!(!is_unreachable(&ServiceError::Remote {
            message: "session 9 not found".into(),
            accepted: None,
        }));

        assert_eq!(coverage(3, Vec::new()), None, "full coverage is exact");
        let partial = coverage(3, vec![(1, "10.0.0.2:7000".into())]).unwrap();
        assert_eq!(partial.owners_total, 3);
        assert_eq!(partial.owners_reachable, 2);
        assert_eq!(partial.missing.len(), 1);
    }

    #[test]
    fn from_config_requires_locatable_self() {
        let plain = ServiceConfig::default();
        assert!(FedState::from_config(&plain).unwrap().is_none());

        let mut cfg = ServiceConfig {
            peers: vec!["10.0.0.1:7000".into(), "10.0.0.2:7000".into()],
            ..ServiceConfig::default()
        };
        assert!(FedState::from_config(&cfg).is_err());

        cfg.node_id = Some(1);
        let fed = FedState::from_config(&cfg).unwrap().unwrap();
        assert_eq!(fed.topology().self_id(), 1);
        assert_eq!(fed.peer_reports().len(), 1);
        assert_eq!(fed.peer_reports()[0].node, 0);
    }
}
