//! A small self-contained JSON reader/writer for the wire protocol.
//!
//! The build environment has no serde, and the protocol only needs
//! numbers, strings, booleans, arrays and flat-ish objects, so this
//! module implements just enough of RFC 8259: full escape handling on
//! strings, `f64` numbers, and recursive arrays/objects. Object keys
//! keep insertion order (a `Vec` of pairs — the protocol never has
//! enough keys for a map to win).

use crate::error::{Result, ServiceError};

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`; the protocol's integers stay
    /// exact up to 2^53, far beyond any session id or count here).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a `usize`, if it is a non-negative integral number.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|n| n as usize)
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serializes compact JSON into a caller-owned buffer (appended,
    /// not cleared) — the connection loop reuses one response `String`
    /// across requests instead of allocating a fresh one per reply.
    pub fn write_json(&self, out: &mut String) {
        self.write(out);
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Number(n) => write_number(*n, out),
            Value::String(s) => write_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Number(n)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::Number(n as f64)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Self {
        Value::Number(n as f64)
    }
}

impl From<u32> for Value {
    fn from(n: u32) -> Self {
        Value::Number(n as f64)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no Infinity/NaN; null is the conventional stand-in.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Maximum container nesting the parser accepts. The protocol needs 3
/// levels; the cap exists because the parser recurses per level, and an
/// unauthenticated peer must not be able to overflow the stack (and
/// abort the process) with a line of repeated `[`.
const MAX_DEPTH: usize = 64;

/// Parses one JSON document, rejecting trailing garbage.
pub fn parse(input: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ServiceError {
        ServiceError::Protocol(format!("{msg} (at byte {})", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'{') => self.nested(Self::object),
            Some(b'[') => self.nested(Self::array),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn nested(&mut self, f: fn(&mut Self) -> Result<Value>) -> Result<Value> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting deeper than 64 levels"));
        }
        self.depth += 1;
        let v = f(self);
        self.depth -= 1;
        v
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        // Fast path: plain integers — the overwhelmingly common case on
        // the ingest hot path, where a submit line is mostly record
        // arrays of small integers — accumulate directly instead of
        // slicing through UTF-8 validation and the general f64 parser.
        let digits_start = self.pos;
        let mut int: u64 = 0;
        while let Some(d @ b'0'..=b'9') = self.peek() {
            // 19+ digits could overflow u64; punt to the slow path.
            if self.pos - digits_start >= 18 {
                break;
            }
            int = int * 10 + u64::from(d - b'0');
            self.pos += 1;
        }
        match self.peek() {
            Some(b'.' | b'e' | b'E' | b'0'..=b'9' | b'+' | b'-') => {}
            _ if self.pos > digits_start => {
                let n = int as f64;
                return Ok(Value::Number(if negative { -n } else { n }));
            }
            _ => return Err(self.err("malformed number")),
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            out.push(cp);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char> {
        // self.pos is on the 'u'.
        let hex4 = |p: &Self, at: usize| -> Result<u32> {
            let slice = p
                .bytes
                .get(at..at + 4)
                .ok_or_else(|| p.err("truncated \\u escape"))?;
            let s = std::str::from_utf8(slice).map_err(|_| p.err("invalid \\u escape"))?;
            u32::from_str_radix(s, 16).map_err(|_| p.err("invalid \\u escape"))
        };
        let hi = hex4(self, self.pos + 1)?;
        self.pos += 5;
        if (0xd800..0xdc00).contains(&hi) {
            // Surrogate pair.
            if self.bytes.get(self.pos) == Some(&b'\\')
                && self.bytes.get(self.pos + 1) == Some(&b'u')
            {
                let lo = hex4(self, self.pos + 2)?;
                if !(0xdc00..0xe000).contains(&lo) {
                    return Err(self.err("high surrogate not followed by a low surrogate"));
                }
                self.pos += 6;
                let cp = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                return char::from_u32(cp).ok_or_else(|| self.err("invalid surrogate pair"));
            }
            return Err(self.err("lone high surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid \\u codepoint"))
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Convenience constructor for object values.
pub fn object(pairs: Vec<(&str, Value)>) -> Value {
    Value::Object(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Value) -> Value {
        parse(&v.to_json()).unwrap()
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" -12.5e2 ").unwrap(), Value::Number(-1250.0));
        assert_eq!(
            parse("\"a\\nb\\u0041\"").unwrap(),
            Value::String("a\nbA".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"op":"submit","records":[[0,1],[2,3]],"ok":true}"#).unwrap();
        assert_eq!(v.get("op").and_then(Value::as_str), Some("submit"));
        let records = v.get("records").and_then(Value::as_array).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].as_array().unwrap()[0].as_u64(), Some(2));
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\"1}", "tru", "1 2", "\"unterminated"] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn roundtrips_structures() {
        let v = object(vec![
            ("id", 7u64.into()),
            ("name", "γ-diagonal \"quoted\"\n".into()),
            (
                "counts",
                Value::Array(vec![1.5.into(), Value::Null, true.into()]),
            ),
            ("nested", object(vec![("k", Value::Array(vec![]))])),
        ]);
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn integers_serialize_without_fraction() {
        assert_eq!(Value::Number(3.0).to_json(), "3");
        assert_eq!(Value::Number(3.25).to_json(), "3.25");
        assert_eq!(Value::Number(f64::NAN).to_json(), "null");
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap(),
            Value::String("😀".into())
        );
    }

    #[test]
    fn invalid_surrogate_sequences_error_without_panicking() {
        // High surrogate followed by a non-surrogate escape must be a
        // parse error, not a u32 underflow panic.
        for bad in ["\"\\ud800\\u0041\"", "\"\\ud800x\"", "\"\\ud800\\ud801\""] {
            assert!(parse(bad).is_err(), "should reject {bad}");
        }
    }

    #[test]
    fn nesting_is_depth_limited_instead_of_overflowing_the_stack() {
        // Within the limit: fine.
        let shallow = format!("{}0{}", "[".repeat(60), "]".repeat(60));
        assert!(parse(&shallow).is_ok());
        // A hostile line of brackets must produce an error, not recurse
        // until the thread stack aborts the process.
        let deep = "[".repeat(500_000);
        let err = parse(&deep).unwrap_err();
        assert!(err.to_string().contains("nesting"), "{err}");
        let mixed = "{\"k\":".repeat(200).to_string() + "1";
        assert!(parse(&mixed).is_err());
    }

    #[test]
    fn u64_extraction_guards_range_and_fraction() {
        assert_eq!(Value::Number(1.5).as_u64(), None);
        assert_eq!(Value::Number(-1.0).as_u64(), None);
        assert_eq!(Value::Number(42.0).as_u64(), Some(42));
    }
}
