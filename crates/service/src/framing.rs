//! Per-connection wire framing, as a first-class abstraction.
//!
//! Every transport front-end used to own a private copy of its framing
//! logic: the threaded TCP listener scanned newlines in
//! [`crate::server`], the threaded HTTP listener parsed heads and
//! bodies in [`crate::http`], and the reactor re-implemented both as
//! resumable state machines in [`crate::reactor`]. This module unifies
//! them behind one trait, `FrameCodec`: a codec owns a connection's
//! framing state, consumes raw wire bytes, drives the shared
//! [`crate::dispatch`] core, and appends encoded response bytes — and
//! *both* connection drivers (the blocking thread-per-connection loop
//! here, the reactor's offload jobs) just pump bytes through it.
//!
//! Three framings share the stack:
//!
//! 1. **Line JSON** — one JSON request per `\n`-terminated line (the
//!    default on the raw TCP port).
//! 2. **HTTP/1.1** — heads, `Content-Length`/chunked bodies, keep-alive
//!    (the HTTP port).
//! 3. **Binary** — length-prefixed frames carrying either a compact
//!    binary submit ([`OP_SUBMIT`]) or a JSON-tunnelled request
//!    ([`OP_JSON`]), negotiated per connection with
//!    `{"op":"hello","framing":"binary"}`. The submit payload lands
//!    directly in a flat [`RecordBatch`] without any text parsing —
//!    the wire fast path for fan-in ingest.
//!
//! `docs/PROTOCOL.md` §6 is the normative spec for the binary frame
//! grammar; the opcode/flag constants below are cross-checked against
//! it by `frapp-analyze`'s `spec_drift` rule.

use crate::dispatch::{self, ConnState, Outcome};
use crate::error::{Result, ServiceError};
use crate::fault::{FaultAction, FaultSite};
use crate::http::{self, BodyFraming, ChunkDecoder, Head};
use crate::protocol::{write_error_response, RecordBatch, Request, WireFraming};
use crate::server::{wake_addr, IdleTimer, Shared};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::Ordering;
use std::time::Duration;

/// Binary frame opcode: a compact submit. The payload is the flags
/// byte, the target session, optional shard/replication stamps, and the
/// record cells — see `docs/PROTOCOL.md` §6 for the grammar.
pub const OP_SUBMIT: u8 = 0x01;
/// Binary frame opcode: a JSON-tunnelled request. The payload is one
/// JSON request object, exactly as a line-protocol line (without the
/// newline); every op is reachable this way, so a binary connection
/// never needs to switch back to issue a query.
pub const OP_JSON: u8 = 0x02;

/// Submit-frame flag: the records were already perturbed client-side.
pub const FLAG_PRE_PERTURBED: u8 = 0x01;
/// Submit-frame flag: deferred acknowledgement — the server sends no
/// response frame; the accepted count lands in the connection watermark
/// (reported by `flush`), exactly as `"ack":"deferred"` on a line.
pub const FLAG_DEFERRED: u8 = 0x02;
/// Submit-frame flag: an explicit target shard (varint) follows the
/// session id.
pub const FLAG_HAS_SHARD: u8 = 0x04;
/// Submit-frame flag: a federation replication stamp — `origin` then
/// `seq`, both varints — follows the shard (or the session, when
/// [`FLAG_HAS_SHARD`] is clear).
pub const FLAG_HAS_STAMP: u8 = 0x08;
/// Submit-frame flag: cells are fixed-width `u32` little-endian instead
/// of varints — cheaper to encode/decode when values are large, at four
/// bytes per cell.
pub const FLAG_FIXED32: u8 = 0x10;

/// Every flag bit the submit decoder understands; frames carrying any
/// other bit are refused as malformed rather than half-interpreted.
const KNOWN_FLAGS: u8 =
    FLAG_PRE_PERTURBED | FLAG_DEFERRED | FLAG_HAS_SHARD | FLAG_HAS_STAMP | FLAG_FIXED32;

/// The longest encoding of a `u64` varint (10 × 7 bits ≥ 64 bits).
const MAX_VARINT_BYTES: usize = 10;

/// Appends one LEB128 varint (7 data bits per byte, little-endian, high
/// bit = continuation) to `out`.
pub fn write_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads one LEB128 varint from the front of `input`. Returns
/// `Ok(Some((value, bytes_consumed)))` on a complete varint,
/// `Ok(None)` when `input` ends mid-varint (read more bytes and retry),
/// and an error on an overlong encoding that would overflow 64 bits.
pub fn read_varint(input: &[u8]) -> Result<Option<(u64, usize)>> {
    let mut value: u64 = 0;
    let mut shift: u32 = 0;
    for (i, &byte) in input.iter().enumerate() {
        let bits = u64::from(byte & 0x7f);
        if shift >= 64 || (shift == 63 && bits > 1) {
            return Err(ServiceError::Protocol("varint overflows 64 bits".into()));
        }
        value |= bits << shift;
        if byte & 0x80 == 0 {
            return Ok(Some((value, i + 1)));
        }
        shift += 7;
    }
    Ok(None)
}

/// Appends one [`OP_JSON`] frame carrying `json` (a complete request or
/// response object, no trailing newline) to `out`.
pub fn encode_json_frame(out: &mut Vec<u8>, json: &str) {
    out.push(OP_JSON);
    write_varint(out, json.len() as u64);
    out.extend_from_slice(json.as_bytes());
}

/// Appends one [`OP_SUBMIT`] frame to `out` — the client-side encoder
/// for the binary ingest fast path. All records must have the same
/// arity (the frame layout is rectangular); `fixed32` selects
/// four-byte little-endian cells over varints.
pub fn encode_submit_frame(
    out: &mut Vec<u8>,
    session: u64,
    records: &[Vec<u32>],
    pre_perturbed: bool,
    shard: Option<usize>,
    deferred: bool,
    fixed32: bool,
) {
    let n_attrs = records.first().map_or(0, Vec::len);
    debug_assert!(
        records.iter().all(|r| r.len() == n_attrs),
        "binary submit frames are rectangular"
    );
    let mut payload =
        Vec::with_capacity(16 + records.len() * n_attrs * if fixed32 { 4 } else { 2 });
    let mut flags = 0u8;
    if pre_perturbed {
        flags |= FLAG_PRE_PERTURBED;
    }
    if deferred {
        flags |= FLAG_DEFERRED;
    }
    if shard.is_some() {
        flags |= FLAG_HAS_SHARD;
    }
    if fixed32 {
        flags |= FLAG_FIXED32;
    }
    payload.push(flags);
    write_varint(&mut payload, session);
    if let Some(shard) = shard {
        write_varint(&mut payload, shard as u64);
    }
    write_varint(&mut payload, records.len() as u64);
    write_varint(&mut payload, n_attrs as u64);
    for record in records {
        for &cell in record {
            if fixed32 {
                payload.extend_from_slice(&cell.to_le_bytes());
            } else {
                write_varint(&mut payload, u64::from(cell));
            }
        }
    }
    out.reserve(payload.len() + MAX_VARINT_BYTES + 1);
    out.push(OP_SUBMIT);
    write_varint(out, payload.len() as u64);
    out.extend_from_slice(&payload);
}

/// A cursor over one complete frame payload. Truncation inside a
/// complete frame is a hard protocol error, never a retry.
struct PayloadReader<'a> {
    buf: &'a [u8],
}

impl<'a> PayloadReader<'a> {
    fn byte(&mut self) -> Result<u8> {
        match self.buf.split_first() {
            Some((&b, rest)) => {
                self.buf = rest;
                Ok(b)
            }
            None => Err(truncated()),
        }
    }

    fn varint(&mut self) -> Result<u64> {
        match read_varint(self.buf)? {
            Some((value, n)) => {
                self.buf = &self.buf[n..];
                Ok(value)
            }
            None => Err(truncated()),
        }
    }

    fn u32_le(&mut self) -> Result<u32> {
        if self.buf.len() < 4 {
            return Err(truncated());
        }
        let (head, rest) = self.buf.split_at(4);
        self.buf = rest;
        Ok(u32::from_le_bytes([head[0], head[1], head[2], head[3]]))
    }
}

fn truncated() -> ServiceError {
    ServiceError::Protocol("truncated field inside a complete submit frame".into())
}

/// Decodes one [`OP_SUBMIT`] payload into a [`Request::Submit`], the
/// cells landing directly in a flat [`RecordBatch`]. Every malformed
/// shape — truncated varints, unknown flags, cell counts that cannot
/// fit the payload, trailing garbage — is an error the connection
/// treats as fatal.
pub(crate) fn decode_submit_payload(payload: &[u8]) -> Result<Request> {
    let mut r = PayloadReader { buf: payload };
    let flags = r.byte()?;
    if flags & !KNOWN_FLAGS != 0 {
        return Err(ServiceError::Protocol(format!(
            "submit frame carries unknown flag bits {:#04x}",
            flags & !KNOWN_FLAGS
        )));
    }
    let session = r.varint()?;
    let shard = if flags & FLAG_HAS_SHARD != 0 {
        Some(r.varint()? as usize)
    } else {
        None
    };
    let (origin, seq) = if flags & FLAG_HAS_STAMP != 0 {
        (Some(r.varint()?), Some(r.varint()?))
    } else {
        (None, None)
    };
    let n_records = r.varint()? as usize;
    let n_attrs = r.varint()? as usize;
    let cells = n_records
        .checked_mul(n_attrs)
        .ok_or_else(|| ServiceError::Protocol("submit frame cell count overflows".into()))?;
    let fixed32 = flags & FLAG_FIXED32 != 0;
    // Every remaining payload byte must belong to a cell (≥ 1 byte per
    // varint cell, exactly 4 per fixed32 cell), so an absurd declared
    // count is refused before any allocation happens.
    let remaining = r.buf.len();
    if (fixed32 && remaining != cells * 4) || (!fixed32 && remaining < cells) {
        return Err(ServiceError::Protocol(format!(
            "submit frame declares {cells} cells but carries {remaining} payload bytes"
        )));
    }
    let mut records = RecordBatch::new();
    for _ in 0..n_records {
        for _ in 0..n_attrs {
            let cell = if fixed32 {
                r.u32_le()?
            } else {
                let v = r.varint()?;
                u32::try_from(v)
                    .map_err(|_| ServiceError::Protocol(format!("cell value {v} exceeds u32")))?
            };
            records.push_cell(cell);
        }
        records.end_record();
    }
    if !r.buf.is_empty() {
        return Err(ServiceError::Protocol(format!(
            "{} trailing bytes after the last submit cell",
            r.buf.len()
        )));
    }
    Ok(Request::Submit {
        session,
        records,
        pre_perturbed: flags & FLAG_PRE_PERTURBED != 0,
        shard,
        deferred: flags & FLAG_DEFERRED != 0,
        origin,
        seq,
    })
}

/// What scanning the input buffer for one binary frame yielded.
enum Frame<'a> {
    /// A complete frame: its opcode, its payload, and the total frame
    /// size (header included) to consume.
    Complete {
        opcode: u8,
        payload: &'a [u8],
        frame_len: usize,
    },
    /// The buffer ends mid-header or mid-payload.
    NeedMore,
}

/// Scans the front of `input` for one complete binary frame. Oversized
/// lengths and overlong length varints are errors (the framing can no
/// longer be trusted); a partial frame is [`Frame::NeedMore`].
fn scan_frame(input: &[u8], max_payload: usize) -> Result<Frame<'_>> {
    if input.is_empty() {
        return Ok(Frame::NeedMore);
    }
    let opcode = input[0];
    match read_varint(&input[1..])? {
        None => {
            // A length varint is at most MAX_VARINT_BYTES; a buffer
            // holding more than header-max bytes without terminating
            // one is hostile, not slow.
            if input.len() > 1 + MAX_VARINT_BYTES {
                return Err(ServiceError::Protocol(
                    "unterminated frame-length varint".into(),
                ));
            }
            Ok(Frame::NeedMore)
        }
        Some((len, len_bytes)) => {
            if len > max_payload as u64 {
                return Err(ServiceError::Protocol(format!(
                    "frame payload of {len} bytes exceeds the {max_payload}-byte limit"
                )));
            }
            let frame_len = 1 + len_bytes + len as usize;
            if input.len() < frame_len {
                return Ok(Frame::NeedMore);
            }
            Ok(Frame::Complete {
                opcode,
                payload: &input[1 + len_bytes..frame_len],
                frame_len,
            })
        }
    }
}

/// The verdict of one [`FrameCodec::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Step {
    /// A frame was consumed (and possibly answered); step again — more
    /// frames may already be buffered.
    Progress,
    /// No complete frame is buffered; read more bytes from the peer.
    NeedMore,
    /// The framing can no longer be trusted (oversized frame, invalid
    /// UTF-8 line, malformed binary frame): close the connection
    /// without a response, exactly as both front-ends always have.
    Fatal,
}

/// Connection-lifecycle flags a codec raises while stepping. The driver
/// flushes the output buffer first, then acts on them.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct Signals {
    /// Close the connection once the pending output is flushed (HTTP
    /// `Connection: close`, in-band HTTP framing errors).
    pub(crate) close_after_flush: bool,
    /// A `shutdown` op was acknowledged: flush, then stop the server.
    pub(crate) shutdown_after_flush: bool,
}

/// A per-connection framing codec: scans frames out of the raw input
/// bytes, drives the shared dispatch core, and appends encoded response
/// bytes to `out`.
///
/// The contract both drivers rely on:
///
/// - `input[*consumed..]` is the unprocessed wire data; a codec
///   advances `*consumed` past every byte it has fully handled (the
///   caller drains the buffer afterwards). Partial progress is fine —
///   HTTP body bytes are consumed as they arrive, mid-frame.
/// - State is resumable: a codec returning [`Step::NeedMore`] picks up
///   exactly where it left off when more bytes arrive, which is what
///   lets the reactor run it incrementally.
/// - Responses are *appended* to `out` in wire order; the codec never
///   performs I/O itself, so the same implementation serves blocking
///   threads and the nonblocking reactor.
pub(crate) trait FrameCodec: Send {
    /// Processes at most one frame from `input[*consumed..]`.
    fn step(
        &mut self,
        shared: &Shared,
        input: &[u8],
        consumed: &mut usize,
        out: &mut Vec<u8>,
        signals: &mut Signals,
    ) -> Step;
}

/// The raw-TCP codec: starts in line-JSON framing and switches to the
/// binary framing when a `hello` negotiates it. Owns the connection's
/// deferred-submit watermark.
pub(crate) struct LineFraming {
    state: ConnState,
    mode: WireFraming,
    response: String,
}

impl LineFraming {
    pub(crate) fn new() -> Self {
        LineFraming {
            state: ConnState::new(),
            mode: WireFraming::Json,
            response: String::new(),
        }
    }

    /// Encodes `self.response` per `outcome` in the *current* framing,
    /// applies any framing switch, and raises lifecycle signals.
    fn emit(
        &mut self,
        shared: &Shared,
        outcome: Outcome,
        out: &mut Vec<u8>,
        signals: &mut Signals,
    ) {
        match outcome {
            Outcome::Quiet => {}
            Outcome::Reply | Outcome::Shutdown | Outcome::SwitchFraming(_) => match self.mode {
                WireFraming::Json => {
                    out.reserve(self.response.len() + 1);
                    out.extend_from_slice(self.response.as_bytes());
                    out.push(b'\n');
                }
                WireFraming::Binary => encode_json_frame(out, &self.response),
            },
        }
        match outcome {
            Outcome::Shutdown => signals.shutdown_after_flush = true,
            Outcome::SwitchFraming(framing) => {
                // The acknowledgement above went out in the old framing;
                // everything after it speaks the new one.
                if framing == WireFraming::Binary && self.mode != WireFraming::Binary {
                    shared.transport.record_binary_connection();
                }
                self.mode = framing;
            }
            _ => {}
        }
    }

    fn step_json(
        &mut self,
        shared: &Shared,
        input: &[u8],
        consumed: &mut usize,
        out: &mut Vec<u8>,
        signals: &mut Signals,
    ) -> Step {
        let rest = &input[*consumed..];
        let Some(pos) = rest.iter().position(|&b| b == b'\n') else {
            if rest.len() > shared.config.max_line_bytes {
                return Step::Fatal;
            }
            return Step::NeedMore;
        };
        if pos > shared.config.max_line_bytes {
            return Step::Fatal;
        }
        let Ok(text) = std::str::from_utf8(&rest[..pos]) else {
            return Step::Fatal;
        };
        // Borrowck: `text` borrows `input`, which `dispatch_into` does
        // not touch — but `self.response` must not alias it, so the
        // line is trimmed before the buffers are reborrowed.
        let start = text.len() - text.trim_start().len();
        let end = start + text.trim().len();
        *consumed += pos + 1;
        if start == end {
            return Step::Progress; // blank line: ignored, as always
        }
        let line = &input[*consumed - pos - 1 + start..*consumed - pos - 1 + end];
        // Safety of the re-slice: `start..end` indexes `text`, a
        // str view of exactly these bytes, so it stays valid UTF-8.
        let line = match std::str::from_utf8(line) {
            Ok(l) => l,
            Err(_) => return Step::Fatal,
        };
        shared.transport.record_tcp_request();
        self.response.clear();
        let outcome = dispatch::dispatch_into(
            &shared.registry,
            &shared.config,
            &shared.transport,
            shared.fed.as_deref(),
            Some(&shared.jobs),
            &mut self.state,
            line,
            &mut self.response,
        );
        self.emit(shared, outcome, out, signals);
        Step::Progress
    }

    fn step_binary(
        &mut self,
        shared: &Shared,
        input: &[u8],
        consumed: &mut usize,
        out: &mut Vec<u8>,
        signals: &mut Signals,
    ) -> Step {
        let rest = &input[*consumed..];
        let (opcode, payload, frame_len) = match scan_frame(rest, shared.config.max_line_bytes) {
            Err(_) => return Step::Fatal,
            Ok(Frame::NeedMore) => return Step::NeedMore,
            Ok(Frame::Complete {
                opcode,
                payload,
                frame_len,
            }) => (opcode, payload, frame_len),
        };
        shared.transport.record_tcp_request();
        shared.transport.record_binary_request();
        self.response.clear();
        let outcome = match opcode {
            OP_SUBMIT => match decode_submit_payload(payload) {
                Ok(req) => dispatch::dispatch_request(
                    &shared.registry,
                    &shared.config,
                    &shared.transport,
                    shared.fed.as_deref(),
                    Some(&shared.jobs),
                    &mut self.state,
                    req,
                    &mut self.response,
                ),
                // A malformed frame poisons the framing itself (the
                // next frame boundary cannot be trusted): fatal.
                Err(_) => return Step::Fatal,
            },
            OP_JSON => {
                let Ok(text) = std::str::from_utf8(payload) else {
                    return Step::Fatal;
                };
                let line = text.trim().to_owned();
                dispatch::dispatch_into(
                    &shared.registry,
                    &shared.config,
                    &shared.transport,
                    shared.fed.as_deref(),
                    Some(&shared.jobs),
                    &mut self.state,
                    &line,
                    &mut self.response,
                )
            }
            _ => return Step::Fatal,
        };
        *consumed += frame_len;
        self.emit(shared, outcome, out, signals);
        Step::Progress
    }
}

impl FrameCodec for LineFraming {
    fn step(
        &mut self,
        shared: &Shared,
        input: &[u8],
        consumed: &mut usize,
        out: &mut Vec<u8>,
        signals: &mut Signals,
    ) -> Step {
        match self.mode {
            WireFraming::Json => self.step_json(shared, input, consumed, out, signals),
            WireFraming::Binary => self.step_binary(shared, input, consumed, out, signals),
        }
    }
}

/// The HTTP/1.1 codec: a resumable head/body state machine over the
/// parsing helpers in [`crate::http`], shared verbatim by the threaded
/// listener and the reactor.
pub(crate) struct HttpFraming {
    state: HttpState,
    response: String,
}

enum HttpState {
    /// Scanning for the `\r\n\r\n` that ends the request head.
    Head,
    /// Reading a `Content-Length` body.
    Body {
        head: Head,
        body: Vec<u8>,
        need: usize,
    },
    /// Reading a chunked body.
    Chunked { head: Head, decoder: ChunkDecoder },
}

/// Locates the end of an HTTP request head (the index just past
/// `\r\n\r\n`), if the buffer holds one.
pub(crate) fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

impl HttpFraming {
    pub(crate) fn new() -> Self {
        HttpFraming {
            state: HttpState::Head,
            response: String::new(),
        }
    }

    /// Routes and executes one complete request, appending the full
    /// HTTP response to `out`.
    fn dispatch(
        &mut self,
        shared: &Shared,
        head: &Head,
        body: &[u8],
        out: &mut Vec<u8>,
        signals: &mut Signals,
    ) -> Step {
        shared.transport.record_http_request();
        self.response.clear();
        let (status, reason, content_type) = http::respond(
            shared,
            &head.method,
            &head.target,
            head.accept_text,
            body,
            &mut self.response,
        );
        let keep = head.keep_alive();
        http::format_http_response(out, status, reason, content_type, &self.response, keep);
        if !keep {
            signals.close_after_flush = true;
        }
        Step::Progress
    }

    /// Answers a framing-level failure in-band and closes after the
    /// flush (the framing itself can no longer be trusted).
    fn respond_error(
        &mut self,
        status: u16,
        reason: &str,
        err: &ServiceError,
        out: &mut Vec<u8>,
        signals: &mut Signals,
    ) -> Step {
        self.response.clear();
        write_error_response(&mut self.response, err);
        http::format_http_response(
            out,
            status,
            reason,
            http::CONTENT_TYPE_JSON,
            &self.response,
            false,
        );
        signals.close_after_flush = true;
        Step::Progress
    }
}

impl FrameCodec for HttpFraming {
    fn step(
        &mut self,
        shared: &Shared,
        input: &[u8],
        consumed: &mut usize,
        out: &mut Vec<u8>,
        signals: &mut Signals,
    ) -> Step {
        let rest = &input[*consumed..];
        match std::mem::replace(&mut self.state, HttpState::Head) {
            HttpState::Head => {
                let Some(end) = find_head_end(rest) else {
                    if rest.len() > http::MAX_HEAD_BYTES {
                        return Step::Fatal;
                    }
                    return Step::NeedMore;
                };
                let head = match http::parse_head(&rest[..end]) {
                    Ok(h) => h,
                    Err(e) => {
                        *consumed += end;
                        return self.respond_error(400, "Bad Request", &e, out, signals);
                    }
                };
                *consumed += end;
                if let BodyFraming::Length(n) = head.body {
                    if n > shared.config.max_line_bytes {
                        let e = ServiceError::Protocol(format!(
                            "request body exceeds {} bytes",
                            shared.config.max_line_bytes
                        ));
                        return self.respond_error(413, "Payload Too Large", &e, out, signals);
                    }
                }
                if head.expect_continue && head.expects_body() {
                    // curl waits for this interim response before
                    // sending larger bodies; it precedes any body read,
                    // and the driver flushes `out` before blocking.
                    out.extend_from_slice(b"HTTP/1.1 100 Continue\r\n\r\n");
                }
                match head.body {
                    BodyFraming::Length(0) => self.dispatch(shared, &head, &[], out, signals),
                    BodyFraming::Length(n) => {
                        self.state = HttpState::Body {
                            head,
                            // Bounded by max_line_bytes (checked above),
                            // but cap the eager reservation anyway.
                            body: Vec::with_capacity(n.min(64 * 1024)),
                            need: n,
                        };
                        Step::Progress
                    }
                    BodyFraming::Chunked => {
                        self.state = HttpState::Chunked {
                            head,
                            decoder: ChunkDecoder::new(shared.config.max_line_bytes),
                        };
                        Step::Progress
                    }
                }
            }
            HttpState::Body {
                head,
                mut body,
                need,
            } => {
                let take = rest.len().min(need - body.len());
                body.extend_from_slice(&rest[..take]);
                *consumed += take;
                if body.len() == need {
                    self.dispatch(shared, &head, &body, out, signals)
                } else {
                    self.state = HttpState::Body { head, body, need };
                    Step::NeedMore
                }
            }
            HttpState::Chunked { head, mut decoder } => match decoder.push(rest) {
                Err(e) => {
                    let (status, reason) = e.status();
                    self.respond_error(status, reason, &e.into_service_error(), out, signals)
                }
                Ok(eaten) => {
                    *consumed += eaten;
                    if decoder.is_done() {
                        let mut body = Vec::new();
                        decoder.take_body(&mut body);
                        self.dispatch(shared, &head, &body, out, signals)
                    } else {
                        self.state = HttpState::Chunked { head, decoder };
                        Step::NeedMore
                    }
                }
            },
        }
    }
}

/// The shared blocking connection driver: both threaded front-ends are
/// this loop plus a codec. Reads with a 200 ms timeout (so idle
/// connections notice the shutdown flag and the idle reaper), drives
/// the codec until it needs more bytes, flushes the accumulated
/// responses, and acts on lifecycle signals.
///
/// `faults` enables the injected connection-level faults
/// ([`FaultSite::ConnRead`]/[`FaultSite::ConnWrite`]) — threaded line
/// protocol only, matching the historical behaviour (a `Delay` fault
/// sleeps the worker thread, which only that front-end may do).
/// `server_addr` is the bound listener address a `shutdown`
/// acknowledgement wakes (the threaded accept loop blocks in `accept`).
pub(crate) fn drive_blocking(
    stream: &TcpStream,
    shared: &Shared,
    codec: &mut dyn FrameCodec,
    faults: bool,
    server_addr: Option<SocketAddr>,
) -> Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(200)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    let mut input: Vec<u8> = Vec::new();
    let mut out: Vec<u8> = Vec::new();
    let mut scratch = vec![0u8; 64 * 1024];
    let mut idle = IdleTimer::new(shared.config.idle_timeout_ms);
    loop {
        let mut signals = Signals::default();
        let mut consumed = 0usize;
        loop {
            match codec.step(shared, &input, &mut consumed, &mut out, &mut signals) {
                Step::Progress => {
                    if signals.close_after_flush || signals.shutdown_after_flush {
                        break;
                    }
                }
                Step::NeedMore => break,
                Step::Fatal => return Ok(()),
            }
        }
        input.drain(..consumed);
        if !out.is_empty() {
            if faults {
                match shared.config.fault_plan.decide(FaultSite::ConnWrite) {
                    Some(FaultAction::Delay(ms)) => std::thread::sleep(Duration::from_millis(ms)),
                    Some(FaultAction::ShortWrite) => {
                        // A torn response: the peer sees a truncated
                        // message and a close, like a server dying
                        // mid-write.
                        let half = out.len() / 2;
                        let _ = (&*stream).write_all(&out[..half]);
                        return Ok(());
                    }
                    Some(_) => return Ok(()),
                    None => {}
                }
            }
            (&*stream).write_all(&out)?;
            (&*stream).flush()?;
            out.clear();
        }
        if signals.shutdown_after_flush {
            shared.shutdown.store(true, Ordering::SeqCst);
            if let Some(addr) = server_addr {
                // Wake the accept loop so Server::run observes the flag.
                let _ = TcpStream::connect(wake_addr(addr));
            }
            return Ok(());
        }
        if signals.close_after_flush {
            return Ok(());
        }
        loop {
            // Injected connection-read faults live in the threaded
            // front-end only: `Delay` sleeps the worker thread, which
            // the reactor event loop must never do.
            if faults
                && shared
                    .config
                    .fault_plan
                    .inject_io(FaultSite::ConnRead)
                    .is_err()
            {
                return Ok(());
            }
            match (&*stream).read(&mut scratch) {
                Ok(0) => return Ok(()), // peer closed
                Ok(n) => {
                    idle.touch();
                    input.extend_from_slice(&scratch[..n]);
                    break;
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        return Ok(());
                    }
                    if idle.expired() {
                        shared.transport.record_idle_reaped();
                        return Ok(());
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varints_round_trip_across_the_value_range() {
        let samples = [
            0u64,
            1,
            127,
            128,
            129,
            16_383,
            16_384,
            u64::from(u32::MAX),
            u64::MAX,
        ];
        for &v in &samples {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            assert!(buf.len() <= MAX_VARINT_BYTES);
            let (decoded, n) = read_varint(&buf).unwrap().unwrap();
            assert_eq!((decoded, n), (v, buf.len()), "value {v}");
            // A prefix of the encoding is incomplete, not an error.
            for cut in 0..buf.len() - 1 {
                assert!(read_varint(&buf[..cut]).unwrap().is_none());
            }
        }
        // An overlong encoding that overflows 64 bits is refused.
        let overlong = [0xffu8; 11];
        assert!(read_varint(&overlong).is_err());
    }

    #[test]
    fn submit_frames_round_trip_bit_identically() {
        // A deterministic LCG stands in for a property-test generator:
        // arbitrary rectangular batches must encode→decode to the exact
        // same RecordBatch, in both cell encodings.
        let mut seed = 0x2545_f491_4f6c_dd1du64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for case in 0..200 {
            let n_records = (next() % 17) as usize;
            let n_attrs = 1 + (next() % 6) as usize;
            let records: Vec<Vec<u32>> = (0..n_records)
                .map(|_| {
                    (0..n_attrs)
                        .map(|_| {
                            // Mix small indices with full-range values
                            // so both the 1-byte and 5-byte varint
                            // paths are exercised.
                            if next() % 4 == 0 {
                                next() as u32
                            } else {
                                (next() % 100) as u32
                            }
                        })
                        .collect()
                })
                .collect();
            let session = next() % 1_000;
            let pre = next() % 2 == 0;
            let deferred = next() % 2 == 0;
            let shard = (next() % 3 == 0).then(|| (next() % 8) as usize);
            let fixed32 = next() % 2 == 0;
            let mut wire = Vec::new();
            encode_submit_frame(&mut wire, session, &records, pre, shard, deferred, fixed32);
            let frame = match scan_frame(&wire, 1 << 20).unwrap() {
                Frame::Complete {
                    opcode,
                    payload,
                    frame_len,
                } => {
                    assert_eq!(opcode, OP_SUBMIT);
                    assert_eq!(frame_len, wire.len(), "no trailing bytes");
                    payload.to_vec()
                }
                Frame::NeedMore => panic!("case {case}: frame must be complete"),
            };
            match decode_submit_payload(&frame).unwrap() {
                Request::Submit {
                    session: s,
                    records: batch,
                    pre_perturbed,
                    shard: sh,
                    deferred: d,
                    origin,
                    seq,
                } => {
                    assert_eq!(s, session);
                    assert_eq!(pre_perturbed, pre);
                    assert_eq!(sh, shard);
                    assert_eq!(d, deferred);
                    assert_eq!((origin, seq), (None, None));
                    assert_eq!(batch, RecordBatch::from_rows(&records), "case {case}");
                }
                other => panic!("decoded to {other:?}"),
            }
        }
    }

    #[test]
    fn replication_stamps_survive_the_binary_encoding() {
        // The encoder never emits stamps (clients are not federation
        // links), but the decoder must accept them per the spec.
        let mut payload = vec![FLAG_PRE_PERTURBED | FLAG_HAS_STAMP];
        write_varint(&mut payload, 7); // session
        write_varint(&mut payload, 2); // origin
        write_varint(&mut payload, 40); // seq
        write_varint(&mut payload, 1); // n_records
        write_varint(&mut payload, 2); // n_attrs
        write_varint(&mut payload, 3);
        write_varint(&mut payload, 1);
        match decode_submit_payload(&payload).unwrap() {
            Request::Submit { origin, seq, .. } => {
                assert_eq!(origin, Some(2));
                assert_eq!(seq, Some(40));
            }
            other => panic!("decoded to {other:?}"),
        }
    }

    #[test]
    fn malformed_submit_payloads_are_rejected() {
        let valid = {
            let mut wire = Vec::new();
            encode_submit_frame(
                &mut wire,
                1,
                &[vec![1, 2], vec![3, 4]],
                true,
                None,
                false,
                false,
            );
            match scan_frame(&wire, 1 << 20).unwrap() {
                Frame::Complete { payload, .. } => payload.to_vec(),
                Frame::NeedMore => unreachable!(),
            }
        };
        decode_submit_payload(&valid).unwrap();
        // Any truncation of a complete frame's payload is an error (a
        // cut varint, a missing cell, a cut header field) — never a
        // silent partial batch.
        for cut in 0..valid.len() {
            assert!(
                decode_submit_payload(&valid[..cut]).is_err(),
                "truncation at {cut} must be rejected"
            );
        }
        // Unknown flag bits are refused, not ignored.
        let mut unknown_flag = valid.clone();
        unknown_flag[0] |= 0x80;
        assert!(decode_submit_payload(&unknown_flag).is_err());
        // Trailing bytes after the declared cells are refused.
        let mut trailing = valid.clone();
        trailing.push(0);
        assert!(decode_submit_payload(&trailing).is_err());
        // A declared cell count the payload cannot hold is refused
        // before any allocation.
        let mut absurd = vec![0u8];
        write_varint(&mut absurd, 1); // session
        write_varint(&mut absurd, u64::MAX / 2); // n_records
        write_varint(&mut absurd, 2); // n_attrs
        assert!(decode_submit_payload(&absurd).is_err());
    }

    #[test]
    fn frame_scanner_resumes_across_arbitrary_splits() {
        let mut wire = Vec::new();
        encode_json_frame(&mut wire, r#"{"op":"ping"}"#);
        for cut in 0..wire.len() {
            match scan_frame(&wire[..cut], 1 << 20).unwrap() {
                Frame::NeedMore => {}
                Frame::Complete { .. } => panic!("prefix of {cut} bytes cannot be complete"),
            }
        }
        match scan_frame(&wire, 1 << 20).unwrap() {
            Frame::Complete {
                opcode,
                payload,
                frame_len,
            } => {
                assert_eq!(opcode, OP_JSON);
                assert_eq!(payload, br#"{"op":"ping"}"#);
                assert_eq!(frame_len, wire.len());
            }
            Frame::NeedMore => panic!("complete frame must scan"),
        }
        // An oversized declared length is fatal the moment the header
        // is readable — no buffering gigabytes first.
        let mut oversized = vec![OP_JSON];
        write_varint(&mut oversized, 1 << 30);
        assert!(scan_frame(&oversized, 1 << 20).is_err());
        // An unterminated length varint past its maximum width is
        // hostile, not slow.
        let mut unterminated = vec![OP_JSON];
        unterminated.extend_from_slice(&[0x80u8; MAX_VARINT_BYTES + 1]);
        assert!(scan_frame(&unterminated, 1 << 20).is_err());
    }

    #[test]
    fn find_head_end_locates_the_blank_line() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nrest"), Some(18));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n"), None);
        assert_eq!(find_head_end(b""), None);
    }
}
