//! The transport-agnostic dispatch core.
//!
//! Every front-end — the line-JSON TCP listener in [`crate::server`],
//! the HTTP/1.1 listener in [`crate::http`] and the nonblocking
//! reactor in [`crate::reactor`] — parses its framing into the same
//! [`Request`] enum and hands it to the shared `execute` here; the
//! response body is identical JSON either way. What *is*
//! transport-specific lives in [`ConnState`]: the line protocol keeps a
//! per-connection deferred-submit watermark (pipelined acks), which a
//! strict request/response transport like HTTP never populates.

use crate::config::ServiceConfig;
use crate::error::{Result, ServiceError};
use crate::fed::{FedState, Routed};
use crate::jobs::JobManager;
use crate::json::{self, Value};
use crate::metrics::TransportMetrics;
use crate::persist;
use crate::protocol::{
    is_deferred_submit, request_from_value, write_error_response, write_flush_response,
    write_list_response, write_metrics_response, write_ok_response, write_reconstruction_response,
    write_reconstruction_response_with, write_stats_response, write_stats_response_with,
    write_transport_metrics_response, AttrRef, Request, WireFraming,
};
use crate::session::SessionRegistry;
use frapp_core::Schema;

/// What the connection loop should do after one dispatched request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// A response was written into the output buffer; send it.
    Reply,
    /// Nothing to send (a deferred-ack submit); keep reading.
    Quiet,
    /// A response was written, and the server should shut down after
    /// sending it.
    Shutdown,
    /// A `hello` negotiation succeeded: send the response (written in
    /// the *current* framing), then switch the connection's codec to
    /// the named framing for every subsequent byte.
    SwitchFraming(WireFraming),
}

/// Per-connection dispatch state: the deferred-submit watermark.
///
/// Deferred submits are ingested in arrival order and never answered
/// individually; the connection accumulates how many records were
/// accepted. The first failure freezes the watermark — later deferred
/// batches are dropped, not ingested — so `accepted` always names a
/// contiguous prefix of the stream and the partial-batch retry
/// contract holds across pipelining: after a failed `flush`, resubmit
/// everything past the watermark.
#[derive(Debug, Default)]
pub struct ConnState {
    accepted: u64,
    batches: u64,
    error: Option<ServiceError>,
}

impl ConnState {
    /// Fresh state with an empty watermark.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether any deferred submits are pending a report.
    fn pending(&self) -> bool {
        self.batches > 0
    }

    fn record(&mut self, accepted: u64) {
        self.accepted += accepted;
        self.batches += 1;
    }

    /// Counts a deferred batch that failed (or was dropped because an
    /// earlier one failed), stashing the first error.
    fn record_failure(&mut self, accepted: u64, error: ServiceError) {
        self.accepted += accepted;
        self.batches += 1;
        self.error.get_or_insert(error);
    }

    fn reset(&mut self) -> (u64, u64, Option<ServiceError>) {
        (
            std::mem::take(&mut self.accepted),
            std::mem::take(&mut self.batches),
            self.error.take(),
        )
    }
}

/// Parses and executes one request line; returns the response line and
/// whether the server should shut down. A convenience wrapper over
/// [`dispatch_into`] for embedders and tests that do not pipeline
/// (deferred-ack submits are still accepted, but their watermark dies
/// with the throwaway state). It carries no job executor, so the
/// background-job ops answer with an in-band error.
pub fn dispatch(registry: &SessionRegistry, config: &ServiceConfig, line: &str) -> (String, bool) {
    let mut out = String::new();
    let transport = TransportMetrics::new();
    let mut state = ConnState::new();
    let stop = matches!(
        dispatch_into(registry, config, &transport, None, None, &mut state, line, &mut out),
        Outcome::Shutdown
    );
    (out, stop)
}

/// [`dispatch`] writing the response into a caller-owned buffer
/// (appended — the connection loop clears and reuses one buffer per
/// connection), against per-connection pipelining state. `fed` is the
/// node's federation layer when it has peers: client-facing ops route
/// through it, while forwarded ops (those carrying `origin`/`seq` or
/// an explicit session id) always apply locally so replication never
/// cascades.
#[allow(clippy::too_many_arguments)] // the shared server context reads better flat than bundled
pub fn dispatch_into(
    registry: &SessionRegistry,
    config: &ServiceConfig,
    transport: &TransportMetrics,
    fed: Option<&FedState>,
    jobs: Option<&JobManager>,
    state: &mut ConnState,
    line: &str,
    out: &mut String,
) -> Outcome {
    // Submit is the hot op; the canonical compact line (which the
    // bundled clients emit) decodes without building a `Value` tree.
    // Anything else falls through to the general parser below.
    if let Some(req) = crate::protocol::parse_submit_line_fast(line) {
        return dispatch_request(registry, config, transport, fed, jobs, state, req, out);
    }
    let parsed = json::parse(line);
    let value = match parsed {
        Ok(v) => v,
        Err(e) => {
            // Unparseable framing: there is no way to tell whether the
            // peer meant a deferred submit, so answer in-band like any
            // other protocol error. (The bundled client builds its own
            // lines, so its pipelined stream never hits this arm.)
            write_error_with_watermark(state, out, &e);
            return Outcome::Reply;
        }
    };
    if is_deferred_submit(&value) {
        match request_from_value(&value) {
            Ok(req) => execute_deferred(registry, transport, fed, state, req),
            // A deferred submit with invalid fields is quiet too: its
            // error is stashed for the flush, because the pipelining
            // client is not reading responses at this point.
            Err(e) => {
                transport.record_deferred_batch();
                state.record_failure(0, e);
            }
        }
        return Outcome::Quiet;
    }
    match request_from_value(&value) {
        Ok(req) => dispatch_request(registry, config, transport, fed, jobs, state, req, out),
        Err(e) => {
            write_error_with_watermark(state, out, &e);
            Outcome::Reply
        }
    }
}

/// Executes one already-decoded [`Request`] against the pipelining
/// state, writing the response (if any) into `out`. This is the common
/// back half of [`dispatch_into`] and the entry point for framings —
/// like the binary one — that decode straight to a [`Request`] without
/// ever materialising a JSON line.
#[allow(clippy::too_many_arguments)] // the shared server context reads better flat than bundled
pub(crate) fn dispatch_request(
    registry: &SessionRegistry,
    config: &ServiceConfig,
    transport: &TransportMetrics,
    fed: Option<&FedState>,
    jobs: Option<&JobManager>,
    state: &mut ConnState,
    req: Request,
    out: &mut String,
) -> Outcome {
    if matches!(req, Request::Submit { deferred: true, .. }) {
        execute_deferred(registry, transport, fed, state, req);
        return Outcome::Quiet;
    }
    match execute_with_state(registry, config, transport, fed, jobs, state, req, out) {
        Ok(ExecuteOutcome::Respond) => {
            attach_watermark(state, out);
            Outcome::Reply
        }
        Ok(ExecuteOutcome::Flush) => Outcome::Reply,
        Ok(ExecuteOutcome::Switch(framing)) => {
            attach_watermark(state, out);
            Outcome::SwitchFraming(framing)
        }
        Ok(ExecuteOutcome::Shutdown) => {
            attach_watermark(state, out);
            Outcome::Shutdown
        }
        Err(e) => {
            // Every execute arm writes its response only after all
            // fallible work, so nothing has been appended on the error
            // path; truncate defensively anyway.
            out.clear();
            write_error_with_watermark(state, out, &e);
            Outcome::Reply
        }
    }
}

/// Ingests one deferred-ack submit into the connection watermark. No
/// response is produced; failures freeze the watermark (later deferred
/// batches are dropped) so `accepted` stays a contiguous prefix.
fn execute_deferred(
    registry: &SessionRegistry,
    transport: &TransportMetrics,
    fed: Option<&FedState>,
    state: &mut ConnState,
    req: Request,
) {
    transport.record_deferred_batch();
    let Request::Submit {
        session,
        records,
        pre_perturbed,
        shard,
        origin,
        seq,
        deferred: _,
    } = req
    else {
        // `is_deferred_submit` gates on op == submit, so this arm is
        // dead — but a wire-facing path fails in-band, never panics.
        // The first error wins, matching the frozen-watermark rule.
        state.error.get_or_insert(ServiceError::InvalidRequest(
            "deferred execution requires a submit request".into(),
        ));
        state.batches += 1;
        return;
    };
    if state.error.is_some() {
        // A batch after the first failure is dropped un-ingested: the
        // watermark must stay a contiguous prefix of the stream, and
        // the client will resubmit everything past it anyway.
        state.batches += 1;
        return;
    }
    let result = (|| -> Result<u64> {
        // A forwarded replication batch always applies locally on its
        // deterministic shard (`seq % shards`), claiming the
        // `(origin, seq)` watermark; a duplicate retry counts as
        // accepted — its records already did.
        if let (Some(origin), Some(seq)) = (origin, seq) {
            let session = registry.get(session)?;
            session.submit_slices_repl(records.iter(), pre_perturbed, origin, seq)?;
            return Ok(records.len() as u64);
        }
        // A client-facing submit on a federated node routes by the
        // session's owners; the accepted count is optimistic for
        // remote owners until `flush` barriers the links.
        if let Some(fed) = fed {
            let (accepted, _) = fed.submit(registry, session, &records, pre_perturbed, true)?;
            return Ok(accepted);
        }
        let session = registry.get(session)?;
        match shard {
            Some(idx) => session.submit_slices_to_shard(idx, records.iter(), pre_perturbed)?,
            None => {
                session.submit_slices(records.iter(), pre_perturbed)?;
            }
        }
        Ok(records.len() as u64)
    })();
    match result {
        Ok(accepted) => state.record(accepted),
        Err(ServiceError::PartialBatch { accepted, source }) => {
            state.record_failure(accepted, ServiceError::PartialBatch { accepted, source })
        }
        Err(e) => state.record_failure(0, e),
    }
}

/// Appends the deferred watermark to a response that is about to be
/// sent while deferred submits are pending: the synchronous op's reply
/// doubles as the flush report, so the watermark is never silently
/// dropped. All responses are single JSON objects, so the fields splice
/// in before the closing brace.
fn attach_watermark(state: &mut ConnState, out: &mut String) {
    if !state.pending() {
        return;
    }
    let (accepted, _batches, error) = state.reset();
    // The pop must NOT live inside a debug_assert!: release builds
    // compile the assertion out, side effects included.
    let closing = out.pop();
    debug_assert_eq!(closing, Some('}'), "responses are JSON objects");
    use std::fmt::Write as _;
    let _ = write!(out, ",\"deferred_accepted\":{accepted}");
    if let Some(e) = error {
        out.push_str(",\"deferred_error\":");
        json::Value::from(e.to_string()).write_json(out);
    }
    out.push('}');
}

fn write_error_with_watermark(state: &mut ConnState, out: &mut String, e: &ServiceError) {
    write_error_response(out, e);
    attach_watermark(state, out);
}

/// How [`execute`] left the output buffer.
pub(crate) enum ExecuteOutcome {
    /// A normal response: the dispatcher may attach a pending deferred
    /// watermark.
    Respond,
    /// A `flush` response: the watermark is the response, already
    /// consumed.
    Flush,
    /// A `hello` acknowledgement: after sending it, the connection
    /// switches to the negotiated framing.
    Switch(WireFraming),
    /// A `shutdown` acknowledgement.
    Shutdown,
}

/// [`execute_with_state`] without pipelining state — the entry point
/// for strict request/response transports (HTTP), where deferred acks
/// are rejected at parse time and `flush` trivially reports zero.
pub(crate) fn execute(
    registry: &SessionRegistry,
    config: &ServiceConfig,
    transport: &TransportMetrics,
    fed: Option<&FedState>,
    jobs: Option<&JobManager>,
    req: Request,
    out: &mut String,
) -> Result<ExecuteOutcome> {
    execute_with_state(
        registry,
        config,
        transport,
        fed,
        jobs,
        &mut ConnState::new(),
        req,
        out,
    )
}

/// Executes one request against the registry, writing the response into
/// `out`. `state` only matters for `flush` (which consumes the
/// watermark); deferred submits never reach here — the dispatcher
/// routes them through [`execute_deferred`].
#[allow(clippy::too_many_arguments)] // the shared server context reads better flat than bundled
fn execute_with_state(
    registry: &SessionRegistry,
    config: &ServiceConfig,
    transport: &TransportMetrics,
    fed: Option<&FedState>,
    jobs: Option<&JobManager>,
    state: &mut ConnState,
    req: Request,
    out: &mut String,
) -> Result<ExecuteOutcome> {
    match req {
        Request::Ping => write_ok_response(out, vec![("pong", true.into())]),
        Request::Hello { framing } => {
            // The acknowledgement goes out in the *current* framing;
            // every byte after it is in the negotiated one. HTTP has no
            // hello route, so only the line-protocol front-ends (and
            // the reactor) can ever reach this arm.
            write_ok_response(out, vec![("framing", framing.wire_name().into())]);
            return Ok(ExecuteOutcome::Switch(framing));
        }
        Request::Flush => {
            // On a federated node the flush is also the replication
            // barrier: every forwarded batch must be confirmed by its
            // owner before the watermark is reported back. A barrier
            // failure (an owner stayed unreachable through resync
            // retries) poisons the watermark like any deferred error —
            // the client retries the flush, and the links resend past
            // the owners' watermarks, so nothing is lost or recounted.
            if let Some(fed) = fed {
                if let Err(e) = fed.barrier_all() {
                    state.error.get_or_insert(e);
                }
            }
            let (accepted, batches, error) = state.reset();
            write_flush_response(out, accepted, batches, error.as_ref());
            return Ok(ExecuteOutcome::Flush);
        }
        Request::CreateSession {
            schema,
            mechanism,
            shards,
            seed,
            session,
        } => {
            let specs: Vec<(&str, u32)> = schema.iter().map(|(n, c)| (n.as_str(), *c)).collect();
            let built = Schema::new(specs)?;
            if built.domain_size() > config.max_session_domain {
                return Err(ServiceError::InvalidRequest(format!(
                    "schema domain size {} exceeds this server's limit of {} cells",
                    built.domain_size(),
                    config.max_session_domain
                )));
            }
            // With persistence, eviction is two-phase: victims stay
            // registered (retired, refusing ingest) until their spill
            // snapshot lands, so a concurrent close_session can still
            // find them — its closed mark makes the in-flight spill
            // refuse under the persist gate, and an acknowledged close
            // can never be resurrected by the spill.
            let deferred_evictions =
                session.is_some() || fed.is_some() || config.persist_dir.is_some();
            let created = if let Some(id) = session {
                // An explicit id: a replicated create from a federation
                // coordinator (never re-federated — that is what keeps
                // replication from cascading), or an embedder pinning
                // ids.
                registry.create_deferred_with_id(
                    id,
                    built,
                    mechanism,
                    shards.unwrap_or(config.default_shards),
                    seed.unwrap_or(config.default_seed),
                    config.max_dense_domain,
                )?
            } else if let Some(fed) = fed {
                fed.create_session(
                    registry,
                    &schema,
                    built,
                    mechanism,
                    shards.unwrap_or(config.default_shards),
                    seed.unwrap_or(config.default_seed),
                    config.max_dense_domain,
                )?
            } else if config.persist_dir.is_some() {
                registry.create_deferred(
                    built,
                    mechanism,
                    shards.unwrap_or(config.default_shards),
                    seed.unwrap_or(config.default_seed),
                    config.max_dense_domain,
                )?
            } else {
                registry.create(
                    built,
                    mechanism,
                    shards.unwrap_or(config.default_shards),
                    seed.unwrap_or(config.default_seed),
                    config.max_dense_domain,
                )?
            };
            // Spill LRU-evicted sessions to disk before they drop, so
            // an eviction is a demotion, not data loss. If a spill
            // fails (full disk, permissions), roll the create back —
            // abort the un-spilled evictions, drop the new session —
            // and fail the request: silently discarding an evicted
            // session's acknowledged records would be worse than
            // refusing a new session. (Victims spilled before the
            // failure are already safe on disk and stay evicted.)
            if let Some(dir) = &config.persist_dir {
                for (i, evicted) in created.evicted.iter().enumerate() {
                    match persist::save_session_faulted(dir, evicted, &config.fault_plan) {
                        // A concurrent close deleted the session's
                        // snapshot and owns its fate; the refused spill
                        // is correct, just settle the eviction.
                        Ok(_) => {
                            registry.commit_eviction(evicted.id());
                        }
                        Err(_) if evicted.is_closed() => {
                            registry.commit_eviction(evicted.id());
                        }
                        Err(e) => {
                            registry.remove(created.session.id());
                            for victim in &created.evicted[i..] {
                                if !victim.is_closed() {
                                    registry.abort_eviction(victim);
                                }
                            }
                            return Err(ServiceError::Snapshot(format!(
                                "refusing to evict session {} without a spill snapshot \
                                 (create rolled back): {e}",
                                evicted.id()
                            )));
                        }
                    }
                }
            } else if deferred_evictions {
                // A deferred-eviction create without persistence has
                // nothing to spill; settle the victims immediately.
                for evicted in &created.evicted {
                    registry.commit_eviction(evicted.id());
                }
            }
            let session = created.session;
            let mut pairs = vec![
                ("session", session.id().into()),
                ("shards", session.num_shards().into()),
                ("gamma", session.mechanism().gamma().into()),
                ("domain_size", session.schema().domain_size().into()),
            ];
            if !created.evicted.is_empty() {
                pairs.push((
                    "evicted",
                    Value::Array(created.evicted.iter().map(|s| s.id().into()).collect()),
                ));
            }
            write_ok_response(out, pairs)
        }
        Request::Submit {
            session,
            records,
            pre_perturbed,
            shard,
            origin,
            seq,
            deferred: _,
        } => {
            if let (Some(origin), Some(seq)) = (origin, seq) {
                // A forwarded replication batch: apply locally on the
                // deterministic shard, claiming the (origin, seq)
                // watermark. A duplicate retry is acked as accepted —
                // its records are already counted — with the fact
                // surfaced for observability.
                let session = registry.get(session)?;
                let fresh =
                    session.submit_slices_repl(records.iter(), pre_perturbed, origin, seq)?;
                let shard_used = (seq % session.num_shards() as u64) as usize;
                let mut pairs = vec![
                    ("accepted", records.len().into()),
                    ("shard", shard_used.into()),
                ];
                if !fresh {
                    pairs.push(("duplicate", true.into()));
                }
                write_ok_response(out, pairs)
            } else if let Some(fed) = fed {
                // A client-facing submit on a federated node: route by
                // the session's owners (any `shard` hint is a
                // single-node concept and is superseded by the
                // deterministic federation routing).
                let (accepted, routed) =
                    fed.submit(registry, session, &records, pre_perturbed, false)?;
                let mut pairs = vec![("accepted", accepted.into())];
                match routed {
                    Routed::Local { shard } => pairs.push(("shard", shard.into())),
                    Routed::Forwarded { peer } => pairs.push(("peer", peer.into())),
                }
                write_ok_response(out, pairs)
            } else {
                let session = registry.get(session)?;
                let shard_used = match shard {
                    Some(idx) => {
                        session.submit_slices_to_shard(idx, records.iter(), pre_perturbed)?;
                        idx
                    }
                    None => session.submit_slices(records.iter(), pre_perturbed)?,
                };
                write_ok_response(
                    out,
                    vec![
                        ("accepted", records.len().into()),
                        ("shard", shard_used.into()),
                    ],
                )
            }
        }
        Request::Reconstruct {
            session,
            method,
            clamp,
            allow_partial,
        } => {
            if let Some(fed) = fed {
                let (rec, coverage) =
                    fed.reconstruct(registry, session, method, clamp, allow_partial)?;
                write_reconstruction_response_with(out, &rec, coverage.as_ref())
            } else {
                // Single node: every partition is local, so
                // `allow_partial` is accepted and vacuously satisfied.
                let session = registry.get(session)?;
                let rec = session.reconstruct(method, clamp)?;
                write_reconstruction_response(out, &rec)
            }
        }
        Request::Stats {
            session,
            allow_partial,
        } => {
            if let Some(fed) = fed {
                let (stats, coverage) = fed.stats(registry, session, allow_partial)?;
                write_stats_response_with(out, &stats, coverage.as_ref())
            } else {
                let session = registry.get(session)?;
                write_stats_response(out, &session.stats())
            }
        }
        Request::Metrics { session: None } => {
            let peers = fed.map(|f| f.peer_reports());
            write_transport_metrics_response(out, &transport.report(), peers.as_deref())
        }
        Request::Metrics {
            session: Some(session),
        } => {
            let session = registry.get(session)?;
            write_metrics_response(
                out,
                session.id(),
                session.stats().total,
                &session.metrics_report(),
            )
        }
        Request::ListSessions => {
            let summaries: Vec<_> = registry.all().iter().map(|s| s.summary()).collect();
            write_list_response(out, &summaries)
        }
        Request::Persist { session } => {
            let dir = config.persist_dir.as_deref().ok_or_else(|| {
                ServiceError::InvalidRequest(
                    "this server has no persistence directory configured".into(),
                )
            })?;
            let persisted = match session {
                Some(id) => {
                    let session = registry.get(id)?;
                    persist::save_session_faulted(dir, &session, &config.fault_plan)?;
                    vec![id]
                }
                None => {
                    let (persisted, failed) =
                        persist_all_sessions(dir, registry, &config.fault_plan);
                    // An explicit persist request must not report
                    // success while snapshots silently failed — the
                    // caller may be about to kill the server trusting
                    // everything is on disk.
                    if let Some((id, e)) = failed.first() {
                        return Err(ServiceError::Snapshot(format!(
                            "persisted {:?} but {} session(s) failed, first: session {id}: {e}",
                            persisted,
                            failed.len()
                        )));
                    }
                    persisted
                }
            };
            write_ok_response(
                out,
                vec![
                    (
                        "persisted",
                        Value::Array(persisted.into_iter().map(Value::from).collect()),
                    ),
                    ("dir", dir.display().to_string().into()),
                ],
            )
        }
        Request::CloseSession { session, local } => {
            // `remove` marks the session closed before we delete its
            // snapshot; deletion happens under the session's persist
            // gate, so a periodic save racing this close either
            // finished before (its file is deleted here) or starts
            // after (and refuses, seeing the closed flag). Either way a
            // closed session cannot resurrect on the next restart.
            let removed = registry.remove(session);
            let mut snapshot_deleted = false;
            if let Some(dir) = &config.persist_dir {
                let _gate = removed.as_ref().map(|s| s.persist_gate());
                // Deleting by id (not only via a live Arc) also lets a
                // client close a session that was LRU-evicted to disk —
                // otherwise a spilled session's perturbed counts could
                // never be deleted and would resurrect on restart.
                snapshot_deleted = persist::remove_session_file(dir, session);
            }
            let mut closed = removed.is_some() || snapshot_deleted;
            // A client-facing close fans out to every peer (marked
            // `local` so nobody re-federates it). Best-effort: a down
            // peer keeps its — at worst empty — copy until an operator
            // closes it directly.
            if !local {
                if let Some(fed) = fed {
                    closed |= fed.close_fanout(session);
                }
            }
            write_ok_response(out, vec![("closed", closed.into())])
        }
        Request::ClusterStatus => match fed {
            Some(fed) => write_ok_response(out, fed.cluster_status_pairs()),
            None => write_ok_response(out, vec![("federated", false.into())]),
        },
        Request::SyncSession { session } => {
            // Always strictly local: a federation coordinator calls
            // this on each owner and merges. Counts ship sparse —
            // `[index, count]` pairs for the nonzero cells only.
            let session_ref = registry.get(session)?;
            let snapshot = session_ref.snapshot();
            let counts: Vec<Value> = snapshot
                .counts()
                .iter()
                .enumerate()
                .filter(|(_, &c)| c != 0.0)
                .map(|(i, &c)| Value::Array(vec![i.into(), c.into()]))
                .collect();
            write_ok_response(
                out,
                vec![
                    ("session", session.into()),
                    ("total", snapshot.n().into()),
                    ("counts", Value::Array(counts)),
                ],
            )
        }
        Request::ReplStatus { session, origin } => {
            // Always strictly local: the per-shard replication
            // watermarks this node has applied from `origin`, the
            // anchor for anti-entropy resends after a reconnect.
            let session_ref = registry.get(session)?;
            let marks = session_ref.repl_status(origin);
            let durable = session_ref.durable_repl_status(origin);
            write_ok_response(
                out,
                vec![
                    ("session", session.into()),
                    ("origin", origin.into()),
                    (
                        "marks",
                        Value::Array(marks.into_iter().map(Value::from).collect()),
                    ),
                    (
                        "durable",
                        Value::Array(durable.into_iter().map(Value::from).collect()),
                    ),
                ],
            )
        }
        Request::MineRules { session, spec } => {
            // The submission itself is cheap (validation + queue
            // insert); the mining run happens on the job pool's own
            // workers, so this arm never blocks a transport or offload
            // thread. The response carries only the job id.
            let jobs = jobs_or_reject(jobs)?;
            let session_ref = registry.get(session)?;
            let rec = jobs.submit_mine_rules(session_ref, spec)?;
            write_ok_response(
                out,
                vec![("job", rec.id().into()), ("state", "queued".into())],
            )
        }
        Request::Classify { session, target } => {
            let jobs = jobs_or_reject(jobs)?;
            let session_ref = registry.get(session)?;
            let target = resolve_attr(session_ref.schema(), &target)?;
            let rec = jobs.submit_classify(session_ref, target)?;
            write_ok_response(
                out,
                vec![("job", rec.id().into()), ("state", "queued".into())],
            )
        }
        Request::JobStatus { job } => {
            write_ok_response(out, jobs_or_reject(jobs)?.status_pairs(job)?)
        }
        Request::JobResult { job } => {
            write_ok_response(out, jobs_or_reject(jobs)?.result_pairs(job)?)
        }
        Request::JobCancel { job } => {
            write_ok_response(out, jobs_or_reject(jobs)?.cancel_pairs(job)?)
        }
        Request::ListJobs => write_ok_response(out, jobs_or_reject(jobs)?.list_pairs()),
        Request::Shutdown => {
            write_ok_response(out, vec![("shutting_down", true.into())]);
            return Ok(ExecuteOutcome::Shutdown);
        }
    }
    Ok(ExecuteOutcome::Respond)
}

/// The background-job ops need a [`JobManager`]; embedders driving the
/// bare [`dispatch`] wrapper do not carry one, and fail in-band.
fn jobs_or_reject(jobs: Option<&JobManager>) -> Result<&JobManager> {
    jobs.ok_or_else(|| ServiceError::InvalidRequest("this server has no job executor".into()))
}

/// Resolves an [`AttrRef`] against a session's schema.
fn resolve_attr(schema: &Schema, target: &AttrRef) -> Result<usize> {
    match target {
        AttrRef::Index(i) => Ok(*i),
        AttrRef::Name(name) => (0..schema.num_attributes())
            .find(|&j| schema.attribute(j).name() == name)
            .ok_or_else(|| ServiceError::InvalidRequest(format!("unknown attribute `{name}`"))),
    }
}

/// A small fixed pool of worker threads the reactor hands complete
/// request frames to, so the event loop itself never executes dispatch
/// — and, under federation, never blocks on a peer-link barrier or a
/// persistence fsync. Threaded front-ends dispatch inline on their
/// per-connection worker and leave this pool idle.
///
/// Sized by [`crate::config::ServiceConfig::offload_threads`]. Dropping
/// the executor drains every queued job (workers stop only when the
/// queue is empty), then joins the workers — queued responses are never
/// silently discarded by an orderly shutdown.
pub(crate) struct OffloadExecutor {
    inner: std::sync::Arc<OffloadInner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

struct OffloadInner {
    jobs: std::sync::Mutex<std::collections::VecDeque<OffloadJob>>,
    ready: std::sync::Condvar,
    stop: std::sync::atomic::AtomicBool,
}

type OffloadJob = Box<dyn FnOnce() + Send + 'static>;

impl OffloadExecutor {
    /// Starts a pool of `threads.max(1)` workers.
    pub(crate) fn new(threads: usize) -> Self {
        let inner = std::sync::Arc::new(OffloadInner {
            jobs: std::sync::Mutex::new(std::collections::VecDeque::new()),
            ready: std::sync::Condvar::new(),
            stop: std::sync::atomic::AtomicBool::new(false),
        });
        let workers = (0..threads.max(1))
            .map(|i| {
                let inner = std::sync::Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("frapp-offload-{i}"))
                    .spawn(move || offload_worker_loop(&inner))
                    // analyze: allow(panic_path): runs once at server startup; a host that cannot spawn a thread cannot serve at all
                    .expect("spawning an offload worker thread")
            })
            .collect();
        OffloadExecutor { inner, workers }
    }

    /// Enqueues one job for the pool; never blocks the caller.
    pub(crate) fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        let mut jobs = self
            .inner
            .jobs
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        jobs.push_back(Box::new(job));
        drop(jobs);
        self.inner.ready.notify_one();
    }
}

fn offload_worker_loop(inner: &OffloadInner) {
    loop {
        let job = {
            let mut jobs = inner
                .jobs
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            loop {
                if let Some(job) = jobs.pop_front() {
                    break Some(job);
                }
                // Stop only once the queue is drained, so Drop delivers
                // every job that was queued before the stop flag.
                if inner.stop.load(std::sync::atomic::Ordering::SeqCst) {
                    break None;
                }
                jobs = inner
                    .ready
                    .wait(jobs)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        match job {
            Some(job) => job(),
            None => return,
        }
    }
}

impl Drop for OffloadExecutor {
    fn drop(&mut self) {
        self.inner
            .stop
            .store(true, std::sync::atomic::Ordering::SeqCst);
        self.inner.ready.notify_all();
        // A queued job can own the last handle to the executor (via the
        // reactor's shared state), so this destructor may run *on* a
        // worker thread — joining that thread would deadlock (EDEADLK).
        // Skip self; that worker is already past its loop and exits as
        // soon as this drop returns.
        let me = std::thread::current().id();
        for w in self.workers.drain(..) {
            if w.thread().id() != me {
                let _ = w.join();
            }
        }
    }
}

/// Snapshots every live session, returning the ids persisted and the
/// per-session failures. Sessions closed between the registry scan and
/// the write correctly refuse their snapshot and appear in neither
/// list.
pub(crate) fn persist_all_sessions(
    dir: &std::path::Path,
    registry: &SessionRegistry,
    fault: &crate::fault::FaultPlan,
) -> (Vec<u64>, Vec<(u64, ServiceError)>) {
    let mut persisted = Vec::new();
    let mut failed = Vec::new();
    for session in registry.all() {
        match persist::save_session_faulted(dir, &session, fault) {
            Ok(_) => persisted.push(session.id()),
            Err(_) if session.is_closed() => {}
            Err(e) => failed.push((session.id(), e)),
        }
    }
    (persisted, failed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn harness() -> (SessionRegistry, ServiceConfig) {
        (SessionRegistry::new(), ServiceConfig::default())
    }

    fn ok_of(response: &str) -> json::Value {
        let v = json::parse(response).unwrap();
        assert_eq!(
            v.get("ok").and_then(json::Value::as_bool),
            Some(true),
            "expected success, got {response}"
        );
        v
    }

    fn create(reg: &SessionRegistry, cfg: &ServiceConfig) -> u64 {
        let (resp, _) = dispatch(
            reg,
            cfg,
            r#"{"op":"create_session","schema":[["a",3],["b",2]],"gamma":19.0,"shards":1}"#,
        );
        ok_of(&resp)
            .get("session")
            .and_then(json::Value::as_u64)
            .unwrap()
    }

    #[test]
    fn offload_executor_runs_every_job_and_drains_on_drop() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let ran = Arc::new(AtomicUsize::new(0));
        let pool = OffloadExecutor::new(2);
        for _ in 0..64 {
            let ran = Arc::clone(&ran);
            pool.spawn(move || {
                ran.fetch_add(1, Ordering::SeqCst);
            });
        }
        // Drop joins the workers only after the queue is empty, so
        // every queued job must have run by the time it returns.
        drop(pool);
        assert_eq!(ran.load(Ordering::SeqCst), 64);
        // A zero-thread request still gets one worker.
        let pool = OffloadExecutor::new(0);
        let ran2 = Arc::new(AtomicUsize::new(0));
        let r = Arc::clone(&ran2);
        pool.spawn(move || {
            r.fetch_add(1, Ordering::SeqCst);
        });
        drop(pool);
        assert_eq!(ran2.load(Ordering::SeqCst), 1);
    }

    /// A dispatch harness with one persistent connection state, like a
    /// real connection loop.
    struct Conn {
        transport: TransportMetrics,
        state: ConnState,
    }

    impl Conn {
        fn new() -> Self {
            Conn {
                transport: TransportMetrics::new(),
                state: ConnState::new(),
            }
        }

        fn send(
            &mut self,
            reg: &SessionRegistry,
            cfg: &ServiceConfig,
            line: &str,
        ) -> (String, Outcome) {
            let mut out = String::new();
            let outcome = dispatch_into(
                reg,
                cfg,
                &self.transport,
                None,
                None,
                &mut self.state,
                line,
                &mut out,
            );
            (out, outcome)
        }
    }

    #[test]
    fn deferred_submits_are_quiet_until_flush() {
        let (reg, cfg) = harness();
        let sid = create(&reg, &cfg);
        let mut conn = Conn::new();
        for _ in 0..3 {
            let (out, outcome) = conn.send(
                &reg,
                &cfg,
                &format!(
                    r#"{{"op":"submit","session":{sid},"records":[[0,0],[1,1]],"pre_perturbed":true,"ack":"deferred"}}"#
                ),
            );
            assert_eq!(outcome, Outcome::Quiet);
            assert!(out.is_empty(), "deferred submits must not respond: {out}");
        }
        let (out, outcome) = conn.send(&reg, &cfg, r#"{"op":"flush"}"#);
        assert_eq!(outcome, Outcome::Reply);
        let v = ok_of(&out);
        assert_eq!(v.get("accepted").and_then(json::Value::as_u64), Some(6));
        assert_eq!(v.get("batches").and_then(json::Value::as_u64), Some(3));
        assert_eq!(conn.transport.report().deferred_batches, 3);

        // The flush reset the watermark; a second flush reports zero.
        let (out, _) = conn.send(&reg, &cfg, r#"{"op":"flush"}"#);
        let v = ok_of(&out);
        assert_eq!(v.get("accepted").and_then(json::Value::as_u64), Some(0));

        // And the records actually landed.
        let (out, _) = conn.send(&reg, &cfg, &format!(r#"{{"op":"stats","session":{sid}}}"#));
        assert_eq!(
            ok_of(&out).get("total").and_then(json::Value::as_u64),
            Some(6)
        );
    }

    #[test]
    fn deferred_failure_freezes_the_watermark_as_a_contiguous_prefix() {
        let (reg, cfg) = harness();
        let sid = create(&reg, &cfg);
        let mut conn = Conn::new();
        let submit = |records: &str| {
            format!(
                r#"{{"op":"submit","session":{sid},"records":{records},"pre_perturbed":true,"ack":"deferred"}}"#
            )
        };
        // Batch 1 lands (2 records), batch 2 fails mid-way (1 of 2
        // counted), batch 3 must be dropped even though it is valid.
        let (_, o) = conn.send(&reg, &cfg, &submit("[[0,0],[1,1]]"));
        assert_eq!(o, Outcome::Quiet);
        let (_, o) = conn.send(&reg, &cfg, &submit("[[2,0],[9,9]]"));
        assert_eq!(o, Outcome::Quiet);
        let (out, o) = conn.send(&reg, &cfg, &submit("[[2,1],[0,1]]"));
        assert_eq!(o, Outcome::Quiet);
        assert!(out.is_empty());

        let (out, _) = conn.send(&reg, &cfg, r#"{"op":"flush"}"#);
        let v = json::parse(&out).unwrap();
        assert_eq!(v.get("ok").and_then(json::Value::as_bool), Some(false));
        // Watermark = batch 1 (2) + batch 2's accepted prefix (1): a
        // contiguous prefix of the 6 submitted records.
        assert_eq!(v.get("accepted").and_then(json::Value::as_u64), Some(3));
        assert_eq!(v.get("batches").and_then(json::Value::as_u64), Some(3));
        assert!(v
            .get("error")
            .and_then(json::Value::as_str)
            .unwrap()
            .contains("counted"));

        // The session holds exactly the prefix — batch 3 did not land.
        let (out, _) = conn.send(&reg, &cfg, &format!(r#"{{"op":"stats","session":{sid}}}"#));
        assert_eq!(
            ok_of(&out).get("total").and_then(json::Value::as_u64),
            Some(3)
        );

        // Retry per the contract: resubmit everything past the
        // watermark (the fixed remainder), synchronously or deferred.
        let (out, _) = conn.send(
            &reg,
            &cfg,
            &format!(
                r#"{{"op":"submit","session":{sid},"records":[[2,1],[2,1],[0,1]],"pre_perturbed":true}}"#
            ),
        );
        ok_of(&out);
        let (out, _) = conn.send(&reg, &cfg, &format!(r#"{{"op":"stats","session":{sid}}}"#));
        assert_eq!(
            ok_of(&out).get("total").and_then(json::Value::as_u64),
            Some(6)
        );
    }

    #[test]
    fn sync_op_with_pending_deferred_state_carries_the_watermark() {
        let (reg, cfg) = harness();
        let sid = create(&reg, &cfg);
        let mut conn = Conn::new();
        let (_, o) = conn.send(
            &reg,
            &cfg,
            &format!(
                r#"{{"op":"submit","session":{sid},"records":[[0,0]],"pre_perturbed":true,"ack":"deferred"}}"#
            ),
        );
        assert_eq!(o, Outcome::Quiet);
        // A synchronous stats request doubles as the flush report.
        let (out, _) = conn.send(&reg, &cfg, &format!(r#"{{"op":"stats","session":{sid}}}"#));
        let v = ok_of(&out);
        assert_eq!(
            v.get("deferred_accepted").and_then(json::Value::as_u64),
            Some(1)
        );
        // ...and consumes the watermark.
        let (out, _) = conn.send(&reg, &cfg, r#"{"op":"flush"}"#);
        assert_eq!(
            ok_of(&out).get("accepted").and_then(json::Value::as_u64),
            Some(0)
        );
    }

    #[test]
    fn invalid_deferred_submit_stays_quiet_and_reports_at_flush() {
        let (reg, cfg) = harness();
        let mut conn = Conn::new();
        // Unknown session: a sync submit would answer in-band, but the
        // pipelining client is not reading — the error must wait for
        // the flush.
        let (out, o) = conn.send(
            &reg,
            &cfg,
            r#"{"op":"submit","session":404,"records":[[0,0]],"ack":"deferred"}"#,
        );
        assert_eq!(o, Outcome::Quiet);
        assert!(out.is_empty());
        // So must a submit whose fields do not even validate.
        let (out, o) = conn.send(
            &reg,
            &cfg,
            r#"{"op":"submit","session":404,"records":"nope","ack":"deferred"}"#,
        );
        assert_eq!(o, Outcome::Quiet);
        assert!(out.is_empty());
        let (out, _) = conn.send(&reg, &cfg, r#"{"op":"flush"}"#);
        let v = json::parse(&out).unwrap();
        assert_eq!(v.get("ok").and_then(json::Value::as_bool), Some(false));
        assert_eq!(v.get("accepted").and_then(json::Value::as_u64), Some(0));
        assert_eq!(v.get("batches").and_then(json::Value::as_u64), Some(2));
    }

    #[test]
    fn session_less_metrics_reports_transport_counters() {
        let (reg, cfg) = harness();
        let mut conn = Conn::new();
        conn.transport.record_tcp_request();
        conn.transport.record_shed();
        let (out, _) = conn.send(&reg, &cfg, r#"{"op":"metrics"}"#);
        let v = ok_of(&out);
        let t = v.get("transport").unwrap();
        assert_eq!(t.get("tcp_requests").and_then(json::Value::as_u64), Some(1));
        assert_eq!(t.get("sheds").and_then(json::Value::as_u64), Some(1));
    }
}
