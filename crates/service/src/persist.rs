//! Session snapshot persistence.
//!
//! A long-lived collection server must survive restarts without losing
//! the perturbed counts its clients streamed in. This module writes one
//! self-describing JSON document per session — schema, mechanism, seed,
//! and per-shard `(ingested, rng_state, counts)` — plus an append-only
//! *delta* file of sparse per-shard count increments, and reads them
//! back into a [`CollectionSession`] whose deterministic replay
//! contract still holds across the restart.
//!
//! ## Format (`frapp-session`, version 2)
//!
//! ```json
//! {"format":"frapp-session","version":2,"session":3,"seed":7,"flush_seq":4,
//!  "mechanism":{"kind":"det","gamma":19.0},
//!  "schema":[["age",8],["sex",2]],
//!  "shards":[{"ingested":2,"rng_draws":2,
//!             "rng_state":["0x1a2b...","0x...","0x...","0x..."],
//!             "counts":[0,1,...]}]}
//! ```
//!
//! `rng_state` holds each shard generator's native xoshiro state words
//! (hex strings — they exceed JSON's exact-integer range), so recovery
//! restores the stream position in O(1) with **zero** fast-forward
//! draws. Version-1 snapshots (which recorded only `rng_draws`) are
//! still read: their recovery fast-forwards a freshly seeded generator
//! by that many draws — exact, but O(draws).
//!
//! ## Incremental deltas (`session-<id>.delta.jsonl`)
//!
//! The periodic persister does not rewrite the whole count vector on
//! every tick. After a full snapshot (sequence number `flush_seq`), each
//! tick appends one line per *dirty* shard:
//!
//! ```json
//! {"format":"frapp-session-delta","seq":4,"shard":0,"ingested":120,
//!  "rng_draws":180,"rng_state":["0x..","0x..","0x..","0x.."],
//!  "cells":[[3,2],[17,1]]}
//! ```
//!
//! `cells` are the sparse count increments since the shard's previous
//! flush; `ingested`/`rng_state` are the shard's absolute position
//! after them. Recovery loads the base snapshot and replays, in order,
//! every delta line whose `seq` matches the base's `flush_seq` — lines
//! from an older base (a truncation that failed mid-crash) and a torn
//! trailing line (a crash mid-append) are ignored. Any full snapshot
//! (eviction spill, on-demand `persist`, clean shutdown) folds the
//! deltas in, bumps `flush_seq` and removes the delta file.
//!
//! Counts are whole numbers by construction (every ingest adds exactly
//! 1.0 to one cell) and the JSON writer emits integral `f64`s without a
//! fraction, so the on-disk representation is exact. Files are written
//! to `<dir>/session-<id>.json` via a temp-file-and-rename so a crash
//! mid-write never corrupts the previous snapshot; after the rename
//! the parent directory is fsynced too, so the *entry* pointing at the
//! new base is as durable as its bytes. Every file operation can be
//! failed deterministically through an injected [`FaultPlan`] (the
//! `*_faulted` entry points). Unknown versions are
//! rejected at load; unreadable files are skipped by [`load_all`] (a
//! corrupt snapshot must not brick the whole server) and reported to
//! the caller.

use crate::error::{Result, ServiceError};
use crate::fault::{FaultPlan, FaultSite};
use crate::json::{self, object, Value};
use crate::session::{CollectionSession, Mechanism, ShardDump};
use crate::shard::ShardDelta;
use frapp_core::Schema;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// The `format` discriminator written into every snapshot.
pub const FORMAT: &str = "frapp-session";
/// The `format` discriminator written into every delta line.
pub const DELTA_FORMAT: &str = "frapp-session-delta";
/// The snapshot format version this build writes. Version 1 (draw-count
/// RNG recovery, no deltas) is still read.
pub const VERSION: u64 = 2;

/// The snapshot file name for a session id.
pub fn session_file_name(id: u64) -> String {
    format!("session-{id}.json")
}

/// The snapshot path for a session id under `dir`.
pub fn session_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(session_file_name(id))
}

/// The delta file name for a session id.
pub fn delta_file_name(id: u64) -> String {
    format!("session-{id}.delta.jsonl")
}

/// The delta file path for a session id under `dir`.
pub fn delta_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(delta_file_name(id))
}

/// Fsyncs `dir` itself, making a rename, create or removal of an
/// entry inside it durable. Syncing the *file* is not enough: the
/// directory entry pointing at it lives in the directory's own
/// metadata, which the kernel flushes separately — after a crash, a
/// fully synced snapshot can still be unreachable under its final
/// name if the rename never hit the journal.
fn fsync_dir(dir: &Path) -> std::io::Result<()> {
    #[cfg(unix)]
    {
        std::fs::File::open(dir)?.sync_all()
    }
    #[cfg(not(unix))]
    {
        // Directories cannot be opened as files on other platforms;
        // the rename itself is the best durability available there.
        let _ = dir;
        Ok(())
    }
}

/// The session id encoded in a snapshot file name
/// (`session-<id>.json`), or `None` for other files.
pub fn session_id_from_file_name(name: &str) -> Option<u64> {
    name.strip_prefix("session-")?
        .strip_suffix(".json")?
        .parse()
        .ok()
}

fn mechanism_value(mechanism: Mechanism) -> Value {
    match mechanism {
        Mechanism::Deterministic { gamma } => {
            object(vec![("kind", "det".into()), ("gamma", gamma.into())])
        }
        Mechanism::Randomized {
            gamma,
            alpha_fraction,
        } => object(vec![
            ("kind", "ran".into()),
            ("gamma", gamma.into()),
            ("alpha_fraction", alpha_fraction.into()),
        ]),
    }
}

fn parse_mechanism(v: &Value) -> Result<Mechanism> {
    let m = v
        .get("mechanism")
        .ok_or_else(|| ServiceError::Snapshot("missing `mechanism`".into()))?;
    let gamma = m
        .get("gamma")
        .and_then(Value::as_f64)
        .ok_or_else(|| ServiceError::Snapshot("mechanism is missing numeric `gamma`".into()))?;
    match m.get("kind").and_then(Value::as_str) {
        Some("det") => Ok(Mechanism::Deterministic { gamma }),
        Some("ran") => Ok(Mechanism::Randomized {
            gamma,
            alpha_fraction: m
                .get("alpha_fraction")
                .and_then(Value::as_f64)
                .ok_or_else(|| {
                    ServiceError::Snapshot(
                        "randomized mechanism is missing `alpha_fraction`".into(),
                    )
                })?,
        }),
        other => Err(ServiceError::Snapshot(format!(
            "unknown mechanism kind {other:?}"
        ))),
    }
}

/// RNG state words as an array of hex strings — they are full-range
/// `u64`s, beyond the 2^53 span JSON numbers can carry exactly.
fn state_words_value(words: [u64; 4]) -> Value {
    Value::Array(
        words
            .iter()
            .map(|w| Value::String(format!("{w:#x}")))
            .collect(),
    )
}

fn parse_state_words(v: &Value) -> Result<[u64; 4]> {
    let arr = v
        .as_array()
        .filter(|a| a.len() == 4)
        .ok_or_else(|| ServiceError::Snapshot("`rng_state` must be a 4-word array".into()))?;
    let mut words = [0u64; 4];
    for (slot, value) in words.iter_mut().zip(arr) {
        let text = value
            .as_str()
            .and_then(|s| s.strip_prefix("0x"))
            .ok_or_else(|| {
                ServiceError::Snapshot("`rng_state` words must be 0x-prefixed hex strings".into())
            })?;
        *slot = u64::from_str_radix(text, 16)
            .map_err(|_| ServiceError::Snapshot("invalid `rng_state` hex word".into()))?;
    }
    Ok(words)
}

/// Serializes one session into its snapshot document.
fn snapshot_value(session: &CollectionSession, flush_seq: u64, dumps: &[ShardDump]) -> Value {
    let schema = Value::Array(
        session
            .schema()
            .attributes()
            .iter()
            .map(|a| Value::Array(vec![a.name().into(), a.cardinality().into()]))
            .collect(),
    );
    let shards = Value::Array(
        dumps
            .iter()
            .map(|d| {
                let mut fields = vec![
                    ("ingested", d.ingested.into()),
                    ("rng_draws", d.rng_draws.into()),
                    (
                        "rng_state",
                        state_words_value(d.rng_state.expect("live dumps carry state words")),
                    ),
                    (
                        "counts",
                        Value::Array(d.counts.iter().copied().map(Value::Number).collect()),
                    ),
                ];
                // Only federated shards carry watermarks; standalone
                // snapshots keep the exact pre-federation layout.
                if !d.repl.is_empty() {
                    fields.push(("repl", repl_value(&d.repl)));
                }
                object(fields)
            })
            .collect(),
    );
    object(vec![
        ("format", FORMAT.into()),
        ("version", VERSION.into()),
        ("session", session.id().into()),
        ("seed", session.seed().into()),
        ("flush_seq", flush_seq.into()),
        ("mechanism", mechanism_value(session.mechanism())),
        ("schema", schema),
        ("shards", shards),
    ])
}

/// Replication watermarks as `[[origin, seq], ...]` pairs.
fn repl_value(repl: &[(u64, u64)]) -> Value {
    Value::Array(
        repl.iter()
            .map(|&(origin, seq)| Value::Array(vec![origin.into(), seq.into()]))
            .collect(),
    )
}

fn parse_repl(v: &Value) -> Result<Vec<(u64, u64)>> {
    let Some(arr) = v.get("repl").and_then(Value::as_array) else {
        return Ok(Vec::new()); // pre-federation state: no watermarks
    };
    arr.iter()
        .map(|pair| {
            let pair = pair.as_array().filter(|p| p.len() == 2).ok_or_else(|| {
                ServiceError::Snapshot("`repl` entries must be [origin, seq] pairs".into())
            })?;
            match (pair[0].as_u64(), pair[1].as_u64()) {
                (Some(origin), Some(seq)) => Ok((origin, seq)),
                _ => Err(ServiceError::Snapshot(
                    "`repl` origins and seqs must be integers".into(),
                )),
            }
        })
        .collect()
}

/// One delta line: sparse increments of one shard since its previous
/// flush, plus the shard's absolute position after them.
fn delta_line_value(seq: u64, delta: &ShardDelta) -> Value {
    let mut fields = vec![
        ("format", DELTA_FORMAT.into()),
        ("seq", seq.into()),
        ("shard", delta.shard.into()),
        ("ingested", delta.ingested.into()),
        ("rng_draws", delta.rng_draws.into()),
        ("rng_state", state_words_value(delta.rng_state)),
        (
            "cells",
            Value::Array(
                delta
                    .cells
                    .iter()
                    .map(|&(cell, inc)| Value::Array(vec![cell.into(), inc.into()]))
                    .collect(),
            ),
        ),
    ];
    if !delta.repl.is_empty() {
        fields.push(("repl", repl_value(&delta.repl)));
    }
    object(fields)
}

/// Writes a session snapshot into `dir`, atomically (a uniquely named
/// temp file + rename). Returns the snapshot path.
///
/// This is a *full* snapshot: pending per-shard deltas are folded in,
/// the session's flush sequence is bumped and the delta file is
/// removed, so the base file alone describes the session. Writes for
/// one session are serialized through the session's persist gate, so
/// concurrent writers (the periodic persister, an on-demand `persist`
/// op, an eviction spill) cannot interleave; and a session that was
/// explicitly closed refuses the write, so an in-flight periodic save
/// cannot resurrect a snapshot that `close_session` just deleted.
pub fn save_session(dir: &Path, session: &CollectionSession) -> Result<PathBuf> {
    save_session_faulted(dir, session, &FaultPlan::default())
}

/// [`save_session`] with a [`FaultPlan`] threaded through: the write,
/// the rename and the directory fsync each consult the plan first, so
/// tests and the soak harness can force deterministic persistence
/// failures at every stage of the snapshot protocol.
pub fn save_session_faulted(
    dir: &Path,
    session: &CollectionSession,
    fault: &FaultPlan,
) -> Result<PathBuf> {
    let _gate = session.persist_gate();
    save_session_locked(dir, session, fault)
}

/// [`save_session_faulted`] with the persist gate already held by the
/// caller.
fn save_session_locked(
    dir: &Path,
    session: &CollectionSession,
    fault: &FaultPlan,
) -> Result<PathBuf> {
    static TMP_COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    if session.is_closed() {
        return Err(ServiceError::Snapshot(format!(
            "session {} is closed; not writing a snapshot",
            session.id()
        )));
    }
    let seq = session.persist_seq() + 1;
    // Drain pending deltas under the shard locks: the full dump
    // includes their increments, so they must not be re-flushed on top
    // of the new base. If the write fails they are restored, keeping
    // the delta stream over the previous base complete.
    let (dumps, drained) = session.dump_shards_flushing();
    let mut renamed = false;
    let write = (|| -> Result<PathBuf> {
        fault.inject_io(FaultSite::PersistWrite)?;
        std::fs::create_dir_all(dir)?;
        let path = session_path(dir, session.id());
        let tmp = dir.join(format!(
            ".{}.{}.{}.tmp",
            session_file_name(session.id()),
            std::process::id(),
            TMP_COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(snapshot_value(session, seq, &dumps).to_json().as_bytes())?;
            file.write_all(b"\n")?;
            file.sync_all()?;
        }
        fault.inject_io(FaultSite::PersistRename)?;
        std::fs::rename(&tmp, &path)?;
        renamed = true;
        // The rename published the new base into the live filesystem,
        // but it is not crash-durable until the directory entry itself
        // is flushed.
        fault.inject_io(FaultSite::PersistSync)?;
        fsync_dir(dir)?;
        Ok(path)
    })();
    match write {
        Ok(path) => {
            session.set_persist_seq(seq);
            session.clear_needs_full_snapshot();
            // The synced snapshot makes every watermark it carries
            // durable; advertise that so replication forwarders can
            // truncate their replay history.
            let marks: Vec<Vec<(u64, u64)>> = dumps.iter().map(|d| d.repl.clone()).collect();
            session.record_durable_repl(&marks);
            // The new base supersedes every prior delta. A failed
            // removal is harmless: stale lines carry an older `seq`
            // and are ignored at load.
            let _ = std::fs::remove_file(delta_path(dir, session.id()));
            Ok(path)
        }
        Err(e) => {
            session.restore_deltas(&drained);
            if renamed {
                // The new base (with the bumped sequence) is already
                // visible on disk even though its durability could not
                // be confirmed. The session's own sequence stays
                // behind, so a later delta append would carry a stale
                // `seq` the next recovery ignores — force the next
                // flush to lay down a fresh full base instead.
                session.force_full_snapshot();
            }
            Err(e)
        }
    }
}

/// What one incremental flush did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushOutcome {
    /// No base snapshot existed yet, so a full one was written.
    FullSnapshot,
    /// This many dirty shards appended delta lines.
    Deltas(usize),
    /// Nothing to do — no shard was dirtied since the last flush.
    Clean,
}

/// The periodic persister's entry point: flushes a session
/// *incrementally*. The first flush of a session — and the first flush
/// after a recovery — writes a full base snapshot; later flushes
/// append one sparse delta line per dirty shard (O(cells touched) on
/// disk, instead of rewriting the whole count vector; the in-memory
/// scan per dirty shard is O(domain), same as the count dump a full
/// save would pay). A failed append restores the drained deltas so no
/// increment is ever dropped from the stream.
///
/// The post-recovery full save matters for durability: a recovered
/// session's delta file may end in a torn line (a crash mid-append),
/// and lines appended *behind* a torn tail would be unreachable to
/// every later recovery, which stops reading there. The fresh base
/// bumps the sequence and removes the old delta file, so new deltas
/// always land in a clean stream.
pub fn persist_session_incremental(
    dir: &Path,
    session: &CollectionSession,
) -> Result<FlushOutcome> {
    persist_session_incremental_faulted(dir, session, &FaultPlan::default())
}

/// [`persist_session_incremental`] with a [`FaultPlan`] threaded
/// through (see [`save_session_faulted`]).
pub fn persist_session_incremental_faulted(
    dir: &Path,
    session: &CollectionSession,
    fault: &FaultPlan,
) -> Result<FlushOutcome> {
    let _gate = session.persist_gate();
    if session.is_closed() {
        return Err(ServiceError::Snapshot(format!(
            "session {} is closed; not writing a snapshot",
            session.id()
        )));
    }
    if session.persist_seq() == 0 || session.needs_full_snapshot() {
        save_session_locked(dir, session, fault)?;
        return Ok(FlushOutcome::FullSnapshot);
    }
    let deltas = session.take_dirty_deltas();
    if deltas.is_empty() {
        return Ok(FlushOutcome::Clean);
    }
    let seq = session.persist_seq();
    let append = (|| -> Result<()> {
        fault.inject_io(FaultSite::PersistWrite)?;
        let mut text = String::new();
        for delta in &deltas {
            delta_line_value(seq, delta).write_json(&mut text);
            text.push('\n');
        }
        let path = delta_path(dir, session.id());
        let created = !path.exists();
        let mut file = std::fs::File::options()
            .create(true)
            .append(true)
            .open(path)?;
        file.write_all(text.as_bytes())?;
        fault.inject_io(FaultSite::PersistSync)?;
        file.sync_all()?;
        if created {
            // The first append created the delta file; flush the
            // directory entry so the whole stream — not just its
            // bytes — survives a crash.
            fsync_dir(dir)?;
        }
        Ok(())
    })();
    match append {
        Ok(()) => {
            // Each synced delta line carries its shard's full
            // watermark map: those marks are durable now.
            let mut marks = vec![Vec::new(); session.num_shards()];
            for delta in &deltas {
                if let Some(slot) = marks.get_mut(delta.shard) {
                    slot.clone_from(&delta.repl);
                }
            }
            session.record_durable_repl(&marks);
            Ok(FlushOutcome::Deltas(deltas.len()))
        }
        Err(e) => {
            session.restore_deltas(&deltas);
            Err(e)
        }
    }
}

/// Deletes a session's snapshot and delta files (used when a session is
/// explicitly closed, so it does not resurrect on the next restart).
/// Returns whether a base snapshot was actually removed —
/// `close_session` uses this to report closure of a session that was
/// already LRU-evicted to disk.
pub fn remove_session_file(dir: &Path, id: u64) -> bool {
    let removed = std::fs::remove_file(session_path(dir, id)).is_ok();
    let cleaned = std::fs::remove_file(delta_path(dir, id)).is_ok();
    if removed || cleaned {
        // Durable deletion: flush the directory so a crash cannot
        // resurrect a closed session's snapshot from a stale entry.
        let _ = fsync_dir(dir);
    }
    removed
}

/// Deletes orphaned `.tmp` snapshot files left by a crash mid-write
/// (the rename never happened, so they are dead weight). Returns how
/// many were swept. Called by `Server::bind` before recovery.
pub fn sweep_temp_files(dir: &Path) -> usize {
    let mut swept = 0;
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with(".session-")
            && name.ends_with(".tmp")
            && std::fs::remove_file(entry.path()).is_ok()
        {
            swept += 1;
        }
    }
    swept
}

/// Replays matching delta lines from `session-<id>.delta.jsonl` onto
/// the base dumps. Lines whose `seq` differs from the base's
/// `flush_seq` are skipped (stale — an older base's deltas whose
/// truncation was lost in a crash); parsing stops at the first
/// unparseable line (a torn tail from a crash mid-append).
fn apply_deltas(dir: &Path, id: u64, flush_seq: u64, dumps: &mut [ShardDump]) -> Result<()> {
    let text = match std::fs::read_to_string(delta_path(dir, id)) {
        Ok(text) => text,
        Err(_) => return Ok(()), // no deltas — the base stands alone
    };
    for line in text.lines() {
        let Ok(v) = json::parse(line.trim()) else {
            break; // torn tail
        };
        if v.get("format").and_then(Value::as_str) != Some(DELTA_FORMAT) {
            return Err(ServiceError::Snapshot(format!(
                "{} contains a non-delta line",
                delta_path(dir, id).display()
            )));
        }
        if v.get("seq").and_then(Value::as_u64) != Some(flush_seq) {
            continue; // stale line from a superseded base
        }
        let shard = v
            .get("shard")
            .and_then(Value::as_usize)
            .filter(|&s| s < dumps.len())
            .ok_or_else(|| {
                ServiceError::Snapshot("delta line has a missing or out-of-range `shard`".into())
            })?;
        let dump = &mut dumps[shard];
        for pair in v
            .get("cells")
            .and_then(Value::as_array)
            .ok_or_else(|| ServiceError::Snapshot("delta line is missing `cells`".into()))?
        {
            let pair = pair.as_array().filter(|p| p.len() == 2).ok_or_else(|| {
                ServiceError::Snapshot("delta cells must be [cell, increment] pairs".into())
            })?;
            let cell = pair[0]
                .as_usize()
                .filter(|&c| c < dump.counts.len())
                .ok_or_else(|| {
                    ServiceError::Snapshot("delta cell index out of the schema domain".into())
                })?;
            let inc = pair[1].as_u64().ok_or_else(|| {
                ServiceError::Snapshot("delta increments must be integers".into())
            })?;
            dump.counts[cell] += inc as f64;
        }
        dump.ingested = v
            .get("ingested")
            .and_then(Value::as_u64)
            .ok_or_else(|| ServiceError::Snapshot("delta line is missing `ingested`".into()))?;
        dump.rng_draws = v
            .get("rng_draws")
            .and_then(Value::as_u64)
            .unwrap_or(dump.rng_draws);
        dump.rng_state = Some(parse_state_words(v.get("rng_state").ok_or_else(|| {
            ServiceError::Snapshot("delta line is missing `rng_state`".into())
        })?)?);
        // Delta lines carry the full watermark map at flush time; the
        // newest applied line's view wins, matching the counts it rode
        // in with.
        let repl = parse_repl(&v)?;
        if !repl.is_empty() {
            dump.repl = repl;
        }
    }
    Ok(())
}

/// Loads one snapshot file (and, for v2 bases, its delta file) into a
/// session.
///
/// `max_session_domain` enforces the same memory bound `create_session`
/// applies: a snapshot whose schema exceeds it (written under a looser
/// previous config, or hand-placed) is rejected rather than allocating
/// past the cap the server was restarted to enforce.
pub fn load_session(
    path: &Path,
    max_dense_domain: usize,
    max_session_domain: usize,
) -> Result<CollectionSession> {
    let text = std::fs::read_to_string(path)?;
    let v = json::parse(text.trim())?;
    if v.get("format").and_then(Value::as_str) != Some(FORMAT) {
        return Err(ServiceError::Snapshot(format!(
            "{} is not a {FORMAT} snapshot",
            path.display()
        )));
    }
    let version = match v.get("version").and_then(Value::as_u64) {
        Some(version @ (1 | 2)) => version,
        other => {
            return Err(ServiceError::Snapshot(format!(
                "unsupported snapshot version {other:?} (this build reads 1 and {VERSION})"
            )))
        }
    };
    let id = v
        .get("session")
        .and_then(Value::as_u64)
        .ok_or_else(|| ServiceError::Snapshot("missing `session` id".into()))?;
    let seed = v
        .get("seed")
        .and_then(Value::as_u64)
        .ok_or_else(|| ServiceError::Snapshot("missing `seed`".into()))?;
    let mechanism = parse_mechanism(&v)?;
    let specs = v
        .get("schema")
        .and_then(Value::as_array)
        .ok_or_else(|| ServiceError::Snapshot("missing `schema` array".into()))?
        .iter()
        .map(|attr| {
            let pair = attr.as_array().filter(|p| p.len() == 2).ok_or_else(|| {
                ServiceError::Snapshot("schema attributes must be [name, cardinality] pairs".into())
            })?;
            let name = pair[0]
                .as_str()
                .ok_or_else(|| ServiceError::Snapshot("attribute name must be a string".into()))?;
            let card = pair[1]
                .as_u64()
                .filter(|&c| c > 0 && c <= u32::MAX as u64)
                .ok_or_else(|| {
                    ServiceError::Snapshot("attribute cardinality must be a positive u32".into())
                })?;
            Ok((name, card as u32))
        })
        .collect::<Result<Vec<_>>>()?;
    let schema = Schema::new(specs)?;
    if schema.domain_size() > max_session_domain {
        return Err(ServiceError::Snapshot(format!(
            "snapshot domain size {} exceeds this server's limit of {} cells",
            schema.domain_size(),
            max_session_domain
        )));
    }
    let mut dumps =
        v.get("shards")
            .and_then(Value::as_array)
            .ok_or_else(|| ServiceError::Snapshot("missing `shards` array".into()))?
            .iter()
            .map(|s| {
                let counts = s
                    .get("counts")
                    .and_then(Value::as_array)
                    .ok_or_else(|| ServiceError::Snapshot("shard is missing `counts`".into()))?
                    .iter()
                    .map(|c| {
                        c.as_f64()
                            .ok_or_else(|| ServiceError::Snapshot("counts must be numbers".into()))
                    })
                    .collect::<Result<Vec<f64>>>()?;
                // v2 shards must carry state words (O(1) recovery);
                // v1 shards recover by draw-count fast-forward.
                let rng_state = match (version, s.get("rng_state")) {
                    (1, _) => None,
                    (_, Some(words)) => Some(parse_state_words(words)?),
                    (_, None) => {
                        return Err(ServiceError::Snapshot(
                            "v2 shard is missing `rng_state`".into(),
                        ))
                    }
                };
                Ok(ShardDump {
                    ingested: s.get("ingested").and_then(Value::as_u64).ok_or_else(|| {
                        ServiceError::Snapshot("shard is missing `ingested`".into())
                    })?,
                    rng_draws: s.get("rng_draws").and_then(Value::as_u64).ok_or_else(|| {
                        ServiceError::Snapshot("shard is missing `rng_draws`".into())
                    })?,
                    rng_state,
                    counts,
                    repl: parse_repl(s)?,
                })
            })
            .collect::<Result<Vec<_>>>()?;
    let flush_seq = v.get("flush_seq").and_then(Value::as_u64).unwrap_or(0);
    if version >= 2 {
        if let Some(dir) = path.parent() {
            apply_deltas(dir, id, flush_seq, &mut dumps)?;
        }
    }
    let session = CollectionSession::recover(id, schema, mechanism, seed, max_dense_domain, dumps)?;
    session.set_persist_seq(flush_seq);
    Ok(session)
}

/// Loads every parseable snapshot in `dir`, ordered oldest snapshot
/// first (by file modification time, ties broken by id).
///
/// The ordering lets a cap-limited recovery reconstruct the LRU
/// policy's intent from disk: snapshots written at clean shutdown are
/// newer than stale eviction spills, so a caller inserting in order
/// (each insert stamping a newer last-touched tick) leaves the most
/// recently active sessions most recently touched — and can skip the
/// *oldest* snapshots when the cap forces a choice.
///
/// Unreadable or invalid files are skipped and returned as
/// `(path, error)` pairs so the caller can report them; a missing
/// directory is simply an empty result.
pub fn load_all(
    dir: &Path,
    max_dense_domain: usize,
    max_session_domain: usize,
) -> (Vec<Arc<CollectionSession>>, Vec<(PathBuf, ServiceError)>) {
    let mut sessions: Vec<(std::time::SystemTime, Arc<CollectionSession>)> = Vec::new();
    let mut skipped = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(_) => return (Vec::new(), skipped),
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if !name.starts_with("session-") || !name.ends_with(".json") {
            continue;
        }
        let modified = entry
            .metadata()
            .and_then(|m| m.modified())
            .unwrap_or(std::time::SystemTime::UNIX_EPOCH);
        match load_session(&path, max_dense_domain, max_session_domain) {
            Ok(session) => sessions.push((modified, Arc::new(session))),
            Err(e) => skipped.push((path, e)),
        }
    }
    sessions.sort_unstable_by_key(|(modified, s)| (*modified, s.id()));
    (sessions.into_iter().map(|(_, s)| s).collect(), skipped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::ReconstructionMethod;

    fn temp_dir(tag: &str) -> PathBuf {
        static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        // Same sandbox contract as tests/lifecycle.rs: CI routes all
        // snapshot churn into a throwaway mktemp dir.
        let base = std::env::var_os("FRAPP_PERSIST_TEST_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(std::env::temp_dir);
        let dir = base.join(format!(
            "frapp-persist-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_session(id: u64) -> CollectionSession {
        let schema = Schema::new(vec![("a", 3), ("b", 2)]).unwrap();
        let s = CollectionSession::new(
            id,
            schema,
            Mechanism::Deterministic { gamma: 19.0 },
            2,
            7,
            4096,
        )
        .unwrap();
        let records: Vec<Vec<u32>> = (0..200).map(|i| vec![i % 3, i % 2]).collect();
        s.submit_batch_to_shard(0, &records, false).unwrap();
        s.submit_batch_to_shard(1, &records[..50], true).unwrap();
        s
    }

    #[test]
    fn snapshot_roundtrip_restores_counts_and_rng_position() {
        let dir = temp_dir("roundtrip");
        let original = sample_session(3);
        let path = save_session(&dir, &original).unwrap();
        assert_eq!(path, session_path(&dir, 3));

        let recovered = load_session(&path, 4096, 1 << 24).unwrap();
        assert_eq!(recovered.id(), 3);
        assert_eq!(recovered.seed(), original.seed());
        assert_eq!(recovered.mechanism(), original.mechanism());
        assert_eq!(recovered.num_shards(), 2);
        assert_eq!(recovered.dump_shards(), original.dump_shards());
        assert_eq!(recovered.persist_seq(), original.persist_seq());
        // v2 recovery restores native state words: zero fast-forward.
        assert_eq!(recovered.recovery_fast_forward_draws(), 0);
        assert_eq!(
            recovered
                .reconstruct(ReconstructionMethod::ClosedForm, false)
                .unwrap()
                .estimates,
            original
                .reconstruct(ReconstructionMethod::ClosedForm, false)
                .unwrap()
                .estimates
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn v2_recovery_continues_the_stream_bit_exactly() {
        let dir = temp_dir("v2-replay");
        let more: Vec<Vec<u32>> = (0..300).map(|i| vec![(i + 1) % 3, i % 2]).collect();

        // Uninterrupted reference.
        let reference = sample_session(8);
        // Interrupted twin, persisted and recovered via state words.
        let twin = sample_session(8);
        let path = save_session(&dir, &twin).unwrap();
        let recovered = load_session(&path, 4096, 1 << 24).unwrap();
        assert_eq!(recovered.recovery_fast_forward_draws(), 0);

        reference.submit_batch_to_shard(0, &more, false).unwrap();
        recovered.submit_batch_to_shard(0, &more, false).unwrap();
        assert_eq!(
            recovered.snapshot().counts(),
            reference.snapshot().counts(),
            "post-restart raw ingest must replay the identical draws"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn v1_snapshots_still_recover_via_fast_forward() {
        let dir = temp_dir("v1-compat");
        let original = sample_session(5);
        // Hand-write the v1 format: rng_draws only, no rng_state, no
        // flush_seq — exactly what a PR-2 server left on disk.
        let dumps = original.dump_shards();
        let shards_json: Vec<String> = dumps
            .iter()
            .map(|d| {
                let counts: Vec<String> =
                    d.counts.iter().map(|c| format!("{}", *c as u64)).collect();
                format!(
                    r#"{{"ingested":{},"rng_draws":{},"counts":[{}]}}"#,
                    d.ingested,
                    d.rng_draws,
                    counts.join(",")
                )
            })
            .collect();
        let v1 = format!(
            r#"{{"format":"frapp-session","version":1,"session":5,"seed":{},"mechanism":{{"kind":"det","gamma":19.0}},"schema":[["a",3],["b",2]],"shards":[{}]}}"#,
            original.seed(),
            shards_json.join(",")
        );
        let path = session_path(&dir, 5);
        std::fs::write(&path, v1).unwrap();

        let recovered = load_session(&path, 4096, 1 << 24).unwrap();
        // v1 recovery pays the O(draws) fast-forward and reports it.
        let total_draws: u64 = dumps.iter().map(|d| d.rng_draws).sum();
        assert!(total_draws > 0, "raw ingest must have consumed draws");
        assert_eq!(recovered.recovery_fast_forward_draws(), total_draws);
        assert_eq!(recovered.persist_seq(), 0, "v1 bases force a full resave");

        // Continued raw ingest matches the uninterrupted session.
        let more: Vec<Vec<u32>> = (0..250).map(|i| vec![(i + 2) % 3, i % 2]).collect();
        original.submit_batch_to_shard(0, &more, false).unwrap();
        recovered.submit_batch_to_shard(0, &more, false).unwrap();
        assert_eq!(recovered.snapshot().counts(), original.snapshot().counts());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn incremental_flushes_append_deltas_instead_of_rewriting() {
        let dir = temp_dir("incremental");
        let session = sample_session(11);
        // First flush: no base yet → full snapshot.
        assert_eq!(
            persist_session_incremental(&dir, &session).unwrap(),
            FlushOutcome::FullSnapshot
        );
        let base_len = std::fs::metadata(session_path(&dir, 11)).unwrap().len();
        // Clean session → nothing written.
        assert_eq!(
            persist_session_incremental(&dir, &session).unwrap(),
            FlushOutcome::Clean
        );
        assert!(!delta_path(&dir, 11).exists());

        // Two dirty flushes append deltas; the base never changes.
        session
            .submit_batch_to_shard(0, &[vec![1, 1], vec![2, 0]], true)
            .unwrap();
        assert_eq!(
            persist_session_incremental(&dir, &session).unwrap(),
            FlushOutcome::Deltas(1)
        );
        session
            .submit_batch_to_shard(1, &[vec![0, 1]], false)
            .unwrap();
        session
            .submit_batch_to_shard(0, &[vec![1, 0]], true)
            .unwrap();
        assert_eq!(
            persist_session_incremental(&dir, &session).unwrap(),
            FlushOutcome::Deltas(2)
        );
        assert_eq!(
            std::fs::metadata(session_path(&dir, 11)).unwrap().len(),
            base_len,
            "incremental flushes must not rewrite the base snapshot"
        );
        assert!(delta_path(&dir, 11).exists());

        // Recovery = base + deltas, bit-identical to the live session.
        let recovered = load_session(&session_path(&dir, 11), 4096, 1 << 24).unwrap();
        assert_eq!(recovered.dump_shards(), session.dump_shards());
        assert_eq!(recovered.recovery_fast_forward_draws(), 0);

        // A later full save folds the deltas in and removes the file.
        save_session(&dir, &session).unwrap();
        assert!(!delta_path(&dir, 11).exists());
        let recovered = load_session(&session_path(&dir, 11), 4096, 1 << 24).unwrap();
        assert_eq!(recovered.dump_shards(), session.dump_shards());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn repl_watermarks_survive_snapshot_and_delta_recovery() {
        let dir = temp_dir("repl");
        let session = sample_session(21);
        let batch: Vec<Vec<u32>> = vec![vec![1, 1]];
        let refs: Vec<&[u32]> = batch.iter().map(Vec::as_slice).collect();
        session
            .submit_slices_repl(refs.iter().copied(), true, 4, 6)
            .unwrap();
        save_session(&dir, &session).unwrap();

        // Base-snapshot path: the recovered session still rejects the
        // forwarded batch a reconnecting peer might resend.
        let recovered = load_session(&session_path(&dir, 21), 4096, 1 << 24).unwrap();
        assert_eq!(recovered.dump_shards(), session.dump_shards());
        assert!(!recovered
            .submit_slices_repl(refs.iter().copied(), true, 4, 6)
            .unwrap());

        // Delta path: a watermark advanced after the base snapshot
        // rides in on the delta line.
        session
            .submit_slices_repl(refs.iter().copied(), true, 4, 8)
            .unwrap();
        assert_eq!(
            persist_session_incremental(&dir, &session).unwrap(),
            FlushOutcome::Deltas(1)
        );
        let recovered = load_session(&session_path(&dir, 21), 4096, 1 << 24).unwrap();
        assert_eq!(recovered.dump_shards(), session.dump_shards());
        assert!(!recovered
            .submit_slices_repl(refs.iter().copied(), true, 4, 8)
            .unwrap());
        assert!(recovered
            .submit_slices_repl(refs.iter().copied(), true, 4, 9)
            .unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_and_torn_delta_lines_are_ignored() {
        let dir = temp_dir("delta-robust");
        let session = sample_session(12);
        save_session(&dir, &session).unwrap();
        session
            .submit_batch_to_shard(0, &[vec![1, 1]], true)
            .unwrap();
        persist_session_incremental(&dir, &session).unwrap();
        let good_deltas = std::fs::read_to_string(delta_path(&dir, 12)).unwrap();

        // Simulate a crash that lost the delta-file truncation: a full
        // save supersedes the deltas, but the old file resurfaces.
        save_session(&dir, &session).unwrap();
        assert!(!delta_path(&dir, 12).exists());
        std::fs::write(delta_path(&dir, 12), &good_deltas).unwrap();
        let recovered = load_session(&session_path(&dir, 12), 4096, 1 << 24).unwrap();
        assert_eq!(
            recovered.dump_shards(),
            session.dump_shards(),
            "stale-seq delta lines must not be double-applied"
        );

        // A torn tail (crash mid-append) is ignored; lines before it
        // still apply.
        session
            .submit_batch_to_shard(1, &[vec![2, 1]], true)
            .unwrap();
        persist_session_incremental(&dir, &session).unwrap();
        let mut text = std::fs::read_to_string(delta_path(&dir, 12)).unwrap();
        text.push_str("{\"format\":\"frapp-session-delta\",\"seq\":");
        std::fs::write(delta_path(&dir, 12), text).unwrap();
        let recovered = load_session(&session_path(&dir, 12), 4096, 1 << 24).unwrap();
        assert_eq!(recovered.dump_shards(), session.dump_shards());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_forces_a_fresh_base_so_torn_tails_cannot_swallow_new_deltas() {
        // Crash story: server A appends a delta and dies mid-append
        // (torn tail). Server B recovers — if B then appended new
        // deltas behind the torn line, every later recovery (which
        // stops reading at the torn line) would silently lose them.
        // B's first flush must therefore be a full snapshot that
        // removes the old delta file.
        let dir = temp_dir("torn-durability");
        let session = sample_session(14);
        save_session(&dir, &session).unwrap();
        session
            .submit_batch_to_shard(0, &[vec![1, 1]], true)
            .unwrap();
        persist_session_incremental(&dir, &session).unwrap();
        let mut text = std::fs::read_to_string(delta_path(&dir, 14)).unwrap();
        text.push_str("{\"format\":\"frapp-session-delta\",\"se"); // torn
        std::fs::write(delta_path(&dir, 14), text).unwrap();

        // Server B: recover, ingest, flush. The flush must be full.
        let recovered = load_session(&session_path(&dir, 14), 4096, 1 << 24).unwrap();
        assert!(recovered.needs_full_snapshot());
        recovered
            .submit_batch_to_shard(1, &[vec![2, 0]], true)
            .unwrap();
        assert_eq!(
            persist_session_incremental(&dir, &recovered).unwrap(),
            FlushOutcome::FullSnapshot
        );
        assert!(
            !delta_path(&dir, 14).exists(),
            "the fresh base must remove the torn delta file"
        );
        assert!(!recovered.needs_full_snapshot());

        // Later deltas land in a clean stream and survive recovery.
        recovered
            .submit_batch_to_shard(0, &[vec![0, 1]], true)
            .unwrap();
        assert_eq!(
            persist_session_incremental(&dir, &recovered).unwrap(),
            FlushOutcome::Deltas(1)
        );
        let again = load_session(&session_path(&dir, 14), 4096, 1 << 24).unwrap();
        assert_eq!(again.dump_shards(), recovered.dump_shards());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_all_skips_corrupt_files_and_orders_oldest_snapshot_first() {
        let dir = temp_dir("load-all");
        save_session(&dir, &sample_session(9)).unwrap();
        // Ensure a strictly newer mtime for the second snapshot.
        std::thread::sleep(std::time::Duration::from_millis(20));
        save_session(&dir, &sample_session(2)).unwrap();
        std::fs::write(dir.join("session-5.json"), "not json").unwrap();
        std::fs::write(dir.join("unrelated.txt"), "ignored").unwrap();

        let (sessions, skipped) = load_all(&dir, 4096, 1 << 24);
        // Snapshot 9 was written first, so it is the oldest and comes
        // first; a cap-limited recovery drops from the front.
        assert_eq!(
            sessions.iter().map(|s| s.id()).collect::<Vec<_>>(),
            vec![9, 2]
        );
        assert_eq!(skipped.len(), 1);
        assert!(skipped[0].0.ends_with("session-5.json"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn temp_file_sweep_removes_only_orphaned_tmp_files() {
        let dir = temp_dir("sweep");
        let path = save_session(&dir, &sample_session(1)).unwrap();
        std::fs::write(dir.join(".session-1.json.999.0.tmp"), "half a snapshot").unwrap();
        std::fs::write(dir.join(".session-7.json.999.1.tmp"), "").unwrap();
        std::fs::write(dir.join("keep.txt"), "not a temp file").unwrap();

        assert_eq!(sweep_temp_files(&dir), 2);
        assert!(path.exists(), "real snapshots must survive the sweep");
        assert!(dir.join("keep.txt").exists());
        assert_eq!(sweep_temp_files(&dir), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_enforces_the_session_domain_cap() {
        // A snapshot written under a looser config (or hand-placed)
        // must not bypass the memory bound `create_session` enforces.
        let dir = temp_dir("domain-cap");
        let path = save_session(&dir, &sample_session(1)).unwrap();
        // Domain size is 6; a cap of 4 must reject it, the real default
        // must accept it.
        let err = load_session(&path, 4096, 4).unwrap_err();
        assert!(err.to_string().contains("exceeds"), "{err}");
        assert!(load_session(&path, 4096, 1 << 24).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unsupported_versions_are_rejected() {
        let dir = temp_dir("version");
        let path = dir.join("session-1.json");
        std::fs::write(
            &path,
            r#"{"format":"frapp-session","version":99,"session":1,"seed":0,
               "mechanism":{"kind":"det","gamma":19.0},"schema":[["a",2]],
               "shards":[{"ingested":0,"rng_draws":0,"counts":[0,0]}]}"#,
        )
        .unwrap();
        let err = load_session(&path, 4096, 1 << 24).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn closed_sessions_refuse_snapshots() {
        // The close/persister race: once a session is marked closed, a
        // racing save must not resurrect a file that close just
        // deleted.
        let dir = temp_dir("closed");
        use crate::session::{Mechanism, SessionRegistry};
        let reg = SessionRegistry::new();
        let session = reg
            .create(
                Schema::new(vec![("a", 3), ("b", 2)]).unwrap(),
                Mechanism::Deterministic { gamma: 19.0 },
                1,
                7,
                4096,
            )
            .unwrap()
            .session;
        save_session(&dir, &session).unwrap();
        let closed = reg.remove(session.id()).unwrap();
        remove_session_file(&dir, closed.id());
        let err = save_session(&dir, &closed).unwrap_err();
        assert!(err.to_string().contains("closed"), "{err}");
        assert!(!session_path(&dir, closed.id()).exists());
        // The incremental path refuses identically.
        let err = persist_session_incremental(&dir, &closed).unwrap_err();
        assert!(err.to_string().contains("closed"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_saves_never_corrupt_the_snapshot() {
        // The periodic persister, an on-demand persist op and an
        // eviction spill can all write the same session at once; every
        // interleaving must leave a parseable, complete snapshot.
        let dir = temp_dir("concurrent");
        let session = std::sync::Arc::new(sample_session(6));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let session = std::sync::Arc::clone(&session);
                let dir = dir.clone();
                scope.spawn(move || {
                    for _ in 0..10 {
                        save_session(&dir, &session).unwrap();
                    }
                });
            }
        });
        let recovered = load_session(&session_path(&dir, 6), 4096, 1 << 24).unwrap();
        assert_eq!(recovered.dump_shards(), session.dump_shards());
        // No stray temp files left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_incremental_and_full_flushes_stay_consistent() {
        // The persist gate serializes delta appends with full saves, so
        // racing them must never lose an increment or double-apply one.
        let dir = temp_dir("concurrent-inc");
        let session = std::sync::Arc::new(sample_session(13));
        save_session(&dir, &session).unwrap();
        std::thread::scope(|scope| {
            let ingest = std::sync::Arc::clone(&session);
            scope.spawn(move || {
                for i in 0..40u32 {
                    ingest
                        .submit_batch_to_shard(0, &[vec![i % 3, i % 2]], true)
                        .unwrap();
                }
            });
            let flusher = std::sync::Arc::clone(&session);
            let flush_dir = dir.clone();
            scope.spawn(move || {
                for _ in 0..10 {
                    persist_session_incremental(&flush_dir, &flusher).unwrap();
                }
            });
            let saver = std::sync::Arc::clone(&session);
            let save_dir = dir.clone();
            scope.spawn(move || {
                for _ in 0..5 {
                    save_session(&save_dir, &saver).unwrap();
                }
            });
        });
        // Final flush captures any remaining dirty state.
        persist_session_incremental(&dir, &session).unwrap();
        let recovered = load_session(&session_path(&dir, 13), 4096, 1 << 24).unwrap();
        assert_eq!(recovered.dump_shards(), session.dump_shards());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn session_ids_parse_from_file_names() {
        assert_eq!(session_id_from_file_name("session-42.json"), Some(42));
        assert_eq!(session_id_from_file_name(&session_file_name(7)), Some(7));
        assert_eq!(session_id_from_file_name("session-.json"), None);
        assert_eq!(session_id_from_file_name("session-42.json.tmp"), None);
        // Delta files never parse as (and thus never shadow) a base.
        assert_eq!(session_id_from_file_name(&delta_file_name(42)), None);
        assert_eq!(session_id_from_file_name("other.json"), None);
    }

    #[test]
    fn injected_faults_surface_and_never_lose_an_increment() {
        let dir = temp_dir("faults");
        let session = sample_session(31);
        save_session(&dir, &session).unwrap();

        // A failed delta append restores the drained increments: the
        // fault-free retry flushes them and recovery sees everything.
        session
            .submit_batch_to_shard(0, &[vec![1, 1]], true)
            .unwrap();
        let write_fault = FaultPlan::parse("seed=1,persist_write=io_error").unwrap();
        let err = persist_session_incremental_faulted(&dir, &session, &write_fault).unwrap_err();
        assert!(err.to_string().contains("injected fault"), "{err}");
        assert_eq!(
            persist_session_incremental(&dir, &session).unwrap(),
            FlushOutcome::Deltas(1)
        );
        let recovered = load_session(&session_path(&dir, 31), 4096, 1 << 24).unwrap();
        assert_eq!(recovered.dump_shards(), session.dump_shards());

        // A rename fault fails the save before publication: the old
        // base (plus its delta stream) still recovers bit-exactly.
        session
            .submit_batch_to_shard(0, &[vec![2, 0]], true)
            .unwrap();
        let rename_fault = FaultPlan::parse("seed=1,persist_rename=io_error").unwrap();
        assert!(save_session_faulted(&dir, &session, &rename_fault).is_err());
        assert_eq!(
            persist_session_incremental(&dir, &session).unwrap(),
            FlushOutcome::Deltas(1)
        );
        let recovered = load_session(&session_path(&dir, 31), 4096, 1 << 24).unwrap();
        assert_eq!(recovered.dump_shards(), session.dump_shards());

        // A directory-fsync fault fires AFTER the rename published the
        // new base: the session must demand a full snapshot next so no
        // delta line lands under a sequence the new base ignores.
        session
            .submit_batch_to_shard(1, &[vec![0, 1]], true)
            .unwrap();
        let sync_fault = FaultPlan::parse("seed=1,persist_sync=io_error").unwrap();
        assert!(save_session_faulted(&dir, &session, &sync_fault).is_err());
        assert!(
            session.needs_full_snapshot(),
            "a post-rename sync failure must force a fresh full base"
        );
        assert_eq!(
            persist_session_incremental(&dir, &session).unwrap(),
            FlushOutcome::FullSnapshot
        );
        let recovered = load_session(&session_path(&dir, 31), 4096, 1 << 24).unwrap();
        assert_eq!(recovered.dump_shards(), session.dump_shards());

        // A delay fault is not an error: the flush just takes longer.
        session
            .submit_batch_to_shard(0, &[vec![0, 0]], true)
            .unwrap();
        let slow = FaultPlan::parse("seed=1,persist_write=delay(1)").unwrap();
        assert_eq!(
            persist_session_incremental_faulted(&dir, &session, &slow).unwrap(),
            FlushOutcome::Deltas(1)
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn close_removes_snapshot_and_delta_files() {
        let dir = temp_dir("remove");
        let session = sample_session(4);
        let path = save_session(&dir, &session).unwrap();
        session
            .submit_batch_to_shard(0, &[vec![0, 0]], true)
            .unwrap();
        persist_session_incremental(&dir, &session).unwrap();
        assert!(path.exists());
        assert!(delta_path(&dir, 4).exists());
        remove_session_file(&dir, 4);
        assert!(!path.exists());
        assert!(!delta_path(&dir, 4).exists());
        remove_session_file(&dir, 4); // idempotent
        std::fs::remove_dir_all(&dir).ok();
    }
}
