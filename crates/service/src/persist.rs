//! Session snapshot persistence.
//!
//! A long-lived collection server must survive restarts without losing
//! the perturbed counts its clients streamed in. This module writes one
//! self-describing JSON document per session — schema, mechanism, seed,
//! and per-shard `(ingested, rng_draws, counts)` — and reads it back
//! into a [`CollectionSession`] whose deterministic replay contract
//! still holds: the shard layout and seed are preserved, and each
//! shard's RNG is fast-forwarded to exactly the draw it would have made
//! next before the restart.
//!
//! ## Format (`frapp-session`, version 1)
//!
//! ```json
//! {"format":"frapp-session","version":1,"session":3,"seed":7,
//!  "mechanism":{"kind":"det","gamma":19.0},
//!  "schema":[["age",8],["sex",2]],
//!  "shards":[{"ingested":2,"rng_draws":2,"counts":[0,1,...]}]}
//! ```
//!
//! Counts are whole numbers by construction (every ingest adds exactly
//! 1.0 to one cell) and the JSON writer emits integral `f64`s without a
//! fraction, so the on-disk representation is exact. Files are written
//! to `<dir>/session-<id>.json` via a temp-file-and-rename so a crash
//! mid-write never corrupts the previous snapshot. Unknown versions are
//! rejected at load; unreadable files are skipped by [`load_all`] (a
//! corrupt snapshot must not brick the whole server) and reported to
//! the caller.

use crate::error::{Result, ServiceError};
use crate::json::{self, object, Value};
use crate::session::{CollectionSession, Mechanism, ShardDump};
use frapp_core::Schema;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// The `format` discriminator written into every snapshot.
pub const FORMAT: &str = "frapp-session";
/// The snapshot format version this build writes and reads.
pub const VERSION: u64 = 1;

/// The snapshot file name for a session id.
pub fn session_file_name(id: u64) -> String {
    format!("session-{id}.json")
}

/// The snapshot path for a session id under `dir`.
pub fn session_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(session_file_name(id))
}

/// The session id encoded in a snapshot file name
/// (`session-<id>.json`), or `None` for other files.
pub fn session_id_from_file_name(name: &str) -> Option<u64> {
    name.strip_prefix("session-")?
        .strip_suffix(".json")?
        .parse()
        .ok()
}

fn mechanism_value(mechanism: Mechanism) -> Value {
    match mechanism {
        Mechanism::Deterministic { gamma } => {
            object(vec![("kind", "det".into()), ("gamma", gamma.into())])
        }
        Mechanism::Randomized {
            gamma,
            alpha_fraction,
        } => object(vec![
            ("kind", "ran".into()),
            ("gamma", gamma.into()),
            ("alpha_fraction", alpha_fraction.into()),
        ]),
    }
}

fn parse_mechanism(v: &Value) -> Result<Mechanism> {
    let m = v
        .get("mechanism")
        .ok_or_else(|| ServiceError::Snapshot("missing `mechanism`".into()))?;
    let gamma = m
        .get("gamma")
        .and_then(Value::as_f64)
        .ok_or_else(|| ServiceError::Snapshot("mechanism is missing numeric `gamma`".into()))?;
    match m.get("kind").and_then(Value::as_str) {
        Some("det") => Ok(Mechanism::Deterministic { gamma }),
        Some("ran") => Ok(Mechanism::Randomized {
            gamma,
            alpha_fraction: m
                .get("alpha_fraction")
                .and_then(Value::as_f64)
                .ok_or_else(|| {
                    ServiceError::Snapshot(
                        "randomized mechanism is missing `alpha_fraction`".into(),
                    )
                })?,
        }),
        other => Err(ServiceError::Snapshot(format!(
            "unknown mechanism kind {other:?}"
        ))),
    }
}

/// Serializes one session into its snapshot document.
fn snapshot_value(session: &CollectionSession) -> Value {
    let schema = Value::Array(
        session
            .schema()
            .attributes()
            .iter()
            .map(|a| Value::Array(vec![a.name().into(), a.cardinality().into()]))
            .collect(),
    );
    let shards = Value::Array(
        session
            .dump_shards()
            .into_iter()
            .map(|d| {
                object(vec![
                    ("ingested", d.ingested.into()),
                    ("rng_draws", d.rng_draws.into()),
                    (
                        "counts",
                        Value::Array(d.counts.into_iter().map(Value::Number).collect()),
                    ),
                ])
            })
            .collect(),
    );
    object(vec![
        ("format", FORMAT.into()),
        ("version", VERSION.into()),
        ("session", session.id().into()),
        ("seed", session.seed().into()),
        ("mechanism", mechanism_value(session.mechanism())),
        ("schema", schema),
        ("shards", shards),
    ])
}

/// Writes a session snapshot into `dir`, atomically (a uniquely named
/// temp file + rename). Returns the snapshot path.
///
/// Writes for one session are serialized through the session's persist
/// gate, so concurrent writers (the periodic persister, an on-demand
/// `persist` op, an eviction spill) cannot interleave; and a session
/// that was explicitly closed refuses the write, so an in-flight
/// periodic save cannot resurrect a snapshot that `close_session` just
/// deleted.
pub fn save_session(dir: &Path, session: &CollectionSession) -> Result<PathBuf> {
    static TMP_COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let _gate = session.persist_gate();
    if session.is_closed() {
        return Err(ServiceError::Snapshot(format!(
            "session {} is closed; not writing a snapshot",
            session.id()
        )));
    }
    std::fs::create_dir_all(dir)?;
    let path = session_path(dir, session.id());
    let tmp = dir.join(format!(
        ".{}.{}.{}.tmp",
        session_file_name(session.id()),
        std::process::id(),
        TMP_COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(snapshot_value(session).to_json().as_bytes())?;
        file.write_all(b"\n")?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, &path)?;
    Ok(path)
}

/// Deletes a session's snapshot (used when a session is explicitly
/// closed, so it does not resurrect on the next restart). Returns
/// whether a file was actually removed — `close_session` uses this to
/// report closure of a session that was already LRU-evicted to disk.
pub fn remove_session_file(dir: &Path, id: u64) -> bool {
    std::fs::remove_file(session_path(dir, id)).is_ok()
}

/// Deletes orphaned `.tmp` snapshot files left by a crash mid-write
/// (the rename never happened, so they are dead weight). Returns how
/// many were swept. Called by `Server::bind` before recovery.
pub fn sweep_temp_files(dir: &Path) -> usize {
    let mut swept = 0;
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with(".session-")
            && name.ends_with(".tmp")
            && std::fs::remove_file(entry.path()).is_ok()
        {
            swept += 1;
        }
    }
    swept
}

/// Loads one snapshot file into a session.
///
/// `max_session_domain` enforces the same memory bound `create_session`
/// applies: a snapshot whose schema exceeds it (written under a looser
/// previous config, or hand-placed) is rejected rather than allocating
/// past the cap the server was restarted to enforce.
pub fn load_session(
    path: &Path,
    max_dense_domain: usize,
    max_session_domain: usize,
) -> Result<CollectionSession> {
    let text = std::fs::read_to_string(path)?;
    let v = json::parse(text.trim())?;
    if v.get("format").and_then(Value::as_str) != Some(FORMAT) {
        return Err(ServiceError::Snapshot(format!(
            "{} is not a {FORMAT} snapshot",
            path.display()
        )));
    }
    match v.get("version").and_then(Value::as_u64) {
        Some(VERSION) => {}
        other => {
            return Err(ServiceError::Snapshot(format!(
                "unsupported snapshot version {other:?} (this build reads {VERSION})"
            )))
        }
    }
    let id = v
        .get("session")
        .and_then(Value::as_u64)
        .ok_or_else(|| ServiceError::Snapshot("missing `session` id".into()))?;
    let seed = v
        .get("seed")
        .and_then(Value::as_u64)
        .ok_or_else(|| ServiceError::Snapshot("missing `seed`".into()))?;
    let mechanism = parse_mechanism(&v)?;
    let specs = v
        .get("schema")
        .and_then(Value::as_array)
        .ok_or_else(|| ServiceError::Snapshot("missing `schema` array".into()))?
        .iter()
        .map(|attr| {
            let pair = attr.as_array().filter(|p| p.len() == 2).ok_or_else(|| {
                ServiceError::Snapshot("schema attributes must be [name, cardinality] pairs".into())
            })?;
            let name = pair[0]
                .as_str()
                .ok_or_else(|| ServiceError::Snapshot("attribute name must be a string".into()))?;
            let card = pair[1]
                .as_u64()
                .filter(|&c| c > 0 && c <= u32::MAX as u64)
                .ok_or_else(|| {
                    ServiceError::Snapshot("attribute cardinality must be a positive u32".into())
                })?;
            Ok((name, card as u32))
        })
        .collect::<Result<Vec<_>>>()?;
    let schema = Schema::new(specs)?;
    if schema.domain_size() > max_session_domain {
        return Err(ServiceError::Snapshot(format!(
            "snapshot domain size {} exceeds this server's limit of {} cells",
            schema.domain_size(),
            max_session_domain
        )));
    }
    let dumps =
        v.get("shards")
            .and_then(Value::as_array)
            .ok_or_else(|| ServiceError::Snapshot("missing `shards` array".into()))?
            .iter()
            .map(|s| {
                let counts = s
                    .get("counts")
                    .and_then(Value::as_array)
                    .ok_or_else(|| ServiceError::Snapshot("shard is missing `counts`".into()))?
                    .iter()
                    .map(|c| {
                        c.as_f64()
                            .ok_or_else(|| ServiceError::Snapshot("counts must be numbers".into()))
                    })
                    .collect::<Result<Vec<f64>>>()?;
                Ok(ShardDump {
                    ingested: s.get("ingested").and_then(Value::as_u64).ok_or_else(|| {
                        ServiceError::Snapshot("shard is missing `ingested`".into())
                    })?,
                    rng_draws: s.get("rng_draws").and_then(Value::as_u64).ok_or_else(|| {
                        ServiceError::Snapshot("shard is missing `rng_draws`".into())
                    })?,
                    counts,
                })
            })
            .collect::<Result<Vec<_>>>()?;
    CollectionSession::recover(id, schema, mechanism, seed, max_dense_domain, dumps)
}

/// Loads every parseable snapshot in `dir`, ordered oldest snapshot
/// first (by file modification time, ties broken by id).
///
/// The ordering lets a cap-limited recovery reconstruct the LRU
/// policy's intent from disk: snapshots written at clean shutdown are
/// newer than stale eviction spills, so a caller inserting in order
/// (each insert stamping a newer last-touched tick) leaves the most
/// recently active sessions most recently touched — and can skip the
/// *oldest* snapshots when the cap forces a choice.
///
/// Unreadable or invalid files are skipped and returned as
/// `(path, error)` pairs so the caller can report them; a missing
/// directory is simply an empty result.
pub fn load_all(
    dir: &Path,
    max_dense_domain: usize,
    max_session_domain: usize,
) -> (Vec<Arc<CollectionSession>>, Vec<(PathBuf, ServiceError)>) {
    let mut sessions: Vec<(std::time::SystemTime, Arc<CollectionSession>)> = Vec::new();
    let mut skipped = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(_) => return (Vec::new(), skipped),
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if !name.starts_with("session-") || !name.ends_with(".json") {
            continue;
        }
        let modified = entry
            .metadata()
            .and_then(|m| m.modified())
            .unwrap_or(std::time::SystemTime::UNIX_EPOCH);
        match load_session(&path, max_dense_domain, max_session_domain) {
            Ok(session) => sessions.push((modified, Arc::new(session))),
            Err(e) => skipped.push((path, e)),
        }
    }
    sessions.sort_unstable_by_key(|(modified, s)| (*modified, s.id()));
    (sessions.into_iter().map(|(_, s)| s).collect(), skipped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::ReconstructionMethod;

    fn temp_dir(tag: &str) -> PathBuf {
        static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        // Same sandbox contract as tests/lifecycle.rs: CI routes all
        // snapshot churn into a throwaway mktemp dir.
        let base = std::env::var_os("FRAPP_PERSIST_TEST_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(std::env::temp_dir);
        let dir = base.join(format!(
            "frapp-persist-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_session(id: u64) -> CollectionSession {
        let schema = Schema::new(vec![("a", 3), ("b", 2)]).unwrap();
        let s = CollectionSession::new(
            id,
            schema,
            Mechanism::Deterministic { gamma: 19.0 },
            2,
            7,
            4096,
        )
        .unwrap();
        let records: Vec<Vec<u32>> = (0..200).map(|i| vec![i % 3, i % 2]).collect();
        s.submit_batch_to_shard(0, &records, false).unwrap();
        s.submit_batch_to_shard(1, &records[..50], true).unwrap();
        s
    }

    #[test]
    fn snapshot_roundtrip_restores_counts_and_rng_position() {
        let dir = temp_dir("roundtrip");
        let original = sample_session(3);
        let path = save_session(&dir, &original).unwrap();
        assert_eq!(path, session_path(&dir, 3));

        let recovered = load_session(&path, 4096, 1 << 24).unwrap();
        assert_eq!(recovered.id(), 3);
        assert_eq!(recovered.seed(), original.seed());
        assert_eq!(recovered.mechanism(), original.mechanism());
        assert_eq!(recovered.num_shards(), 2);
        assert_eq!(recovered.dump_shards(), original.dump_shards());
        assert_eq!(
            recovered
                .reconstruct(ReconstructionMethod::ClosedForm, false)
                .unwrap()
                .estimates,
            original
                .reconstruct(ReconstructionMethod::ClosedForm, false)
                .unwrap()
                .estimates
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_all_skips_corrupt_files_and_orders_oldest_snapshot_first() {
        let dir = temp_dir("load-all");
        save_session(&dir, &sample_session(9)).unwrap();
        // Ensure a strictly newer mtime for the second snapshot.
        std::thread::sleep(std::time::Duration::from_millis(20));
        save_session(&dir, &sample_session(2)).unwrap();
        std::fs::write(dir.join("session-5.json"), "not json").unwrap();
        std::fs::write(dir.join("unrelated.txt"), "ignored").unwrap();

        let (sessions, skipped) = load_all(&dir, 4096, 1 << 24);
        // Snapshot 9 was written first, so it is the oldest and comes
        // first; a cap-limited recovery drops from the front.
        assert_eq!(
            sessions.iter().map(|s| s.id()).collect::<Vec<_>>(),
            vec![9, 2]
        );
        assert_eq!(skipped.len(), 1);
        assert!(skipped[0].0.ends_with("session-5.json"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn temp_file_sweep_removes_only_orphaned_tmp_files() {
        let dir = temp_dir("sweep");
        let path = save_session(&dir, &sample_session(1)).unwrap();
        std::fs::write(dir.join(".session-1.json.999.0.tmp"), "half a snapshot").unwrap();
        std::fs::write(dir.join(".session-7.json.999.1.tmp"), "").unwrap();
        std::fs::write(dir.join("keep.txt"), "not a temp file").unwrap();

        assert_eq!(sweep_temp_files(&dir), 2);
        assert!(path.exists(), "real snapshots must survive the sweep");
        assert!(dir.join("keep.txt").exists());
        assert_eq!(sweep_temp_files(&dir), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_enforces_the_session_domain_cap() {
        // A snapshot written under a looser config (or hand-placed)
        // must not bypass the memory bound `create_session` enforces.
        let dir = temp_dir("domain-cap");
        let path = save_session(&dir, &sample_session(1)).unwrap();
        // Domain size is 6; a cap of 4 must reject it, the real default
        // must accept it.
        let err = load_session(&path, 4096, 4).unwrap_err();
        assert!(err.to_string().contains("exceeds"), "{err}");
        assert!(load_session(&path, 4096, 1 << 24).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unsupported_versions_are_rejected() {
        let dir = temp_dir("version");
        let path = dir.join("session-1.json");
        std::fs::write(
            &path,
            r#"{"format":"frapp-session","version":99,"session":1,"seed":0,
               "mechanism":{"kind":"det","gamma":19.0},"schema":[["a",2]],
               "shards":[{"ingested":0,"rng_draws":0,"counts":[0,0]}]}"#,
        )
        .unwrap();
        let err = load_session(&path, 4096, 1 << 24).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn closed_sessions_refuse_snapshots() {
        // The close/persister race: once a session is marked closed, a
        // racing save must not resurrect a file that close just
        // deleted.
        let dir = temp_dir("closed");
        use crate::session::{Mechanism, SessionRegistry};
        let reg = SessionRegistry::new();
        let session = reg
            .create(
                Schema::new(vec![("a", 3), ("b", 2)]).unwrap(),
                Mechanism::Deterministic { gamma: 19.0 },
                1,
                7,
                4096,
            )
            .unwrap()
            .session;
        save_session(&dir, &session).unwrap();
        let closed = reg.remove(session.id()).unwrap();
        remove_session_file(&dir, closed.id());
        let err = save_session(&dir, &closed).unwrap_err();
        assert!(err.to_string().contains("closed"), "{err}");
        assert!(!session_path(&dir, closed.id()).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_saves_never_corrupt_the_snapshot() {
        // The periodic persister, an on-demand persist op and an
        // eviction spill can all write the same session at once; every
        // interleaving must leave a parseable, complete snapshot.
        let dir = temp_dir("concurrent");
        let session = std::sync::Arc::new(sample_session(6));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let session = std::sync::Arc::clone(&session);
                let dir = dir.clone();
                scope.spawn(move || {
                    for _ in 0..10 {
                        save_session(&dir, &session).unwrap();
                    }
                });
            }
        });
        let recovered = load_session(&session_path(&dir, 6), 4096, 1 << 24).unwrap();
        assert_eq!(recovered.dump_shards(), session.dump_shards());
        // No stray temp files left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn session_ids_parse_from_file_names() {
        assert_eq!(session_id_from_file_name("session-42.json"), Some(42));
        assert_eq!(session_id_from_file_name(&session_file_name(7)), Some(7));
        assert_eq!(session_id_from_file_name("session-.json"), None);
        assert_eq!(session_id_from_file_name("session-42.json.tmp"), None);
        assert_eq!(session_id_from_file_name("other.json"), None);
    }

    #[test]
    fn close_removes_snapshot_files() {
        let dir = temp_dir("remove");
        let path = save_session(&dir, &sample_session(4)).unwrap();
        assert!(path.exists());
        remove_session_file(&dir, 4);
        assert!(!path.exists());
        remove_session_file(&dir, 4); // idempotent
        std::fs::remove_dir_all(&dir).ok();
    }
}
