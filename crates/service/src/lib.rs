//! `frapp-service` — an asynchronous, sharded privacy-collection and
//! reconstruction server for the FRAPP framework.
//!
//! The FRAPP paper (Agrawal & Haritsa, ICDE 2005) is a *deployment*
//! story as much as a mathematical one: millions of clients each
//! perturb their own record with a known Markov matrix and submit it;
//! the miner reconstructs aggregate distributions from the stream. The
//! rest of this workspace exercises that pipeline offline; this crate
//! is the online half:
//!
//! * [`session::CollectionSession`] — one schema + privacy mechanism +
//!   the perturbed counts collected so far, split across independently
//!   locked [`shard::Shard`]s so concurrent batches never contend on a
//!   single counter vector. The perturbation sampler is built once per
//!   session and shared by every shard.
//! * [`session::SessionRegistry`] — the server's table of live
//!   sessions, keyed by id and bounded by an LRU cap
//!   (`max_sessions`): a long-lived server evicts the
//!   least-recently-used session — spilling it to the persistence
//!   directory first, when configured — instead of growing without
//!   bound.
//! * [`persist`] — versioned JSON session snapshots: on demand (the
//!   `persist` op), on LRU eviction and on clean shutdown, plus
//!   *incremental* periodic flushes that append sparse per-shard delta
//!   lines instead of rewriting whole count vectors. `Server::bind`
//!   recovers them, restoring each shard's native RNG state words in
//!   O(1) so deterministic replay holds across restarts with zero
//!   fast-forward draws (v1 draw-count snapshots still recover via
//!   replay).
//! * [`metrics`] — per-session counters (ingest rate, reconstruction
//!   count, query-latency histogram) behind the `metrics` op.
//! * Reconstruction queries snapshot the merged counts and solve
//!   `A X̂ = Y` with either the O(n) gamma-diagonal closed form or a
//!   dense LU factorization cached per session
//!   (`frapp_linalg::solver::LinearSolver`), so repeated queries cost
//!   `O(n²)` instead of `O(n³)`.
//! * [`server::Server`] / [`client::Client`] — a line-delimited JSON
//!   protocol over TCP ([`protocol`]), with the `frapp-serve` and
//!   `frapp-client` binaries on top. The line protocol supports
//!   *pipelined* submits: `"ack":"deferred"` batches are ingested
//!   without a per-batch response, and a `flush` op returns the
//!   cumulative accepted watermark — decoupling ingest throughput from
//!   round-trip latency while preserving the partial-batch retry
//!   contract.
//! * [`http`] — a hand-rolled HTTP/1.1 front-end over the same
//!   transport-agnostic dispatch core ([`dispatch`]): `POST /sessions`,
//!   `POST /sessions/{id}/records`, `GET /sessions/{id}/reconstruct`
//!   and friends, with JSON bodies identical to the line protocol
//!   (enabled by `ServiceConfig::http_addr`; [`client::HttpClient`]
//!   speaks it). Request bodies may be `Content-Length` or
//!   `Transfer-Encoding: chunked`.
//! * [`fed`] — the federated multi-node collection tier (`frapp-serve
//!   --peers a:1,b:2 --replication 2`): sessions replicate
//!   cluster-wide under consistent-hash placement (`frapp_fed`),
//!   ingest partitions across a session's owner nodes with
//!   `(origin, seq)`-stamped forwards that are idempotent on
//!   redelivery, and reconstruction/stats fan out to the owners and
//!   merge their disjoint partitions before solving once — for
//!   pre-perturbed streams, bit-identical to a single-node run.
//!   Inter-node links pipeline through the same deferred-ack
//!   watermark contract and catch peers up from persisted watermarks
//!   after a restart.
//! * [`reactor`] — an optional nonblocking epoll/kqueue front-end
//!   (`frapp-serve --async`, `ServiceConfig::async_reactor`) serving
//!   *both* wire protocols from a fixed set of event-loop threads
//!   instead of a thread per connection: bit-identical responses, far
//!   higher concurrent-connection fan-in.
//!
//! The normative wire specification lives in `docs/PROTOCOL.md`, and
//! `docs/ARCHITECTURE.md` maps the whole workspace.
//!
//! ## In-process quickstart
//!
//! ```
//! use frapp_service::client::{Client, SessionSpec};
//! use frapp_service::config::ServiceConfig;
//! use frapp_service::server::Server;
//! use frapp_service::session::ReconstructionMethod;
//!
//! let handle = Server::bind(ServiceConfig::default()).unwrap().spawn().unwrap();
//! let mut client = Client::connect(handle.addr()).unwrap();
//!
//! let spec = SessionSpec::deterministic(vec![("color".into(), 3), ("size".into(), 2)], 19.0);
//! let session = client.create_session(&spec).unwrap();
//! client.submit_batch(session, &[vec![2, 1], vec![0, 0]], false).unwrap();
//! let rec = client.reconstruct(session, ReconstructionMethod::ClosedForm, true).unwrap();
//! assert_eq!(rec.estimates.len(), 6);
//! handle.shutdown().unwrap();
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod config;
pub mod dispatch;
pub mod error;
pub mod fault;
pub mod fed;
pub mod framing;
pub mod http;
pub mod jobs;
pub mod json;
pub mod metrics;
pub mod order;
pub mod persist;
pub mod protocol;
pub mod reactor;
pub mod server;
pub mod session;
pub mod shard;

pub use client::{Client, HttpClient, SessionSpec};
pub use config::ServiceConfig;
pub use error::{Result, ServiceError};
pub use fault::{FaultAction, FaultPlan, FaultSite};
pub use fed::FedState;
pub use jobs::{JobManager, JobState, MineAlgo, MineSpec};
pub use metrics::{
    MetricsReport, PeerHealth, PeerReplReport, SessionMetrics, TransportMetrics, TransportReport,
};
pub use server::{Server, ServerHandle};
pub use session::{
    CollectionSession, Mechanism, ReconstructionMethod, SessionRegistry, SessionSummary,
};
