//! Server configuration.

use crate::fault::FaultPlan;
use std::path::PathBuf;

/// Configuration for a [`crate::server::Server`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Address to bind, e.g. `127.0.0.1:7878`. Port `0` asks the OS for
    /// an ephemeral port (the default, which suits tests).
    pub addr: String,
    /// Address for the HTTP/1.1 front-end, e.g. `127.0.0.1:7880`.
    /// `None` (the default) disables HTTP entirely; when set, the same
    /// dispatch core serves REST routes alongside the line protocol
    /// (see [`crate::http`]).
    pub http_addr: Option<String>,
    /// Most concurrent connections the server accepts, *across both
    /// transports*. Each connection owns one OS thread, so an unbounded
    /// accept loop would let N clients exhaust the process; connections
    /// past the cap are refused with an in-band error (line protocol)
    /// or `503` (HTTP) and counted as sheds in the transport metrics.
    pub max_connections: usize,
    /// Default number of ingest shards for sessions that do not specify
    /// one.
    pub default_shards: usize,
    /// Default base seed for sessions that do not specify one.
    pub default_seed: u64,
    /// Maximum accepted request-line length in bytes. Lines beyond this
    /// are rejected rather than buffered, bounding per-connection
    /// memory.
    pub max_line_bytes: usize,
    /// Largest domain size for which the server will build a dense LU
    /// factorization on demand; `reconstruct` requests with
    /// `method = "cached_lu"` against bigger sessions are refused
    /// (`closed` stays available at any size).
    pub max_dense_domain: usize,
    /// Largest schema domain a `create_session` request may declare.
    /// Every shard allocates one `f64` counter per domain cell, so an
    /// unbounded schema (`[["a", 4294967295]]`) would let a single
    /// request allocate tens of gigabytes. The default (2^24 cells)
    /// caps a shard's counter vector at 128 MiB.
    pub max_session_domain: usize,
    /// Most sessions the registry keeps live at once; creating a
    /// session past the cap evicts the least-recently-used one (after
    /// spilling it to the persistence directory, when configured).
    /// Bounds a long-lived server's memory.
    pub max_sessions: usize,
    /// Directory for session snapshots. When set, `Server::bind`
    /// recovers every snapshot found there, the `persist` op (and the
    /// periodic persister) write snapshots, LRU-evicted sessions are
    /// spilled before dropping, and a clean shutdown snapshots every
    /// live session. `None` disables persistence entirely.
    pub persist_dir: Option<PathBuf>,
    /// Seconds between automatic snapshots of every live session; `0`
    /// disables the periodic persister (on-demand `persist`, eviction
    /// spill and shutdown snapshots still run when `persist_dir` is
    /// set).
    pub persist_interval_secs: u64,
    /// Serve both transports from the nonblocking epoll/kqueue reactor
    /// ([`crate::reactor`], `frapp-serve --async`) instead of one OS
    /// thread per connection. The wire behaviour is bit-identical —
    /// same dispatch core, same framing — but concurrent-connection
    /// fan-in is no longer bounded by thread count: each reactor
    /// thread multiplexes every connection assigned to it.
    /// `max_connections` still caps admissions across transports.
    pub async_reactor: bool,
    /// Number of reactor event-loop threads when `async_reactor` is
    /// set. Each thread runs an independent epoll/kqueue instance;
    /// all of them poll both listeners, so accepted connections spread
    /// across reactors without a handoff queue. Ignored (and
    /// irrelevant) in thread-per-connection mode. Values below 1 are
    /// treated as 1.
    pub reactor_threads: usize,
    /// The full ordered federation peer list (`host:port` per node,
    /// *including this node*), identical on every node so all of them
    /// build the same consistent-hash ring. Empty (the default) runs a
    /// plain single-node server with no federation layer at all.
    pub peers: Vec<String>,
    /// Federation replication factor: how many owner nodes each
    /// session's ingest is spread across (clamped to the peer count).
    /// Ignored without `peers`.
    pub replication: usize,
    /// This node's index in `peers`. `None` asks `Server::bind` to
    /// locate `addr` in the peer list, which only works when `addr` is
    /// a literal match (tests binding port 0 must set this
    /// explicitly).
    pub node_id: Option<usize>,
    /// TCP connect timeout for outbound client/replication
    /// connections, in milliseconds (`0` = OS default, unbounded).
    pub connect_timeout_ms: u64,
    /// Read timeout for outbound client/replication connections, in
    /// milliseconds (`0` = none). Bounds how long a stalled peer can
    /// wedge a federation link or CLI call mid-response.
    pub read_timeout_ms: u64,
    /// Write timeout for outbound client/replication connections, in
    /// milliseconds (`0` = none). Bounds how long a peer that accepts
    /// the connection but stops draining its socket can wedge a
    /// federation link mid-send.
    pub write_timeout_ms: u64,
    /// Idle timeout for *inbound* connections on the threaded
    /// front-ends, in milliseconds (`0`, the default, disables
    /// reaping). A connection that sends no byte for this long is
    /// closed and counted in
    /// [`crate::metrics::TransportReport::idle_reaped`], so stalled
    /// clients (slowloris) cannot pin `max_connections` slots forever.
    pub idle_timeout_ms: u64,
    /// Consecutive peer-link failures before the per-peer circuit
    /// breaker opens (health `down`): while open, sends fail fast
    /// without touching the socket until `breaker_cooldown_ms` elapses
    /// and a half-open probe is allowed through. The first failure
    /// already marks the peer `degraded`. Values below 1 are treated
    /// as 1.
    pub breaker_threshold: u32,
    /// How long an open circuit breaker back-pressures a peer link
    /// before allowing a half-open probe, in milliseconds.
    pub breaker_cooldown_ms: u64,
    /// Worker threads in the reactor's offload executor — the pool
    /// that runs dispatch (including federated fan-out and persistence
    /// I/O) off the event-loop threads. Ignored in
    /// thread-per-connection mode. Values below 1 are treated as 1.
    pub offload_threads: usize,
    /// Worker threads in the background-job pool ([`crate::jobs`]) that
    /// runs `mine_rules` / `classify` off the transport threads. Values
    /// below 1 are treated as 1.
    pub job_threads: usize,
    /// Most jobs the background-job submission queue holds; submits
    /// past the cap are shed with an in-band error instead of queueing
    /// unboundedly. Values below 1 are treated as 1.
    pub job_queue_depth: usize,
    /// Seconds a finished job (and its result) is retained before the
    /// lazy purge drops it; later `job_status` / `job_result` calls
    /// answer `unknown job`.
    pub job_result_ttl_secs: u64,
    /// The deterministic fault-injection plan (see [`crate::fault`]).
    /// Empty by default: no faults, no overhead. Populated via
    /// `frapp-serve --fault-plan` / `FRAPP_FAULT_PLAN` for soak and
    /// regression testing.
    pub fault_plan: FaultPlan,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            addr: "127.0.0.1:0".to_owned(),
            http_addr: None,
            max_connections: 1024,
            default_shards: std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(4),
            default_seed: 0xF4A9,
            max_line_bytes: 8 << 20,
            max_dense_domain: 4096,
            max_session_domain: 1 << 24,
            max_sessions: 1024,
            persist_dir: None,
            persist_interval_secs: 0,
            async_reactor: false,
            reactor_threads: 1,
            peers: Vec::new(),
            replication: 1,
            node_id: None,
            connect_timeout_ms: 5_000,
            read_timeout_ms: 10_000,
            write_timeout_ms: 10_000,
            idle_timeout_ms: 0,
            breaker_threshold: 3,
            breaker_cooldown_ms: 1_000,
            offload_threads: 2,
            job_threads: 2,
            job_queue_depth: 16,
            job_result_ttl_secs: 600,
            fault_plan: FaultPlan::default(),
        }
    }
}

impl ServiceConfig {
    /// A config bound to a specific address.
    pub fn with_addr(addr: impl Into<String>) -> Self {
        ServiceConfig {
            addr: addr.into(),
            ..ServiceConfig::default()
        }
    }

    /// Enables snapshot persistence under `dir`.
    pub fn with_persist_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.persist_dir = Some(dir.into());
        self
    }

    /// Enables the HTTP front-end on `addr` (port `0` for ephemeral).
    pub fn with_http_addr(mut self, addr: impl Into<String>) -> Self {
        self.http_addr = Some(addr.into());
        self
    }

    /// Selects the epoll/kqueue reactor front-end with `threads`
    /// event-loop threads (clamped to at least 1).
    pub fn with_reactor(mut self, threads: usize) -> Self {
        self.async_reactor = true;
        self.reactor_threads = threads.max(1);
        self
    }

    /// Joins this node into a federation: `peers` is the full ordered
    /// peer list (identical on every node), `node_id` this node's index
    /// in it, and `replication` the owner count per session.
    pub fn with_peers(mut self, peers: Vec<String>, node_id: usize, replication: usize) -> Self {
        self.peers = peers;
        self.node_id = Some(node_id);
        self.replication = replication;
        self
    }

    /// Installs a fault-injection plan (see [`crate::fault`]).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Enables idle-connection reaping on the threaded front-ends.
    pub fn with_idle_timeout_ms(mut self, ms: u64) -> Self {
        self.idle_timeout_ms = ms;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ServiceConfig::default();
        assert!(c.default_shards >= 1);
        assert!(c.max_line_bytes >= 1 << 20);
        assert_eq!(c.addr, "127.0.0.1:0");
        assert!(c.max_sessions >= 1);
        assert!(c.persist_dir.is_none());
        assert_eq!(c.persist_interval_secs, 0);
        assert!(c.http_addr.is_none());
        assert!(c.max_connections >= 64);
        assert!(!c.async_reactor);
        assert_eq!(c.reactor_threads, 1);
        assert!(c.peers.is_empty());
        assert_eq!(c.replication, 1);
        assert!(c.node_id.is_none());
        assert!(c.connect_timeout_ms > 0);
        assert!(c.read_timeout_ms > 0);
        assert!(c.write_timeout_ms > 0);
        assert_eq!(c.idle_timeout_ms, 0, "reaping must be opt-in");
        assert!(c.breaker_threshold >= 1);
        assert!(c.breaker_cooldown_ms > 0);
        assert!(c.offload_threads >= 1);
        assert!(c.job_threads >= 1);
        assert!(c.job_queue_depth >= 1);
        assert!(c.job_result_ttl_secs > 0);
        assert!(c.fault_plan.is_empty(), "no faults by default");
    }

    #[test]
    fn fault_plan_and_idle_timeout_builders() {
        let plan = FaultPlan::parse("seed=1,peer_send=drop:0.5").unwrap();
        let c = ServiceConfig::default()
            .with_fault_plan(plan)
            .with_idle_timeout_ms(250);
        assert!(!c.fault_plan.is_empty());
        assert_eq!(c.idle_timeout_ms, 250);
    }

    #[test]
    fn with_peers_joins_a_federation() {
        let peers = vec!["127.0.0.1:7001".to_owned(), "127.0.0.1:7002".to_owned()];
        let c = ServiceConfig::default().with_peers(peers.clone(), 1, 2);
        assert_eq!(c.peers, peers);
        assert_eq!(c.node_id, Some(1));
        assert_eq!(c.replication, 2);
    }

    #[test]
    fn with_reactor_selects_the_async_front_end() {
        let c = ServiceConfig::default().with_reactor(4);
        assert!(c.async_reactor);
        assert_eq!(c.reactor_threads, 4);
        assert_eq!(ServiceConfig::default().with_reactor(0).reactor_threads, 1);
    }

    #[test]
    fn with_http_addr_enables_the_http_front_end() {
        let c = ServiceConfig::default().with_http_addr("127.0.0.1:0");
        assert_eq!(c.http_addr.as_deref(), Some("127.0.0.1:0"));
    }

    #[test]
    fn with_persist_dir_sets_the_directory() {
        let c = ServiceConfig::default().with_persist_dir("/tmp/frapp-snapshots");
        assert_eq!(
            c.persist_dir.as_deref(),
            Some(std::path::Path::new("/tmp/frapp-snapshots"))
        );
    }
}
