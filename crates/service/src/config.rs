//! Server configuration.

/// Configuration for a [`crate::server::Server`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Address to bind, e.g. `127.0.0.1:7878`. Port `0` asks the OS for
    /// an ephemeral port (the default, which suits tests).
    pub addr: String,
    /// Default number of ingest shards for sessions that do not specify
    /// one.
    pub default_shards: usize,
    /// Default base seed for sessions that do not specify one.
    pub default_seed: u64,
    /// Maximum accepted request-line length in bytes. Lines beyond this
    /// are rejected rather than buffered, bounding per-connection
    /// memory.
    pub max_line_bytes: usize,
    /// Largest domain size for which the server will build a dense LU
    /// factorization on demand; `reconstruct` requests with
    /// `method = "cached_lu"` against bigger sessions are refused
    /// (`closed` stays available at any size).
    pub max_dense_domain: usize,
    /// Largest schema domain a `create_session` request may declare.
    /// Every shard allocates one `f64` counter per domain cell, so an
    /// unbounded schema (`[["a", 4294967295]]`) would let a single
    /// request allocate tens of gigabytes. The default (2^24 cells)
    /// caps a shard's counter vector at 128 MiB.
    pub max_session_domain: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            addr: "127.0.0.1:0".to_owned(),
            default_shards: std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(4),
            default_seed: 0xF4A9,
            max_line_bytes: 8 << 20,
            max_dense_domain: 4096,
            max_session_domain: 1 << 24,
        }
    }
}

impl ServiceConfig {
    /// A config bound to a specific address.
    pub fn with_addr(addr: impl Into<String>) -> Self {
        ServiceConfig {
            addr: addr.into(),
            ..ServiceConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ServiceConfig::default();
        assert!(c.default_shards >= 1);
        assert!(c.max_line_bytes >= 1 << 20);
        assert_eq!(c.addr, "127.0.0.1:0");
    }
}
