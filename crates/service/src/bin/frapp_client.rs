//! `frapp-client` — load generator and operations CLI for the FRAPP
//! collection server.
//!
//! ```text
//! frapp-client [load] [--addr 127.0.0.1:7878] [--records 100000]
//!              [--batch 1000] [--threads 4] [--gamma 19] [--seed 11]
//!              [--pre-perturb] [--pipeline] [--http] [--binary]
//! frapp-client list    [--addr HOST:PORT] [--http]
//! frapp-client metrics [--addr HOST:PORT] [--http] --session N
//! frapp-client server-metrics [--addr HOST:PORT] [--http]
//! frapp-client cluster-status [--addr HOST:PORT]
//! frapp-client persist [--addr HOST:PORT] [--http] [--session N]
//! frapp-client mine    [--addr HOST:PORT] [--http|--binary] --session N
//!                      [--algo apriori|fpgrowth] [--min-support F]
//!                      [--min-confidence F] [--max-length N]
//!                      [--no-wait] [--timeout-secs S]
//! frapp-client jobs    [--addr HOST:PORT] [--http|--binary]
//!                      [--job N [--cancel]]
//! ```
//!
//! The default `load` subcommand generates a synthetic CENSUS-like
//! workload (the paper's Table 1 schema), streams it to the server from
//! `--threads` concurrent connections, then issues a reconstruction
//! query and reports ingest throughput plus the total-variation
//! distance between the reconstructed and the true distribution.
//!
//! With `--pre-perturb` the *client* perturbs each record before
//! submission — the paper's actual trust model, where the server never
//! sees a raw record. Without it, records are submitted raw and the
//! server perturbs on ingest (useful for benchmarking the server-side
//! sampler).
//!
//! With `--pipeline`, submit batches use deferred acknowledgements
//! (`"ack":"deferred"`) and each worker flushes once at the end of its
//! stream: no round-trip per batch, which dominates throughput at
//! small batch sizes over real networks. With `--http`, requests go to
//! the HTTP front-end instead of the line protocol (`--addr` then
//! names the server's `--http-addr`); pipelining is a line-protocol
//! feature, so the two flags are mutually exclusive.
//!
//! With `--binary`, every connection upgrades to the compact binary
//! framing (`docs/PROTOCOL.md` §6) after connecting: submits go out as
//! binary `OP_SUBMIT` frames (no JSON on the ingest path) and every
//! other op tunnels through `OP_JSON` frames. Binary rides the line
//! protocol, so `--binary` and `--http` are mutually exclusive;
//! `--binary --pipeline` combines deferred acks with binary frames —
//! the fastest wire path.
//!
//! `list` prints one summary line per live session; `metrics` prints a
//! session's ingest counters and query-latency histogram;
//! `server-metrics` prints the per-transport counters (connections,
//! requests, sheds), — on an `--async` server — the reactor's
//! event-loop counters, and — on a federated server — the per-peer
//! replication counters (batches forwarded, acks, retries, peer-down
//! events); `cluster-status` prints the federation topology with
//! per-peer liveness; `persist` asks the server to snapshot one (or
//! all) sessions to its persistence directory.
//!
//! `mine` submits a `mine_rules` background job against a live
//! session, then polls until the job reaches a terminal state and
//! prints the association rules (skip the wait with `--no-wait`; the
//! job keeps running server-side and `jobs` can pick it up later).
//! `jobs` lists every retained job; `jobs --job N` prints one job's
//! status (plus its result when done), and `jobs --job N --cancel`
//! requests cooperative cancellation. All three framings work: plain
//! line-JSON, `--http` REST routes, or `--binary` (job ops tunnel
//! through `OP_JSON` frames).

use frapp_core::perturb::{GammaDiagonal, Perturber};
use frapp_service::client::{job_status_is_terminal, Client, HttpClient, SessionSpec};
use frapp_service::json::Value;
use frapp_service::session::ReconstructionMethod;
use frapp_service::session::{Reconstruction, SessionStats, SessionSummary};
use frapp_service::{MineAlgo, MineSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

struct Args {
    addr: String,
    records: usize,
    batch: usize,
    threads: usize,
    gamma: f64,
    seed: u64,
    pre_perturb: bool,
    pipeline: bool,
    http: bool,
    binary: bool,
    session: Option<u64>,
    mine_spec: MineSpec,
    job: Option<u64>,
    cancel: bool,
    no_wait: bool,
    timeout_secs: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage: frapp-client [load] [--addr HOST:PORT] [--records N] [--batch B] \
         [--threads T] [--gamma G] [--seed S] [--pre-perturb] [--pipeline] [--http] [--binary]\n\
         \x20      frapp-client list    [--addr HOST:PORT] [--http]\n\
         \x20      frapp-client metrics [--addr HOST:PORT] [--http] --session N\n\
         \x20      frapp-client server-metrics [--addr HOST:PORT] [--http]\n\
         \x20      frapp-client cluster-status [--addr HOST:PORT]\n\
         \x20      frapp-client persist [--addr HOST:PORT] [--http] [--session N]\n\
         \x20      frapp-client mine    [--addr HOST:PORT] [--http|--binary] --session N \
         [--algo apriori|fpgrowth] [--min-support F] [--min-confidence F] \
         [--max-length N] [--no-wait] [--timeout-secs S]\n\
         \x20      frapp-client jobs    [--addr HOST:PORT] [--http|--binary] [--job N [--cancel]]"
    );
    std::process::exit(2);
}

fn parse_args(args: impl Iterator<Item = String>) -> Args {
    let mut parsed = Args {
        addr: "127.0.0.1:7878".into(),
        records: 100_000,
        batch: 1_000,
        threads: 4,
        gamma: 19.0,
        seed: 11,
        pre_perturb: false,
        pipeline: false,
        http: false,
        binary: false,
        session: None,
        mine_spec: MineSpec::default(),
        job: None,
        cancel: false,
        no_wait: false,
        timeout_secs: 300,
    };
    let mut args = args;
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => parsed.addr = value("--addr"),
            "--records" => parsed.records = value("--records").parse().unwrap_or_else(|_| usage()),
            "--batch" => parsed.batch = value("--batch").parse().unwrap_or_else(|_| usage()),
            "--threads" => parsed.threads = value("--threads").parse().unwrap_or_else(|_| usage()),
            "--gamma" => parsed.gamma = value("--gamma").parse().unwrap_or_else(|_| usage()),
            "--seed" => parsed.seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--session" => {
                parsed.session = Some(value("--session").parse().unwrap_or_else(|_| usage()))
            }
            "--algo" => {
                parsed.mine_spec.algo = MineAlgo::from_wire(&value("--algo")).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage()
                })
            }
            "--min-support" => {
                parsed.mine_spec.min_support =
                    value("--min-support").parse().unwrap_or_else(|_| usage())
            }
            "--min-confidence" => {
                parsed.mine_spec.min_confidence = value("--min-confidence")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--max-length" => {
                parsed.mine_spec.max_length =
                    value("--max-length").parse().unwrap_or_else(|_| usage())
            }
            "--job" => parsed.job = Some(value("--job").parse().unwrap_or_else(|_| usage())),
            "--timeout-secs" => {
                parsed.timeout_secs = value("--timeout-secs").parse().unwrap_or_else(|_| usage())
            }
            "--cancel" => parsed.cancel = true,
            "--no-wait" => parsed.no_wait = true,
            "--pre-perturb" => parsed.pre_perturb = true,
            "--pipeline" => parsed.pipeline = true,
            "--http" => parsed.http = true,
            "--binary" => parsed.binary = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    if parsed.threads == 0 || parsed.batch == 0 || parsed.records == 0 {
        usage();
    }
    if parsed.pipeline && parsed.http {
        eprintln!("--pipeline is a line-protocol feature; drop --http to use it");
        usage();
    }
    if parsed.binary && parsed.http {
        eprintln!("--binary rides the line protocol; drop --http to use it");
        usage();
    }
    parsed
}

/// One connection over whichever transport `--http` selected. The ops
/// the CLI needs are mirrored across [`Client`] and [`HttpClient`], so
/// subcommands stay transport-agnostic.
enum AnyClient {
    Tcp(Box<Client>),
    Http(Box<HttpClient>),
}

impl AnyClient {
    fn connect(addr: &str, http: bool, binary: bool) -> AnyClient {
        let failed = |e: frapp_service::ServiceError| -> ! {
            eprintln!("frapp-client: cannot connect to {addr}: {e}");
            std::process::exit(1);
        };
        if http {
            match HttpClient::connect(addr) {
                Ok(c) => AnyClient::Http(Box::new(c)),
                Err(e) => failed(e),
            }
        } else {
            match Client::connect(addr) {
                Ok(mut c) => {
                    if binary {
                        if let Err(e) = c.negotiate_binary() {
                            eprintln!("frapp-client: binary negotiation with {addr} failed: {e}");
                            std::process::exit(1);
                        }
                    }
                    AnyClient::Tcp(Box::new(c))
                }
                Err(e) => failed(e),
            }
        }
    }

    fn create_session(&mut self, spec: &SessionSpec) -> frapp_service::Result<u64> {
        match self {
            AnyClient::Tcp(c) => c.create_session(spec),
            AnyClient::Http(c) => c.create_session(spec),
        }
    }

    fn submit_batch(
        &mut self,
        session: u64,
        records: &[Vec<u32>],
        pre_perturbed: bool,
    ) -> frapp_service::Result<usize> {
        match self {
            AnyClient::Tcp(c) => c.submit_batch(session, records, pre_perturbed),
            AnyClient::Http(c) => c.submit_batch(session, records, pre_perturbed),
        }
    }

    fn stats(&mut self, session: u64) -> frapp_service::Result<SessionStats> {
        match self {
            AnyClient::Tcp(c) => c.stats(session),
            AnyClient::Http(c) => c.stats(session),
        }
    }

    fn reconstruct(
        &mut self,
        session: u64,
        method: ReconstructionMethod,
        clamp: bool,
    ) -> frapp_service::Result<Reconstruction> {
        match self {
            AnyClient::Tcp(c) => c.reconstruct(session, method, clamp),
            AnyClient::Http(c) => c.reconstruct(session, method, clamp),
        }
    }

    fn close_session(&mut self, session: u64) -> frapp_service::Result<bool> {
        match self {
            AnyClient::Tcp(c) => c.close_session(session),
            AnyClient::Http(c) => c.close_session(session),
        }
    }

    fn list_sessions_detail(&mut self) -> frapp_service::Result<Vec<SessionSummary>> {
        match self {
            AnyClient::Tcp(c) => c.list_sessions_detail(),
            AnyClient::Http(c) => c.list_sessions_detail(),
        }
    }

    fn metrics(
        &mut self,
        session: u64,
    ) -> frapp_service::Result<(frapp_service::MetricsReport, u64)> {
        match self {
            AnyClient::Tcp(c) => c.metrics(session),
            AnyClient::Http(c) => c.metrics(session),
        }
    }

    fn persist(&mut self, session: Option<u64>) -> frapp_service::Result<Vec<u64>> {
        match self {
            AnyClient::Tcp(c) => c.persist(session),
            AnyClient::Http(c) => c.persist(session),
        }
    }

    fn server_metrics(&mut self) -> frapp_service::Result<frapp_service::TransportReport> {
        match self {
            AnyClient::Tcp(c) => c.server_metrics(),
            AnyClient::Http(c) => c.server_metrics(),
        }
    }

    fn mine_rules(&mut self, session: u64, spec: &MineSpec) -> frapp_service::Result<u64> {
        match self {
            AnyClient::Tcp(c) => c.mine_rules(session, spec),
            AnyClient::Http(c) => c.mine_rules(session, spec),
        }
    }

    fn job_status(&mut self, job: u64) -> frapp_service::Result<Value> {
        match self {
            AnyClient::Tcp(c) => c.job_status(job),
            AnyClient::Http(c) => c.job_status(job),
        }
    }

    fn job_result(&mut self, job: u64) -> frapp_service::Result<Value> {
        match self {
            AnyClient::Tcp(c) => c.job_result(job),
            AnyClient::Http(c) => c.job_result(job),
        }
    }

    fn job_cancel(&mut self, job: u64) -> frapp_service::Result<Value> {
        match self {
            AnyClient::Tcp(c) => c.job_cancel(job),
            AnyClient::Http(c) => c.job_cancel(job),
        }
    }

    fn list_jobs(&mut self) -> frapp_service::Result<Vec<Value>> {
        match self {
            AnyClient::Tcp(c) => c.list_jobs(),
            AnyClient::Http(c) => c.list_jobs(),
        }
    }

    fn wait_job(&mut self, job: u64, timeout: Duration) -> frapp_service::Result<Value> {
        match self {
            AnyClient::Tcp(c) => c.wait_job(job, timeout),
            AnyClient::Http(c) => c.wait_job(job, timeout),
        }
    }
}

/// Unwraps an ops-subcommand result with a clean one-line error —
/// server-side rejections (unknown session, no persistence directory)
/// are expected user-facing cases, not panics.
fn ok_or_exit<T>(result: frapp_service::Result<T>) -> T {
    result.unwrap_or_else(|e| {
        eprintln!("frapp-client: {e}");
        std::process::exit(1);
    })
}

fn run_list(args: Args) {
    let mut client = AnyClient::connect(&args.addr, args.http, args.binary);
    let sessions = ok_or_exit(client.list_sessions_detail());
    if sessions.is_empty() {
        println!("no live sessions");
        return;
    }
    println!(
        "{:>8}  {:>12}  {:>7}  {:>7}  {:>12}  {:>8}",
        "session", "domain_size", "shards", "gamma", "records", "queries"
    );
    for s in sessions {
        println!(
            "{:>8}  {:>12}  {:>7}  {:>7}  {:>12}  {:>8}",
            s.id, s.domain_size, s.shards, s.gamma, s.total, s.reconstructions
        );
    }
}

fn run_metrics(args: Args) {
    let session = args.session.unwrap_or_else(|| {
        eprintln!("metrics needs --session N");
        usage()
    });
    let mut client = AnyClient::connect(&args.addr, args.http, args.binary);
    let (report, total) = ok_or_exit(client.metrics(session));
    println!("session {session}");
    println!("  records (all-time):      {total}");
    println!("  records (this process):  {}", report.records_ingested);
    println!("  batches:                 {}", report.batches);
    println!(
        "  ingest rate:             {:.1} records/s over {:.1}s",
        report.ingest_rate, report.uptime_secs
    );
    println!("  reconstructions:         {}", report.reconstructions);
    let batch = &report.ingest_batch_size;
    if batch.count > 0 {
        println!(
            "  ingest batch size:       mean {:.1}, max {} records over {} batches",
            batch.mean_us, batch.max_us, batch.count
        );
    }
    let submit = &report.submit_latency;
    if submit.count > 0 {
        println!(
            "  submit latency:          mean {:.1} µs, max {} µs over {} batches",
            submit.mean_us, submit.max_us, submit.count
        );
    }
    let lat = &report.query_latency;
    if lat.count == 0 {
        println!("  query latency:           (no queries yet)");
        return;
    }
    println!(
        "  query latency:           mean {:.1} µs, max {} µs over {} queries",
        lat.mean_us, lat.max_us, lat.count
    );
    for &(lt_us, count) in &lat.buckets {
        println!("    < {lt_us:>10} µs  {count:>8}");
    }
}

fn run_server_metrics(args: Args) {
    let mut client = AnyClient::connect(&args.addr, args.http, args.binary);
    let r = ok_or_exit(client.server_metrics());
    println!("transport");
    println!(
        "  tcp:  {} connections, {} requests",
        r.tcp_connections, r.tcp_requests
    );
    println!(
        "  http: {} connections, {} requests",
        r.http_connections, r.http_requests
    );
    println!(
        "  binary: {} connections, {} requests",
        r.binary_connections, r.binary_requests
    );
    println!("  deferred batches: {}", r.deferred_batches);
    println!("  sheds:            {}", r.sheds);
    println!("  accept errors:    {}", r.accept_errors);
    println!("  idle reaped:      {}", r.idle_reaped);
    // All-zero on a thread-per-connection server; meaningful under
    // `frapp-serve --async`.
    println!("reactor");
    println!("  registered fds:   {}", r.reactor_registered_fds);
    println!("  wakeups:          {}", r.reactor_wakeups);
    println!("  partial reads:    {}", r.reactor_partial_reads);
    println!("  partial writes:   {}", r.reactor_partial_writes);
    // The federation section only exists on a `--peers` server, and
    // only the line protocol carries it back.
    if let AnyClient::Tcp(tcp) = &mut client {
        let peers = ok_or_exit(tcp.federation_metrics());
        if !peers.is_empty() {
            println!("federation");
            for p in peers {
                println!(
                    "  peer {} ({}): {} batches / {} records forwarded, \
                     {} acked, {} retries, {} peer-down, \
                     {} breaker trips, health {}",
                    p.node,
                    p.addr,
                    p.forwarded_batches,
                    p.forwarded_records,
                    p.acked_records,
                    p.retries,
                    p.peer_down,
                    p.breaker_trips,
                    p.health.as_str()
                );
            }
        }
    }
}

fn run_cluster_status(args: Args) {
    if args.http {
        eprintln!("cluster-status speaks the line protocol; drop --http");
        usage();
    }
    let mut client = AnyClient::connect(&args.addr, false, args.binary);
    let AnyClient::Tcp(tcp) = &mut client else {
        unreachable!("connected without --http");
    };
    let v = ok_or_exit(tcp.cluster_status());
    let federated = v
        .get("federated")
        .and_then(frapp_service::json::Value::as_bool)
        .unwrap_or(false);
    if !federated {
        println!("not federated (single-node server)");
        return;
    }
    let replication = v
        .get("replication")
        .and_then(frapp_service::json::Value::as_u64)
        .unwrap_or(1);
    let peers = v
        .get("peers")
        .and_then(frapp_service::json::Value::as_array)
        .unwrap_or(&[]);
    println!(
        "federation: {} node(s), replication factor {replication}",
        peers.len()
    );
    for p in peers {
        let get_u64 = |k| p.get(k).and_then(frapp_service::json::Value::as_u64);
        let get_bool = |k| p.get(k).and_then(frapp_service::json::Value::as_bool);
        // The breaker-driven health state refines the probe result:
        // a reachable peer can still be `degraded` (recent failures)
        // or `down` (breaker open, connects failing fast).
        let health = p
            .get("health")
            .and_then(frapp_service::json::Value::as_str)
            .unwrap_or("up");
        let status = if !get_bool("up").unwrap_or(false) {
            "DOWN".to_owned()
        } else if health == "up" {
            "up".to_owned()
        } else {
            format!("up ({health})")
        };
        println!(
            "  node {} {:<21} {status}{}",
            get_u64("node").unwrap_or(0),
            p.get("addr")
                .and_then(frapp_service::json::Value::as_str)
                .unwrap_or("?"),
            if get_bool("self").unwrap_or(false) {
                " (this node)"
            } else {
                ""
            },
        );
    }
}

fn run_persist(args: Args) {
    let mut client = AnyClient::connect(&args.addr, args.http, args.binary);
    let persisted = ok_or_exit(client.persist(args.session));
    println!(
        "persisted {} session{}: {persisted:?}",
        persisted.len(),
        if persisted.len() == 1 { "" } else { "s" }
    );
}

/// One human-readable status line for a job, shared by `mine` and
/// `jobs` output.
fn print_job_status(status: &Value) {
    let get_u64 = |k| status.get(k).and_then(Value::as_u64).unwrap_or(0);
    let get_str = |k| status.get(k).and_then(Value::as_str).unwrap_or("?");
    print!(
        "job {:>4}  {:<10}  {:<9}  session {:<4}  levels {:<3} pruned {}",
        get_u64("job"),
        get_str("op"),
        get_str("state"),
        get_u64("session"),
        get_u64("levels"),
        get_u64("pruned"),
    );
    if status.get("wall_ms").is_some() {
        print!("  ({} ms)", get_u64("wall_ms"));
    }
    if let Some(err) = status.get("error").and_then(Value::as_str) {
        print!("  error: {err}");
    }
    println!();
}

fn items_str(v: Option<&Value>) -> String {
    let items: Vec<String> = v
        .and_then(Value::as_array)
        .unwrap_or(&[])
        .iter()
        .filter_map(Value::as_u64)
        .map(|i| i.to_string())
        .collect();
    format!("[{}]", items.join(","))
}

/// Prints the `mine_rules` result payload: the run's parameters, the
/// per-level itemset profile and every rule with its quality measures.
fn print_mine_result(result: &Value) {
    let n = result.get("n").and_then(Value::as_u64).unwrap_or(0);
    println!(
        "mined {} frequent itemsets over {n} records (algo {}, min_support {}, min_confidence {})",
        result
            .get("frequent_itemsets")
            .and_then(Value::as_u64)
            .unwrap_or(0),
        result.get("algo").and_then(Value::as_str).unwrap_or("?"),
        result
            .get("min_support")
            .and_then(Value::as_f64)
            .unwrap_or(0.0),
        result
            .get("min_confidence")
            .and_then(Value::as_f64)
            .unwrap_or(0.0),
    );
    if let Some(profile) = result.get("level_profile").and_then(Value::as_array) {
        let counts: Vec<String> = profile
            .iter()
            .filter_map(Value::as_u64)
            .map(|c| c.to_string())
            .collect();
        println!("  level profile: {}", counts.join(" / "));
    }
    let rules = result.get("rules").and_then(Value::as_array).unwrap_or(&[]);
    println!("  {} rule(s)", rules.len());
    for r in rules {
        println!(
            "    {} => {}  support {:.4}  confidence {:.3}  lift {:.3}",
            items_str(r.get("antecedent")),
            items_str(r.get("consequent")),
            r.get("support").and_then(Value::as_f64).unwrap_or(0.0),
            r.get("confidence").and_then(Value::as_f64).unwrap_or(0.0),
            r.get("lift").and_then(Value::as_f64).unwrap_or(0.0),
        );
    }
}

fn run_mine(args: Args) {
    let session = args.session.unwrap_or_else(|| {
        eprintln!("mine needs --session N");
        usage()
    });
    let mut client = AnyClient::connect(&args.addr, args.http, args.binary);
    let job = ok_or_exit(client.mine_rules(session, &args.mine_spec));
    println!(
        "job {job} queued (session {session}, algo {}, min_support {}, min_confidence {})",
        args.mine_spec.algo.wire_name(),
        args.mine_spec.min_support,
        args.mine_spec.min_confidence,
    );
    if args.no_wait {
        println!("not waiting; poll with `frapp-client jobs --job {job}`");
        return;
    }
    let status = ok_or_exit(client.wait_job(job, Duration::from_secs(args.timeout_secs)));
    print_job_status(&status);
    if status.get("state").and_then(Value::as_str) == Some("done") {
        let result = ok_or_exit(client.job_result(job));
        print_mine_result(&result);
    } else {
        std::process::exit(1);
    }
}

fn run_jobs(args: Args) {
    let mut client = AnyClient::connect(&args.addr, args.http, args.binary);
    let Some(job) = args.job else {
        if args.cancel {
            eprintln!("--cancel needs --job N");
            usage();
        }
        let jobs = ok_or_exit(client.list_jobs());
        if jobs.is_empty() {
            println!("no retained jobs");
            return;
        }
        for status in &jobs {
            print_job_status(status);
        }
        return;
    };
    if args.cancel {
        let status = ok_or_exit(client.job_cancel(job));
        print_job_status(&status);
        return;
    }
    let status = ok_or_exit(client.job_status(job));
    print_job_status(&status);
    let is_done = status.get("state").and_then(Value::as_str) == Some("done");
    let mining = status.get("op").and_then(Value::as_str) == Some("mine_rules");
    if is_done && mining {
        let result = ok_or_exit(client.job_result(job));
        print_mine_result(&result);
    } else if is_done {
        let result = ok_or_exit(client.job_result(job));
        println!("  result: {}", result.to_json());
    } else if !job_status_is_terminal(&status) {
        println!(
            "  (still {}; re-run to poll)",
            status.get("state").and_then(Value::as_str).unwrap_or("?")
        );
    }
}

fn main() {
    let mut argv = std::env::args().skip(1).peekable();
    let subcommand = match argv.peek().map(String::as_str) {
        Some("list")
        | Some("metrics")
        | Some("server-metrics")
        | Some("cluster-status")
        | Some("persist")
        | Some("mine")
        | Some("jobs")
        | Some("load") => argv.next().expect("peeked"),
        _ => "load".to_owned(),
    };
    let args = parse_args(argv);
    match subcommand.as_str() {
        "list" => return run_list(args),
        "metrics" => return run_metrics(args),
        "server-metrics" => return run_server_metrics(args),
        "cluster-status" => return run_cluster_status(args),
        "persist" => return run_persist(args),
        "mine" => return run_mine(args),
        "jobs" => return run_jobs(args),
        _ => {}
    }
    let schema = frapp_data::census::schema();
    println!(
        "generating {} CENSUS-like records ({} attributes, {}-cell domain)...",
        args.records,
        schema.num_attributes(),
        schema.domain_size()
    );
    let dataset = frapp_data::census::census_like_n(args.records, args.seed);
    let true_counts = dataset.count_vector();

    let spec = SessionSpec {
        schema: schema
            .attributes()
            .iter()
            .map(|a| (a.name().to_owned(), a.cardinality()))
            .collect(),
        mechanism: frapp_service::Mechanism::Deterministic { gamma: args.gamma },
        shards: Some(args.threads),
        seed: Some(args.seed),
    };
    let mut control = AnyClient::connect(&args.addr, args.http, args.binary);
    let session = control.create_session(&spec).expect("create_session");
    println!(
        "session {session} open (gamma {}, {} shards{}{})",
        args.gamma,
        args.threads,
        if args.pipeline {
            ", pipelined acks"
        } else {
            ""
        },
        if args.http { ", http" } else { "" },
    );
    if args.binary {
        println!("binary framing negotiated on every connection");
    }

    // Optional client-side perturbation, mirroring the paper's trust
    // model: each "client" thread perturbs with its own seeded RNG.
    let gd = GammaDiagonal::new(&schema, args.gamma).expect("gamma > 1");

    let started = Instant::now();
    let records = dataset.records();
    std::thread::scope(|scope| {
        for (t, chunk) in records
            .chunks(records.len().div_ceil(args.threads))
            .enumerate()
        {
            let addr = &args.addr;
            let gd = &gd;
            let args = &args;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(args.seed ^ (t as u64 + 1) << 32);
                let mut client = AnyClient::connect(addr, args.http, args.binary);
                let mut submit = |batch: &[Vec<u32>], pre: bool| {
                    if args.pipeline {
                        let AnyClient::Tcp(tcp) = &mut client else {
                            unreachable!("--pipeline with --http is rejected at parse time");
                        };
                        tcp.submit_nowait(session, batch, pre).expect("submit");
                    } else {
                        client.submit_batch(session, batch, pre).expect("submit");
                    }
                };
                for batch in chunk.chunks(args.batch) {
                    if args.pre_perturb {
                        let perturbed: Vec<Vec<u32>> = batch
                            .iter()
                            .map(|r| gd.perturb_record(r, &mut rng).expect("valid record"))
                            .collect();
                        submit(&perturbed, true);
                    } else {
                        submit(batch, false);
                    }
                }
                if args.pipeline {
                    let AnyClient::Tcp(tcp) = &mut client else {
                        unreachable!("--pipeline with --http is rejected at parse time");
                    };
                    let accepted = tcp.flush().expect("flush");
                    assert_eq!(
                        accepted as usize,
                        chunk.len(),
                        "pipelined stream must be fully accepted"
                    );
                }
            });
        }
    });
    let ingest_secs = started.elapsed().as_secs_f64();

    let stats = control.stats(session).expect("stats");
    println!(
        "ingested {} records in {:.2}s ({:.0} records/s) across shards {:?}",
        stats.total,
        ingest_secs,
        stats.total as f64 / ingest_secs,
        stats.per_shard
    );

    let q0 = Instant::now();
    let rec = control
        .reconstruct(session, ReconstructionMethod::ClosedForm, true)
        .expect("reconstruct");
    let q_secs = q0.elapsed().as_secs_f64();

    // Total-variation distance between reconstructed and true
    // distributions.
    let n = rec.n as f64;
    let tv: f64 = rec
        .estimates
        .iter()
        .zip(&true_counts)
        .map(|(e, t)| (e / n - t / n).abs())
        .sum::<f64>()
        / 2.0;
    println!(
        "reconstruction ({} cells) in {:.3}s; total-variation distance to true distribution: {:.4}",
        rec.estimates.len(),
        q_secs,
        tv
    );
    control.close_session(session).expect("close_session");
}
