//! `frapp-client` — load generator for the FRAPP collection server.
//!
//! ```text
//! frapp-client [--addr 127.0.0.1:7878] [--records 100000] [--batch 1000]
//!              [--threads 4] [--gamma 19] [--seed 11] [--pre-perturb]
//! ```
//!
//! Generates a synthetic CENSUS-like workload (the paper's Table 1
//! schema), streams it to the server from `--threads` concurrent
//! connections, then issues a reconstruction query and reports ingest
//! throughput plus the total-variation distance between the
//! reconstructed and the true distribution.
//!
//! With `--pre-perturb` the *client* perturbs each record before
//! submission — the paper's actual trust model, where the server never
//! sees a raw record. Without it, records are submitted raw and the
//! server perturbs on ingest (useful for benchmarking the server-side
//! sampler).

use frapp_core::perturb::{GammaDiagonal, Perturber};
use frapp_service::client::{Client, SessionSpec};
use frapp_service::session::ReconstructionMethod;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

struct Args {
    addr: String,
    records: usize,
    batch: usize,
    threads: usize,
    gamma: f64,
    seed: u64,
    pre_perturb: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: frapp-client [--addr HOST:PORT] [--records N] [--batch B] \
         [--threads T] [--gamma G] [--seed S] [--pre-perturb]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut parsed = Args {
        addr: "127.0.0.1:7878".into(),
        records: 100_000,
        batch: 1_000,
        threads: 4,
        gamma: 19.0,
        seed: 11,
        pre_perturb: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => parsed.addr = value("--addr"),
            "--records" => parsed.records = value("--records").parse().unwrap_or_else(|_| usage()),
            "--batch" => parsed.batch = value("--batch").parse().unwrap_or_else(|_| usage()),
            "--threads" => parsed.threads = value("--threads").parse().unwrap_or_else(|_| usage()),
            "--gamma" => parsed.gamma = value("--gamma").parse().unwrap_or_else(|_| usage()),
            "--seed" => parsed.seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--pre-perturb" => parsed.pre_perturb = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    if parsed.threads == 0 || parsed.batch == 0 || parsed.records == 0 {
        usage();
    }
    parsed
}

fn main() {
    let args = parse_args();
    let schema = frapp_data::census::schema();
    println!(
        "generating {} CENSUS-like records ({} attributes, {}-cell domain)...",
        args.records,
        schema.num_attributes(),
        schema.domain_size()
    );
    let dataset = frapp_data::census::census_like_n(args.records, args.seed);
    let true_counts = dataset.count_vector();

    let spec = SessionSpec {
        schema: schema
            .attributes()
            .iter()
            .map(|a| (a.name().to_owned(), a.cardinality()))
            .collect(),
        mechanism: frapp_service::Mechanism::Deterministic { gamma: args.gamma },
        shards: Some(args.threads),
        seed: Some(args.seed),
    };
    let mut control = Client::connect(&args.addr).unwrap_or_else(|e| {
        eprintln!("frapp-client: cannot connect to {}: {e}", args.addr);
        std::process::exit(1);
    });
    let session = control.create_session(&spec).expect("create_session");
    println!(
        "session {session} open (gamma {}, {} shards)",
        args.gamma, args.threads
    );

    // Optional client-side perturbation, mirroring the paper's trust
    // model: each "client" thread perturbs with its own seeded RNG.
    let gd = GammaDiagonal::new(&schema, args.gamma).expect("gamma > 1");

    let started = Instant::now();
    let records = dataset.records();
    std::thread::scope(|scope| {
        for (t, chunk) in records
            .chunks(records.len().div_ceil(args.threads))
            .enumerate()
        {
            let addr = &args.addr;
            let gd = &gd;
            let args = &args;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("worker connect");
                let mut rng = StdRng::seed_from_u64(args.seed ^ (t as u64 + 1) << 32);
                for batch in chunk.chunks(args.batch) {
                    if args.pre_perturb {
                        let perturbed: Vec<Vec<u32>> = batch
                            .iter()
                            .map(|r| gd.perturb_record(r, &mut rng).expect("valid record"))
                            .collect();
                        client
                            .submit_batch(session, &perturbed, true)
                            .expect("submit");
                    } else {
                        client.submit_batch(session, batch, false).expect("submit");
                    }
                }
            });
        }
    });
    let ingest_secs = started.elapsed().as_secs_f64();

    let stats = control.stats(session).expect("stats");
    println!(
        "ingested {} records in {:.2}s ({:.0} records/s) across shards {:?}",
        stats.total,
        ingest_secs,
        stats.total as f64 / ingest_secs,
        stats.per_shard
    );

    let q0 = Instant::now();
    let rec = control
        .reconstruct(session, ReconstructionMethod::ClosedForm, true)
        .expect("reconstruct");
    let q_secs = q0.elapsed().as_secs_f64();

    // Total-variation distance between reconstructed and true
    // distributions.
    let n = rec.n as f64;
    let tv: f64 = rec
        .estimates
        .iter()
        .zip(&true_counts)
        .map(|(e, t)| (e / n - t / n).abs())
        .sum::<f64>()
        / 2.0;
    println!(
        "reconstruction ({} cells) in {:.3}s; total-variation distance to true distribution: {:.4}",
        rec.estimates.len(),
        q_secs,
        tv
    );
    control.close_session(session).expect("close_session");
}
