//! `frapp-serve` — run the FRAPP collection server.
//!
//! ```text
//! frapp-serve [--addr 127.0.0.1:7878] [--shards N] [--seed S]
//! ```
//!
//! The server prints its bound address on stdout (useful with port 0)
//! and runs until a client sends `{"op":"shutdown"}`.

use frapp_service::{Server, ServiceConfig};

fn usage() -> ! {
    eprintln!("usage: frapp-serve [--addr HOST:PORT] [--shards N] [--seed S]");
    std::process::exit(2);
}

fn main() {
    let mut config = ServiceConfig::with_addr("127.0.0.1:7878");
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--shards" => {
                config.default_shards = value("--shards").parse().unwrap_or_else(|_| usage())
            }
            "--seed" => config.default_seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }

    let server = match Server::bind(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("frapp-serve: bind failed: {e}");
            std::process::exit(1);
        }
    };
    match server.local_addr() {
        Ok(addr) => println!("frapp-serve listening on {addr}"),
        Err(e) => eprintln!("frapp-serve: {e}"),
    }
    if let Err(e) = server.run() {
        eprintln!("frapp-serve: {e}");
        std::process::exit(1);
    }
}
