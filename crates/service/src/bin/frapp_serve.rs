//! `frapp-serve` — run the FRAPP collection server.
//!
//! ```text
//! frapp-serve [--addr 127.0.0.1:7878] [--http-addr 127.0.0.1:7880]
//!             [--async] [--reactor-threads N] [--offload-threads N]
//!             [--shards N] [--seed S] [--max-sessions N]
//!             [--max-connections N] [--persist-dir PATH]
//!             [--persist-interval SECS]
//!             [--peers HOST:PORT,HOST:PORT,...] [--replication N]
//!             [--node-id K] [--connect-timeout-ms MS]
//!             [--read-timeout-ms MS] [--write-timeout-ms MS]
//!             [--idle-timeout-ms MS] [--breaker-threshold N]
//!             [--breaker-cooldown-ms MS] [--fault-plan SPEC]
//!             [--job-threads N] [--job-queue-depth N]
//!             [--job-ttl-secs SECS]
//! ```
//!
//! The server prints its bound address(es) on stdout (useful with port
//! 0) and runs until a client sends `{"op":"shutdown"}`.
//!
//! With `--http-addr`, an HTTP/1.1 front-end serves the same sessions
//! over REST routes (`POST /sessions`, `POST /sessions/{id}/records`,
//! `GET /sessions/{id}/reconstruct`, ...). `--max-connections` bounds
//! concurrent connections across both transports; connections past the
//! cap are refused with an in-band error and counted as sheds.
//!
//! With `--async`, both transports are served by the nonblocking
//! epoll/kqueue reactor instead of one OS thread per connection — same
//! wire behaviour, far higher concurrent-connection fan-in;
//! `--reactor-threads N` shards the event loop across N threads (see
//! `docs/ARCHITECTURE.md`).
//!
//! With `--persist-dir`, session snapshots found there are recovered on
//! startup, every live session is snapshotted on clean shutdown (and
//! every `--persist-interval` seconds when set), and sessions evicted
//! by the `--max-sessions` LRU cap are spilled to disk instead of
//! dropped.
//!
//! With `--peers`, this node joins a federation: every node is started
//! with the *identical* comma-separated peer list (this node's own
//! address included), sessions are replicated cluster-wide with their
//! ingest spread across `--replication` owner nodes by consistent
//! hashing, and reconstruction/stats merge the owners' partitions (see
//! `docs/ARCHITECTURE.md`). `--node-id` names this node's index in the
//! list, required when `--addr` is not a literal match (e.g. binding
//! `0.0.0.0`).
//!
//! `--fault-plan` (or the `FRAPP_FAULT_PLAN` environment variable)
//! arms deterministic fault injection for soak and chaos testing, e.g.
//! `seed=42,peer_send=drop:0.3,persist_sync=io_error:0.05` — see
//! `docs/ARCHITECTURE.md` §8 for the grammar and sites. The breaker
//! knobs (`--breaker-threshold`, `--breaker-cooldown-ms`) govern when
//! a flapping peer link trips to `down` and how long connects fail
//! fast before the next half-open probe; `--idle-timeout-ms` reaps
//! connections idle past the limit on the threaded front-ends.
//!
//! The background-job pool (`mine_rules`/`classify` ops) is sized by
//! `--job-threads`, bounded by `--job-queue-depth` (submissions past
//! the cap are shed with an in-band error), and finished job results
//! are retained for `--job-ttl-secs` before being purged.

use frapp_service::{Server, ServiceConfig};

fn usage() -> ! {
    eprintln!(
        "usage: frapp-serve [--addr HOST:PORT] [--http-addr HOST:PORT] [--async] \
         [--reactor-threads N] [--shards N] [--seed S] [--max-sessions N] \
         [--max-connections N] [--persist-dir PATH] [--persist-interval SECS] \
         [--peers HOST:PORT,...] [--replication N] [--node-id K] \
         [--connect-timeout-ms MS] [--read-timeout-ms MS] \
         [--write-timeout-ms MS] [--idle-timeout-ms MS] \
         [--offload-threads N] [--breaker-threshold N] \
         [--breaker-cooldown-ms MS] [--fault-plan SPEC] \
         [--job-threads N] [--job-queue-depth N] [--job-ttl-secs SECS]"
    );
    std::process::exit(2);
}

fn main() {
    let mut config = ServiceConfig::with_addr("127.0.0.1:7878");
    // The environment arms the fault plan first; an explicit
    // --fault-plan flag overrides it.
    if let Ok(spec) = std::env::var("FRAPP_FAULT_PLAN") {
        config.fault_plan = frapp_service::FaultPlan::parse(&spec).unwrap_or_else(|e| {
            eprintln!("FRAPP_FAULT_PLAN: {e}");
            std::process::exit(2);
        });
    }
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--http-addr" => config.http_addr = Some(value("--http-addr")),
            "--async" => config.async_reactor = true,
            "--reactor-threads" => {
                config.reactor_threads = value("--reactor-threads")
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage())
            }
            "--max-connections" => {
                config.max_connections = value("--max-connections")
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage())
            }
            "--shards" => {
                config.default_shards = value("--shards").parse().unwrap_or_else(|_| usage())
            }
            "--seed" => config.default_seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--max-sessions" => {
                config.max_sessions = value("--max-sessions").parse().unwrap_or_else(|_| usage())
            }
            "--persist-dir" => config.persist_dir = Some(value("--persist-dir").into()),
            "--persist-interval" => {
                config.persist_interval_secs = value("--persist-interval")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--peers" => {
                config.peers = frapp_fed::Topology::parse_peer_list(&value("--peers"))
                    .unwrap_or_else(|e| {
                        eprintln!("--peers: {e}");
                        usage()
                    })
            }
            "--replication" => {
                config.replication = value("--replication")
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage())
            }
            "--node-id" => {
                config.node_id = Some(value("--node-id").parse().unwrap_or_else(|_| usage()))
            }
            "--connect-timeout-ms" => {
                config.connect_timeout_ms = value("--connect-timeout-ms")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--read-timeout-ms" => {
                config.read_timeout_ms = value("--read-timeout-ms")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--write-timeout-ms" => {
                config.write_timeout_ms = value("--write-timeout-ms")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--idle-timeout-ms" => {
                config.idle_timeout_ms = value("--idle-timeout-ms")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--offload-threads" => {
                config.offload_threads = value("--offload-threads")
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage())
            }
            "--breaker-threshold" => {
                config.breaker_threshold = value("--breaker-threshold")
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage())
            }
            "--breaker-cooldown-ms" => {
                config.breaker_cooldown_ms = value("--breaker-cooldown-ms")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--job-threads" => {
                config.job_threads = value("--job-threads")
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage())
            }
            "--job-queue-depth" => {
                config.job_queue_depth = value("--job-queue-depth")
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage())
            }
            "--job-ttl-secs" => {
                config.job_result_ttl_secs =
                    value("--job-ttl-secs").parse().unwrap_or_else(|_| usage())
            }
            "--fault-plan" => {
                config.fault_plan = frapp_service::FaultPlan::parse(&value("--fault-plan"))
                    .unwrap_or_else(|e| {
                        eprintln!("--fault-plan: {e}");
                        usage()
                    })
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    if config.persist_interval_secs > 0 && config.persist_dir.is_none() {
        eprintln!("--persist-interval requires --persist-dir");
        usage();
    }
    if config.reactor_threads > 1 && !config.async_reactor {
        eprintln!("--reactor-threads requires --async");
        usage();
    }
    if (config.replication > 1 || config.node_id.is_some()) && config.peers.is_empty() {
        eprintln!("--replication/--node-id require --peers");
        usage();
    }

    let federation = (!config.peers.is_empty()).then(|| {
        (
            config.peers.len(),
            config.replication.min(config.peers.len()),
        )
    });
    let persist_dir = config.persist_dir.clone();
    let fault_spec = (!config.fault_plan.is_empty()).then(|| config.fault_plan.spec().to_owned());
    let (async_mode, reactor_threads) = (config.async_reactor, config.reactor_threads);
    let server = match Server::bind(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("frapp-serve: bind failed: {e}");
            std::process::exit(1);
        }
    };
    match server.local_addr() {
        Ok(addr) => println!("frapp-serve listening on {addr}"),
        Err(e) => eprintln!("frapp-serve: {e}"),
    }
    if let Some(addr) = server.local_http_addr() {
        println!("frapp-serve http on {addr}");
    }
    if async_mode {
        println!("front-end: async reactor ({reactor_threads} thread(s))");
    }
    if let Some((nodes, replication)) = federation {
        println!("federation: {nodes} node(s), replication factor {replication}");
    }
    if let Some(spec) = &fault_spec {
        println!("fault injection armed: {spec}");
    }
    if let Some(dir) = &persist_dir {
        let recovered = server.registry().ids();
        println!(
            "persistence: {} ({} session{} recovered)",
            dir.display(),
            recovered.len(),
            if recovered.len() == 1 { "" } else { "s" }
        );
    }
    if let Err(e) = server.run() {
        eprintln!("frapp-serve: {e}");
        std::process::exit(1);
    }
}
