//! Collection sessions and their registry.
//!
//! A [`CollectionSession`] is the server-side embodiment of one FRAPP
//! deployment: a schema, a perturbation mechanism at some privacy
//! level, and the (sharded) perturbed counts collected so far. Clients
//! stream records into it — pre-perturbed, or raw for server-side
//! perturbation — and issue reconstruction queries at any point; the
//! session answers from a snapshot of the merged shard counts using
//! either the O(n) gamma-diagonal closed form or a dense LU
//! factorization that is built once and cached for all later queries.

use crate::error::{Result, ServiceError};
use crate::metrics::{MetricsReport, SessionMetrics};
use crate::shard::{Shard, ShardDelta};
use frapp_core::perturb::{GammaDiagonal, Perturber, RandomizedGammaDiagonal};
use frapp_core::reconstruct::{clamp_counts, GammaDiagonalReconstructor};
use frapp_core::{CountAccumulator, PrivacyRequirement, Schema};
use frapp_linalg::solver::LinearSolver;
use frapp_linalg::LuDecomposition;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, RwLock};
use std::time::Instant;

/// The perturbation mechanism a session applies server-side.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mechanism {
    /// The deterministic gamma-diagonal matrix (paper Section 3).
    Deterministic {
        /// Amplification bound `γ > 1`.
        gamma: f64,
    },
    /// The randomized gamma-diagonal matrix (paper Section 4), with
    /// `α` expressed as a fraction of its natural scale `γx`.
    Randomized {
        /// Amplification bound `γ > 1`.
        gamma: f64,
        /// `α / (γx) ∈ [0, 1]`.
        alpha_fraction: f64,
    },
}

impl Mechanism {
    /// The deterministic mechanism at the `γ` induced by a `(ρ1, ρ2)`
    /// privacy requirement.
    pub fn from_requirement(req: &PrivacyRequirement) -> Self {
        Mechanism::Deterministic { gamma: req.gamma() }
    }

    /// The amplification bound of the (expected) matrix.
    pub fn gamma(&self) -> f64 {
        match self {
            Mechanism::Deterministic { gamma } | Mechanism::Randomized { gamma, .. } => *gamma,
        }
    }
}

/// How a reconstruction query should solve `A X̂ = Y`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconstructionMethod {
    /// The O(n) Sherman–Morrison closed form (the default).
    ClosedForm,
    /// Dense LU, factored on first use and cached for the session's
    /// lifetime; `O(n²)` per query thereafter.
    CachedLu,
    /// Dense LU factored from scratch on every query. Exists to make
    /// the cache's benefit measurable (see `benches/service.rs`); not
    /// something a production client should ask for.
    FreshLu,
}

impl ReconstructionMethod {
    /// Parses the wire name (`closed` / `cached_lu` / `fresh_lu`).
    pub fn from_wire(name: &str) -> Result<Self> {
        match name {
            "closed" => Ok(ReconstructionMethod::ClosedForm),
            "cached_lu" => Ok(ReconstructionMethod::CachedLu),
            "fresh_lu" => Ok(ReconstructionMethod::FreshLu),
            other => Err(ServiceError::InvalidRequest(format!(
                "unknown reconstruction method `{other}` (expected closed|cached_lu|fresh_lu)"
            ))),
        }
    }

    /// The wire name.
    pub fn wire_name(&self) -> &'static str {
        match self {
            ReconstructionMethod::ClosedForm => "closed",
            ReconstructionMethod::CachedLu => "cached_lu",
            ReconstructionMethod::FreshLu => "fresh_lu",
        }
    }
}

/// The result of a reconstruction query.
#[derive(Debug, Clone)]
pub struct Reconstruction {
    /// Total records ingested at snapshot time.
    pub n: u64,
    /// The estimated original count vector `X̂`.
    pub estimates: Vec<f64>,
    /// Which solver produced the estimates.
    pub method: ReconstructionMethod,
    /// Whether the cached LU factorization already existed when the
    /// query arrived (always `false` for the other methods).
    pub lu_cache_hit: bool,
}

/// Point-in-time ingest statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionStats {
    /// Total records ingested.
    pub total: u64,
    /// Records ingested per shard.
    pub per_shard: Vec<u64>,
}

/// Persisted per-shard state, produced by
/// [`CollectionSession::dump_shards`] and consumed by
/// [`CollectionSession::recover`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShardDump {
    /// Records counted by the shard.
    pub ingested: u64,
    /// RNG draws the shard's perturbation stream has consumed.
    pub rng_draws: u64,
    /// The RNG's native state words (snapshot format v2). `None` for
    /// state read from a v1 snapshot, where recovery falls back to
    /// fast-forwarding a freshly seeded generator by `rng_draws` steps.
    pub rng_state: Option<[u64; 4]>,
    /// The shard's count vector, one entry per domain cell.
    pub counts: Vec<f64>,
    /// Replication watermarks `(origin node, last applied seq)` —
    /// persisted with the counts so recovered dedup state always
    /// matches recovered counts. Empty for pre-federation snapshots.
    pub repl: Vec<(u64, u64)>,
}

/// A one-line summary of a live session, for `list_sessions`.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSummary {
    /// Session id.
    pub id: u64,
    /// Domain size of the session schema.
    pub domain_size: usize,
    /// Ingest shard count.
    pub shards: usize,
    /// Amplification bound of the mechanism.
    pub gamma: f64,
    /// Total records counted (across restarts).
    pub total: u64,
    /// Reconstruction queries answered by this process.
    pub reconstructions: u64,
}

/// One schema + mechanism + sharded perturbed counts.
pub struct CollectionSession {
    id: u64,
    schema: Schema,
    mechanism: Mechanism,
    seed: u64,
    perturber: Arc<dyn Perturber>,
    closed_form: GammaDiagonalReconstructor,
    shards: Vec<Mutex<Shard>>,
    next_shard: AtomicUsize,
    lu_cache: OnceLock<Arc<LuDecomposition>>,
    max_dense_domain: usize,
    /// Registry-clock value of the last request that touched this
    /// session; the LRU eviction key.
    last_touched: AtomicU64,
    metrics: SessionMetrics,
    /// Set when the registry retires the session (LRU eviction or an
    /// explicit close). Ingest refuses afterwards, so no record can be
    /// acknowledged after the eviction spill snapshotted the shards —
    /// an acked record is always in the snapshot.
    retired: AtomicBool,
    /// Set on explicit close only: snapshots are forbidden, so an
    /// in-flight periodic save cannot resurrect a closed session's
    /// counts after its file was deleted.
    closed: AtomicBool,
    /// Serializes snapshot writes and close-time file removal for this
    /// session (see [`crate::persist::save_session`]).
    persist_gate: Mutex<()>,
    /// Per-origin *durable* replication watermarks: entry `s` of the
    /// vector is the highest forwarded seq from that origin that shard
    /// `s` has had written to a persisted snapshot or delta. Reported
    /// alongside the live marks by `repl_status`, so forwarders can
    /// truncate replay history that survives even a crash of this
    /// node. Updated by the persistence layer after each successful
    /// write; initialized from the recovered dump (what was read back
    /// IS durable).
    durable_repl: Mutex<HashMap<u64, Vec<u64>>>,
    /// Monotonic full-snapshot sequence number. `0` means no full
    /// (v2) snapshot exists yet for this session; each successful full
    /// save bumps it, and every appended delta line records the base
    /// sequence it applies to, so recovery never replays deltas onto
    /// the wrong base.
    persist_seq: AtomicU64,
    /// RNG draws spent fast-forwarding shard generators at recovery
    /// time: zero when the session was created fresh or recovered from
    /// a v2 snapshot (native state words), positive only for v1
    /// draw-count snapshots.
    recovery_fast_forward: u64,
    /// Set for recovered sessions (and cleared by each successful full
    /// save): the next persistence flush must write a *full* snapshot,
    /// never a delta. A recovered session's shards have no in-memory
    /// delta baseline, and its on-disk delta file may carry a torn tail
    /// that would silently swallow lines appended after it — the fresh
    /// base (which bumps the sequence and removes the delta file)
    /// re-establishes both invariants.
    pending_full_snapshot: AtomicBool,
}

impl std::fmt::Debug for CollectionSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CollectionSession")
            .field("id", &self.id)
            .field("mechanism", &self.mechanism)
            .field("shards", &self.shards.len())
            .field("domain_size", &self.schema.domain_size())
            .finish()
    }
}

impl CollectionSession {
    /// Builds a session. `num_shards` must be at least 1; the expensive
    /// per-mechanism sampler state is built once here and shared across
    /// all shards.
    pub fn new(
        id: u64,
        schema: Schema,
        mechanism: Mechanism,
        num_shards: usize,
        seed: u64,
        max_dense_domain: usize,
    ) -> Result<Self> {
        if num_shards == 0 {
            return Err(ServiceError::InvalidRequest(
                "a session needs at least one shard".into(),
            ));
        }
        let shards = (0..num_shards)
            .map(|i| Mutex::new(Shard::new(schema.clone(), seed, i)))
            .collect();
        Self::assemble(id, schema, mechanism, seed, max_dense_domain, shards, 0)
    }

    /// Rebuilds a session from persisted state. The shard layout, seed
    /// and per-shard RNG positions come from the dump, so deterministic
    /// replay holds across the restart: raw records ingested after
    /// recovery are perturbed with exactly the draws the pre-restart
    /// process would have used. Dumps carrying native RNG state words
    /// (snapshot v2) recover in O(1); dumps without them (v1) pay an
    /// O(draws) fast-forward, reported by
    /// [`Self::recovery_fast_forward_draws`].
    pub fn recover(
        id: u64,
        schema: Schema,
        mechanism: Mechanism,
        seed: u64,
        max_dense_domain: usize,
        dumps: Vec<ShardDump>,
    ) -> Result<Self> {
        if dumps.is_empty() {
            return Err(ServiceError::Snapshot(
                "a session snapshot needs at least one shard".into(),
            ));
        }
        let mut fast_forward = 0u64;
        // What was just read back from disk is durable by definition:
        // seed the durable watermarks from the recovered dumps so
        // forwarders can truncate immediately after our restart.
        let recovered_marks: Vec<Vec<(u64, u64)>> = dumps.iter().map(|d| d.repl.clone()).collect();
        let shards = dumps
            .into_iter()
            .enumerate()
            .map(|(i, d)| {
                match d.rng_state {
                    Some(state) => Shard::recover_from_state(
                        schema.clone(),
                        i,
                        d.counts,
                        d.ingested,
                        state,
                        d.rng_draws,
                    ),
                    None => {
                        fast_forward += d.rng_draws;
                        Shard::recover(schema.clone(), seed, i, d.counts, d.ingested, d.rng_draws)
                    }
                }
                .map(|mut shard| {
                    shard.set_repl_watermarks(d.repl);
                    Mutex::new(shard)
                })
            })
            .collect::<Result<Vec<_>>>()?;
        let session = Self::assemble(
            id,
            schema,
            mechanism,
            seed,
            max_dense_domain,
            shards,
            fast_forward,
        )?;
        session.pending_full_snapshot.store(true, Ordering::SeqCst);
        session.record_durable_repl(&recovered_marks);
        Ok(session)
    }

    /// The shared tail of [`Self::new`] and [`Self::recover`]: builds
    /// the per-session sampler state around an existing shard set.
    fn assemble(
        id: u64,
        schema: Schema,
        mechanism: Mechanism,
        seed: u64,
        max_dense_domain: usize,
        shards: Vec<Mutex<Shard>>,
        recovery_fast_forward: u64,
    ) -> Result<Self> {
        let gd = GammaDiagonal::new(&schema, mechanism.gamma())?;
        let closed_form = GammaDiagonalReconstructor::new(&gd);
        let perturber: Arc<dyn Perturber> = match mechanism {
            Mechanism::Deterministic { .. } => Arc::new(gd),
            Mechanism::Randomized {
                gamma,
                alpha_fraction,
            } => Arc::new(RandomizedGammaDiagonal::with_alpha_fraction(
                &schema,
                gamma,
                alpha_fraction,
            )?),
        };
        Ok(CollectionSession {
            id,
            schema,
            mechanism,
            seed,
            perturber,
            closed_form,
            shards,
            next_shard: AtomicUsize::new(0),
            lu_cache: OnceLock::new(),
            max_dense_domain,
            last_touched: AtomicU64::new(0),
            metrics: SessionMetrics::new(),
            retired: AtomicBool::new(false),
            closed: AtomicBool::new(false),
            persist_gate: Mutex::new(()),
            durable_repl: Mutex::new(HashMap::new()),
            persist_seq: AtomicU64::new(0),
            recovery_fast_forward,
            pending_full_snapshot: AtomicBool::new(false),
        })
    }

    /// RNG draws spent fast-forwarding shard generators when this
    /// session was recovered: always zero for fresh sessions and v2
    /// (state-word) snapshots; positive only when a v1 (draw-count)
    /// snapshot forced the O(draws) replay.
    pub fn recovery_fast_forward_draws(&self) -> u64 {
        self.recovery_fast_forward
    }

    /// The sequence number of the last full snapshot written for this
    /// session (`0` = none yet). See [`crate::persist`].
    pub fn persist_seq(&self) -> u64 {
        self.persist_seq.load(Ordering::SeqCst)
    }

    /// Records that a full snapshot with sequence `seq` was committed
    /// (or recovered from disk).
    pub(crate) fn set_persist_seq(&self, seq: u64) {
        self.persist_seq.fetch_max(seq, Ordering::SeqCst);
    }

    /// Whether the next persistence flush must be a full snapshot
    /// (true for recovered sessions until their first successful full
    /// save re-establishes a clean base + delta file).
    pub fn needs_full_snapshot(&self) -> bool {
        self.pending_full_snapshot.load(Ordering::SeqCst)
    }

    /// Clears the full-snapshot requirement after a successful full
    /// save.
    pub(crate) fn clear_needs_full_snapshot(&self) {
        self.pending_full_snapshot.store(false, Ordering::SeqCst);
    }

    /// Forces the next persistence flush to be a full snapshot. Used
    /// when a save failed *after* its rename published a new base: the
    /// session's sequence is now behind the file on disk, so a delta
    /// append would carry a stale sequence the next recovery ignores.
    pub(crate) fn force_full_snapshot(&self) {
        self.pending_full_snapshot.store(true, Ordering::SeqCst);
    }

    /// The session id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The schema records must conform to.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The perturbation mechanism.
    pub fn mechanism(&self) -> Mechanism {
        self.mechanism
    }

    /// The session's base RNG seed (shard `i` derives its stream via
    /// [`crate::shard::shard_seed`]).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of ingest shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Live metrics counters.
    pub fn metrics(&self) -> &SessionMetrics {
        &self.metrics
    }

    /// A point-in-time metrics report.
    pub fn metrics_report(&self) -> MetricsReport {
        self.metrics.report()
    }

    /// Marks the session as touched at logical time `seq` (called by
    /// the registry on every lookup).
    pub(crate) fn touch(&self, seq: u64) {
        self.last_touched.fetch_max(seq, Ordering::Relaxed);
    }

    /// The registry-clock value of the most recent touch.
    pub fn last_touched(&self) -> u64 {
        self.last_touched.load(Ordering::Relaxed)
    }

    /// Marks the session retired (evicted or closed): ingest refuses
    /// from here on. Called by the registry *before* the eviction spill
    /// snapshots the shards, so every record a client ever saw
    /// acknowledged is in the spill: an in-flight submit either locked
    /// its shard before the flag was set (the spill's dump then waits
    /// on that lock and captures the batch) or observes the flag under
    /// the lock and errors without acking.
    pub(crate) fn retire(&self) {
        self.retired.store(true, Ordering::SeqCst);
    }

    /// Whether the session has been evicted or closed.
    pub fn is_retired(&self) -> bool {
        self.retired.load(Ordering::SeqCst)
    }

    /// Reverses [`Self::retire`] when an eviction is rolled back (its
    /// spill could not be written). No-op for closed sessions — close
    /// is final.
    pub(crate) fn unretire(&self) {
        if !self.is_closed() {
            self.retired.store(false, Ordering::SeqCst);
        }
    }

    /// Marks the session explicitly closed: retired, *and* snapshots
    /// are forbidden so a racing periodic save cannot resurrect it.
    pub(crate) fn mark_closed(&self) {
        self.retire();
        self.closed.store(true, Ordering::SeqCst);
    }

    /// Whether the session was explicitly closed.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }

    /// The lock serializing snapshot writes (and close-time snapshot
    /// removal) for this session. Poisoning is recovered: the guarded
    /// state lives on disk behind atomic renames, not in memory.
    pub(crate) fn persist_gate(&self) -> crate::order::Tracked<MutexGuard<'_, ()>> {
        crate::order::track(
            crate::order::RANK_PERSIST_GATE,
            "session::persist_gate",
            self.persist_gate
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner()),
        )
    }

    /// A one-line summary for `list_sessions`.
    pub fn summary(&self) -> SessionSummary {
        SessionSummary {
            id: self.id,
            domain_size: self.schema.domain_size(),
            shards: self.shards.len(),
            gamma: self.mechanism.gamma(),
            total: self.stats().total,
            // A single counter read — `list_sessions` summarises every
            // live session, so building the full histogram report here
            // would cost O(sessions × buckets) per listing.
            reconstructions: self.metrics.reconstructions(),
        }
    }

    /// Locks shard `index`, recovering from a poisoned mutex.
    ///
    /// Shard state is per-record consistent — every ingest either
    /// counts a record completely or not at all before any panic can
    /// propagate — so a panic that poisoned the lock left the counts
    /// valid (exactly as if the batch had been cut short, which is the
    /// documented partial-batch contract). Propagating the poison
    /// instead would permanently brick the session: every later ingest,
    /// snapshot or stats call would panic on `.lock().expect(..)`.
    fn lock_shard(&self, index: usize) -> crate::order::Tracked<MutexGuard<'_, Shard>> {
        crate::order::track(
            crate::order::RANK_SHARDS,
            "session::shards",
            // analyze: allow(panic_path): every caller bounds-checks index against the fixed shard count
            self.shards[index]
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner()),
        )
    }

    /// Ingests a batch on an automatically chosen shard (round-robin,
    /// so concurrent submitters spread across shard locks). Returns the
    /// shard index used.
    ///
    /// `pre_perturbed` declares whether the records already went
    /// through the mechanism client-side (the paper's deployment
    /// model) or should be perturbed here with the shard's RNG.
    pub fn submit_batch(&self, records: &[Vec<u32>], pre_perturbed: bool) -> Result<usize> {
        self.submit_slices(records.iter().map(Vec::as_slice), pre_perturbed)
    }

    /// Ingests a batch on a specific shard. Lets a client pin its
    /// stream to one shard, which (with the session seed) makes
    /// server-side perturbation bit-reproducible offline.
    pub fn submit_batch_to_shard(
        &self,
        shard_index: usize,
        records: &[Vec<u32>],
        pre_perturbed: bool,
    ) -> Result<()> {
        self.submit_slices_to_shard(
            shard_index,
            records.iter().map(Vec::as_slice),
            pre_perturbed,
        )
    }

    /// [`Self::submit_batch`] over borrowed record slices — the
    /// allocation-light entry point the wire layer's flat
    /// [`crate::protocol::RecordBatch`] feeds.
    pub fn submit_slices<'a>(
        &self,
        records: impl IntoIterator<Item = &'a [u32]>,
        pre_perturbed: bool,
    ) -> Result<usize> {
        let idx = self.next_shard.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        self.submit_slices_to_shard(idx, records, pre_perturbed)?;
        Ok(idx)
    }

    /// [`Self::submit_batch_to_shard`] over borrowed record slices.
    ///
    /// The whole batch is validated and encoded to domain indices
    /// *once, before the shard lock is taken*; under the lock the
    /// per-record work is two RNG draws and a counter increment (the
    /// index-domain fast path), with no allocation and no re-encode.
    ///
    /// The partial-batch contract is unchanged: if a record mid-batch
    /// fails validation, the records *before* it are counted (exactly
    /// as if the client had sent them in a smaller batch) and the error
    /// is a [`ServiceError::PartialBatch`] reporting how many were
    /// accepted, so a retrying client resubmits only the remainder.
    /// Clients that need all-or-nothing batches should validate against
    /// the schema before submitting.
    pub fn submit_slices_to_shard<'a>(
        &self,
        shard_index: usize,
        records: impl IntoIterator<Item = &'a [u32]>,
        pre_perturbed: bool,
    ) -> Result<()> {
        self.submit_slices_guarded(shard_index, records, pre_perturbed, None)
            .map(|_| ())
    }

    /// Ingests a batch forwarded by federation peer `origin` with
    /// forwarder-assigned sequence number `seq`. Returns `Ok(false)` —
    /// counting nothing — when the batch was already applied, so a
    /// forwarder retry after a dropped connection or a peer restart can
    /// never double-count.
    ///
    /// Routing is deterministic (`shard = seq % num_shards`) rather
    /// than round-robin: a retried batch must land on the shard whose
    /// watermark saw the original delivery, otherwise dedup state and
    /// counts could disagree.
    pub fn submit_slices_repl<'a>(
        &self,
        records: impl IntoIterator<Item = &'a [u32]>,
        pre_perturbed: bool,
        origin: u64,
        seq: u64,
    ) -> Result<bool> {
        let shard_index = (seq % self.shards.len() as u64) as usize;
        self.submit_slices_guarded(shard_index, records, pre_perturbed, Some((origin, seq)))
    }

    /// The shared ingest tail. With `repl = Some((origin, seq))` the
    /// shard's replication watermark is claimed in the same critical
    /// section as the ingest; `Ok(false)` reports a duplicate that was
    /// skipped (and acked upstream).
    fn submit_slices_guarded<'a>(
        &self,
        shard_index: usize,
        records: impl IntoIterator<Item = &'a [u32]>,
        pre_perturbed: bool,
        repl: Option<(u64, u64)>,
    ) -> Result<bool> {
        let started = Instant::now();
        if shard_index >= self.shards.len() {
            return Err(ServiceError::InvalidRequest(format!(
                "shard {shard_index} out of range (session has {})",
                self.shards.len()
            )));
        }
        // Validate + encode the batch up front, outside the shard lock:
        // validation is paid once per record here instead of twice
        // (perturber + encode) inside the lock, and an invalid record
        // truncates the batch to its valid prefix.
        let records = records.into_iter();
        let mut indices = Vec::with_capacity(records.size_hint().0);
        let mut failure: Option<ServiceError> = None;
        for record in records {
            match self.schema.encode(record) {
                Ok(idx) => indices.push(idx),
                Err(e) => {
                    failure = Some(e.into());
                    break;
                }
            }
        }
        let mut shard = self.lock_shard(shard_index);
        // Checked under the shard lock: a retired (evicted/closed)
        // session must never acknowledge new records, because the
        // eviction spill has already snapshotted — or is about to
        // snapshot — the shards, and an ack after the snapshot would be
        // silent data loss on the next recovery.
        if self.is_retired() {
            return Err(ServiceError::UnknownSession(self.id));
        }
        if let Some((origin, seq)) = repl {
            // Claimed under the same lock the ingest holds, so the
            // watermark can never say "applied" for counts that are not
            // there (or vice versa) — including across a crash, because
            // persistence dumps both under this lock too.
            if !shard.repl_claim(origin, seq) {
                return Ok(false);
            }
        }
        if pre_perturbed {
            shard.ingest_perturbed_indices(&indices);
        } else {
            shard.ingest_raw_indices(&mut indices, self.perturber.as_ref());
        }
        drop(shard);
        let accepted = indices.len() as u64;
        self.metrics.record_ingest(accepted, started.elapsed());
        match failure {
            Some(source) => Err(ServiceError::PartialBatch {
                accepted,
                source: Box::new(source),
            }),
            None => Ok(true),
        }
    }

    /// Per-shard replication watermarks for `origin`: entry `s` is the
    /// highest forwarded seq shard `s` has applied from that node (0 =
    /// none). A reconnecting forwarder resends exactly the batches with
    /// `seq > marks[seq % num_shards]`.
    pub fn repl_status(&self, origin: u64) -> Vec<u64> {
        (0..self.shards.len())
            .map(|index| {
                self.lock_shard(index)
                    .repl_watermarks()
                    .get(&origin)
                    .copied()
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Per-shard *durable* replication watermarks for `origin`: like
    /// [`Self::repl_status`], but counting only marks that reached a
    /// persisted snapshot or delta (all-zero for sessions that have
    /// never been persisted). A forwarder may forget replay batches at
    /// or below these — they survive even a crash of this node.
    pub fn durable_repl_status(&self, origin: u64) -> Vec<u64> {
        self.lock_durable_repl()
            .get(&origin)
            .cloned()
            .unwrap_or_else(|| vec![0; self.shards.len()])
    }

    /// Folds freshly persisted per-shard replication marks into the
    /// durable watermarks. `shard_marks[s]` lists the `(origin, seq)`
    /// pairs just written for shard `s`; marks only ever advance, so a
    /// slow full save racing a newer delta cannot regress them.
    pub(crate) fn record_durable_repl(&self, shard_marks: &[Vec<(u64, u64)>]) {
        let mut durable = self.lock_durable_repl();
        for (index, marks) in shard_marks.iter().enumerate().take(self.shards.len()) {
            for &(origin, seq) in marks {
                let slots = durable
                    .entry(origin)
                    .or_insert_with(|| vec![0; self.shards.len()]);
                if let Some(slot) = slots.get_mut(index) {
                    *slot = (*slot).max(seq);
                }
            }
        }
    }

    fn lock_durable_repl(&self) -> crate::order::Tracked<MutexGuard<'_, HashMap<u64, Vec<u64>>>> {
        crate::order::track(
            crate::order::RANK_DURABLE,
            "session::durable_repl",
            self.durable_repl
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner()),
        )
    }

    /// Merges all shard counts into one snapshot accumulator.
    pub fn snapshot(&self) -> CountAccumulator {
        let mut acc = CountAccumulator::new(self.schema.clone());
        for index in 0..self.shards.len() {
            self.lock_shard(index)
                .merge_into(&mut acc)
                // analyze: allow(panic_path): all shards are built from self.schema in the constructor
                .expect("shards share the session schema");
        }
        acc
    }

    /// Dumps every shard's persisted state (counts, ingested count, RNG
    /// position and native state words) for snapshotting. Pending
    /// per-shard deltas are left untouched.
    pub fn dump_shards(&self) -> Vec<ShardDump> {
        (0..self.shards.len())
            .map(|index| {
                let shard = self.lock_shard(index);
                ShardDump {
                    ingested: shard.ingested(),
                    rng_draws: shard.rng_draws(),
                    rng_state: Some(shard.rng_state()),
                    counts: shard.counts().to_vec(),
                    repl: shard
                        .repl_watermarks()
                        .iter()
                        .map(|(&o, &s)| (o, s))
                        .collect(),
                }
            })
            .collect()
    }

    /// Dumps every shard for a *full* snapshot, atomically draining
    /// each shard's pending delta under its lock (the full dump
    /// includes those increments, so they must not be re-flushed as
    /// deltas on top of the new base) and enabling delta tracking
    /// relative to the dumped state. If the snapshot write then fails,
    /// the caller must hand the drained deltas back via
    /// [`Self::restore_deltas`] so the delta stream over the previous
    /// base stays complete.
    pub fn dump_shards_flushing(&self) -> (Vec<ShardDump>, Vec<ShardDelta>) {
        let mut dumps = Vec::with_capacity(self.shards.len());
        let mut drained = Vec::new();
        for index in 0..self.shards.len() {
            let mut shard = self.lock_shard(index);
            dumps.push(ShardDump {
                ingested: shard.ingested(),
                rng_draws: shard.rng_draws(),
                rng_state: Some(shard.rng_state()),
                counts: shard.counts().to_vec(),
                repl: shard
                    .repl_watermarks()
                    .iter()
                    .map(|(&o, &s)| (o, s))
                    .collect(),
            });
            if let Some(delta) = shard.take_delta(index) {
                drained.push(delta);
            }
            // The dumped state is the base all later deltas are
            // relative to; tracking starts (or restarts, zeroed) here.
            shard.enable_delta_tracking();
        }
        (dumps, drained)
    }

    /// Drains the pending delta of every dirty shard (for an
    /// incremental persistence flush). Shards touched since their last
    /// flush each contribute one [`ShardDelta`]; clean shards
    /// contribute nothing. On a failed write, hand the result back via
    /// [`Self::restore_deltas`].
    pub fn take_dirty_deltas(&self) -> Vec<ShardDelta> {
        (0..self.shards.len())
            .filter_map(|index| self.lock_shard(index).take_delta(index))
            .collect()
    }

    /// Returns drained deltas to their shards after a failed flush
    /// write, so the increments are captured again by the next flush.
    pub fn restore_deltas(&self, deltas: &[ShardDelta]) {
        for delta in deltas {
            self.lock_shard(delta.shard).restore_delta(&delta.cells);
        }
    }

    /// Ingest statistics.
    pub fn stats(&self) -> SessionStats {
        let per_shard: Vec<u64> = (0..self.shards.len())
            .map(|index| self.lock_shard(index).ingested())
            .collect();
        SessionStats {
            total: per_shard.iter().sum(),
            per_shard,
        }
    }

    /// Refuses dense-LU work on domains past the configured limit.
    fn check_dense_domain(&self) -> Result<()> {
        if self.schema.domain_size() > self.max_dense_domain {
            return Err(ServiceError::InvalidRequest(format!(
                "domain size {} exceeds the dense-LU limit {}; use method `closed`",
                self.schema.domain_size(),
                self.max_dense_domain
            )));
        }
        Ok(())
    }

    /// The cached dense LU handle, building it on first use.
    fn cached_lu(&self) -> Result<(Arc<LuDecomposition>, bool)> {
        let hit = self.lu_cache.get().is_some();
        if !hit {
            self.check_dense_domain()?;
        }
        let lu = self.lu_cache.get_or_init(|| {
            let dense = GammaDiagonal::new(&self.schema, self.mechanism.gamma())
                // analyze: allow(panic_path): the same construction succeeded in Self::assemble
                .expect("validated at session construction")
                .as_uniform_diagonal()
                .to_dense();
            // analyze: allow(panic_path): gamma-diagonal matrices are diagonally dominant, hence invertible
            Arc::new(LuDecomposition::new(&dense).expect("gamma-diagonal matrices are invertible"))
        });
        Ok((Arc::clone(lu), hit))
    }

    /// Answers a reconstruction query from a snapshot of the current
    /// counts. `clamp` applies [`clamp_counts`] (non-negativity +
    /// rescale to `N`) to the estimates.
    pub fn reconstruct(&self, method: ReconstructionMethod, clamp: bool) -> Result<Reconstruction> {
        self.reconstruct_counts(self.snapshot(), method, clamp)
    }

    /// Answers a reconstruction query over an explicitly supplied
    /// perturbed-count snapshot — the federation coordinator's path: it
    /// merges the owners' disjoint partitions into one accumulator and
    /// solves *once* here, reusing this session's cached LU
    /// factorization instead of solving per peer. The snapshot must be
    /// over this session's schema.
    pub fn reconstruct_counts(
        &self,
        snapshot: CountAccumulator,
        method: ReconstructionMethod,
        clamp: bool,
    ) -> Result<Reconstruction> {
        if snapshot.schema() != &self.schema {
            return Err(ServiceError::InvalidRequest(
                "count snapshot schema does not match the session schema".into(),
            ));
        }
        let started = Instant::now();
        let n = snapshot.n();
        let counts = snapshot.into_counts();
        let (mut estimates, lu_cache_hit) = match method {
            ReconstructionMethod::ClosedForm => (self.closed_form.reconstruct(&counts), false),
            ReconstructionMethod::CachedLu => {
                let (lu, hit) = self.cached_lu()?;
                (lu.solve_system(&counts)?, hit)
            }
            ReconstructionMethod::FreshLu => {
                self.check_dense_domain()?;
                let dense = GammaDiagonal::new(&self.schema, self.mechanism.gamma())?
                    .as_uniform_diagonal()
                    .to_dense();
                let lu = LuDecomposition::new(&dense)?;
                (lu.solve_system(&counts)?, false)
            }
        };
        if clamp {
            clamp_counts(&mut estimates, n as f64);
        }
        self.metrics.record_reconstruction(started.elapsed());
        Ok(Reconstruction {
            n,
            estimates,
            method,
            lu_cache_hit,
        })
    }
}

/// The result of [`SessionRegistry::create`]: the new session, plus any
/// sessions the LRU policy evicted to make room for it (the caller —
/// typically the server — decides whether to persist them before the
/// last `Arc` drops).
#[derive(Debug)]
pub struct Created {
    /// The newly registered session.
    pub session: Arc<CollectionSession>,
    /// Least-recently-used sessions evicted to stay under the cap,
    /// oldest first. Empty while the registry is under capacity.
    pub evicted: Vec<Arc<CollectionSession>>,
}

/// The server's table of live sessions, bounded by an LRU cap.
///
/// Every lookup stamps the session with a registry-wide logical clock;
/// when `create` would exceed `max_sessions`, the sessions with the
/// oldest stamps are evicted (and handed back to the caller, so a
/// persistence layer can spill them to disk before they drop).
#[derive(Debug)]
pub struct SessionRegistry {
    next_id: AtomicU64,
    clock: AtomicU64,
    max_sessions: usize,
    sessions: RwLock<HashMap<u64, Arc<CollectionSession>>>,
    /// Weak handles to recently evicted sessions. Stale `Arc`s to an
    /// evicted session can outlive its registry entry (e.g. the
    /// periodic persister iterating a snapshot of `all()`), and such a
    /// holder could still write the session's snapshot; `remove` looks
    /// here when the live table misses, so a close can mark the
    /// evicted session closed and no stale writer can resurrect it.
    /// Entries whose sessions have fully dropped are pruned on insert.
    graveyard: Mutex<HashMap<u64, std::sync::Weak<CollectionSession>>>,
}

impl Default for SessionRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl SessionRegistry {
    /// An empty registry with no practical session cap.
    pub fn new() -> Self {
        Self::with_max_sessions(usize::MAX)
    }

    /// An empty registry that holds at most `max_sessions` live
    /// sessions (floored at 1), evicting least-recently-used sessions
    /// beyond that.
    pub fn with_max_sessions(max_sessions: usize) -> Self {
        SessionRegistry {
            next_id: AtomicU64::new(1),
            clock: AtomicU64::new(0),
            max_sessions: max_sessions.max(1),
            sessions: RwLock::new(HashMap::new()),
            graveyard: Mutex::new(HashMap::new()),
        }
    }

    /// Poison recovery as for the session map: the graveyard is a plain
    /// map of weak handles with no cross-entry invariants.
    fn lock_graveyard(
        &self,
    ) -> crate::order::Tracked<MutexGuard<'_, HashMap<u64, std::sync::Weak<CollectionSession>>>>
    {
        crate::order::track(
            crate::order::RANK_GRAVEYARD,
            "session::graveyard",
            self.graveyard
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner()),
        )
    }

    /// The registry's LRU capacity.
    pub fn max_sessions(&self) -> usize {
        self.max_sessions
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.read_map().len()
    }

    /// Whether the registry holds no sessions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Registry locks guard a plain `HashMap` whose insert/remove never
    /// leave it observable mid-operation, so a poisoned lock (a panic
    /// on some other connection thread) carries no integrity risk and
    /// is recovered rather than propagated.
    fn read_map(
        &self,
    ) -> crate::order::Tracked<std::sync::RwLockReadGuard<'_, HashMap<u64, Arc<CollectionSession>>>>
    {
        crate::order::track(
            crate::order::RANK_SESSIONS,
            "session::sessions",
            self.sessions
                .read()
                .unwrap_or_else(|poisoned| poisoned.into_inner()),
        )
    }

    fn write_map(
        &self,
    ) -> crate::order::Tracked<std::sync::RwLockWriteGuard<'_, HashMap<u64, Arc<CollectionSession>>>>
    {
        crate::order::track(
            crate::order::RANK_SESSIONS,
            "session::sessions",
            self.sessions
                .write()
                .unwrap_or_else(|poisoned| poisoned.into_inner()),
        )
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Creates and registers a session, evicting least-recently-used
    /// sessions if the registry is at capacity. Evicted sessions are
    /// removed from the registry immediately; callers that need to
    /// spill them to disk first should use [`Self::create_deferred`],
    /// whose victims stay registered (so concurrent `close` requests
    /// can still find them) until the spill commits.
    pub fn create(
        &self,
        schema: Schema,
        mechanism: Mechanism,
        num_shards: usize,
        seed: u64,
        max_dense_domain: usize,
    ) -> Result<Created> {
        let created =
            self.create_deferred(schema, mechanism, num_shards, seed, max_dense_domain)?;
        for victim in &created.evicted {
            self.commit_eviction(victim.id());
        }
        Ok(created)
    }

    /// Like [`Self::create`], but eviction is two-phase: victims are
    /// *retired* (ingest refuses, so nothing can be acknowledged after
    /// a spill snapshot) yet stay registered until the caller settles
    /// each one with [`Self::commit_eviction`] (spill done — drop it)
    /// or [`Self::abort_eviction`] (spill failed — keep it live).
    /// Keeping victims visible means a concurrent `close_session` still
    /// finds the session and marks it closed, which an in-flight spill
    /// observes under the persist gate — no snapshot can resurrect a
    /// session whose close was acknowledged.
    pub fn create_deferred(
        &self,
        schema: Schema,
        mechanism: Mechanism,
        num_shards: usize,
        seed: u64,
        max_dense_domain: usize,
    ) -> Result<Created> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.create_deferred_with_id(id, schema, mechanism, num_shards, seed, max_dense_domain)
    }

    /// [`Self::create_deferred`] with a caller-chosen session id — the
    /// federation path, where ids must be cluster-unique and identical
    /// on every owner node, so the coordinator allocates from its
    /// residue class and replicates the id explicitly. Fails if the id
    /// is already live; later auto-allocated ids are bumped past it.
    pub fn create_deferred_with_id(
        &self,
        id: u64,
        schema: Schema,
        mechanism: Mechanism,
        num_shards: usize,
        seed: u64,
        max_dense_domain: usize,
    ) -> Result<Created> {
        self.next_id
            .fetch_max(id.saturating_add(1), Ordering::Relaxed);
        let session = Arc::new(CollectionSession::new(
            id,
            schema,
            mechanism,
            num_shards,
            seed,
            max_dense_domain,
        )?);
        session.touch(self.tick());
        let mut map = self.write_map();
        if map.contains_key(&id) {
            return Err(ServiceError::InvalidRequest(format!(
                "session {id} already exists"
            )));
        }
        let mut evicted = Vec::new();
        // Retired sessions are evictions already in flight (another
        // create's spill); count only settled sessions against the cap
        // and never pick a victim twice.
        let mut live = map.values().filter(|s| !s.is_retired()).count();
        while live >= self.max_sessions {
            let lru = map
                .values()
                .filter(|s| !s.is_retired())
                .min_by_key(|s| (s.last_touched(), s.id()))
                .cloned();
            match lru {
                Some(victim) => {
                    victim.retire();
                    live -= 1;
                    evicted.push(victim);
                }
                None => break,
            }
        }
        map.insert(id, Arc::clone(&session));
        Ok(Created { session, evicted })
    }

    /// Settles a deferred eviction after its spill (or its intentional
    /// discard): drops the session from the registry without marking it
    /// closed, leaving a weak graveyard handle so a later `remove` can
    /// still close it while stale `Arc`s (a persister mid-iteration)
    /// could write its snapshot. Returns whether it was still
    /// registered.
    pub fn commit_eviction(&self, id: u64) -> bool {
        // The graveyard entry is published while the live-map write
        // lock is still held (the same lock `remove` takes first), so
        // there is no instant at which a concurrent close finds the
        // session in neither table — that gap would let a stale
        // persister Arc write a snapshot the close could never veto.
        let mut map = self.write_map();
        let Some(session) = map.get(&id).cloned() else {
            return false;
        };
        {
            let mut graveyard = self.lock_graveyard();
            graveyard.retain(|_, weak| weak.strong_count() > 0);
            graveyard.insert(id, Arc::downgrade(&session));
        }
        map.remove(&id);
        true
    }

    /// Rolls back a deferred eviction whose spill failed: the session
    /// is un-retired and serves again (it never left the registry). A
    /// session closed in the meantime stays closed.
    pub fn abort_eviction(&self, session: &Arc<CollectionSession>) {
        session.unretire();
        session.touch(self.tick());
    }

    /// Ensures freshly created sessions get ids strictly greater than
    /// `id`. `Server::bind` calls this for every snapshot file observed
    /// on disk — including ones it does *not* recover (cap-drained
    /// spills, unreadable files) — so a new session can never collide
    /// with an on-disk id and overwrite (or mis-delete) another
    /// session's snapshot.
    pub fn reserve_ids_through(&self, id: u64) {
        self.next_id
            .fetch_max(id.saturating_add(1), Ordering::Relaxed);
    }

    /// Re-registers a session recovered from a snapshot, preserving its
    /// id. Returns `false` (without inserting) if the registry is
    /// already at capacity or the id is taken.
    pub fn insert_recovered(&self, session: Arc<CollectionSession>) -> bool {
        let id = session.id();
        self.next_id.fetch_max(id + 1, Ordering::Relaxed);
        session.touch(self.tick());
        let mut map = self.write_map();
        if map.len() >= self.max_sessions || map.contains_key(&id) {
            return false;
        }
        map.insert(id, session);
        true
    }

    /// Looks up a session by id, stamping it as recently used.
    pub fn get(&self, id: u64) -> Result<Arc<CollectionSession>> {
        let session = self
            .read_map()
            .get(&id)
            .cloned()
            .ok_or(ServiceError::UnknownSession(id))?;
        session.touch(self.tick());
        Ok(session)
    }

    /// Removes a session, marking it closed (retired + snapshots
    /// forbidden) and returning it if it existed — so the caller can
    /// finish lifecycle work like deleting its snapshot file.
    ///
    /// A session recently evicted from the live table is resolved
    /// through the graveyard: if any stale `Arc` is still alive
    /// (capable of writing a snapshot), the close marks it closed so
    /// that writer refuses, and the handle is returned like a live
    /// removal.
    pub fn remove(&self, id: u64) -> Option<Arc<CollectionSession>> {
        let removed = self.write_map().remove(&id);
        if let Some(session) = &removed {
            session.mark_closed();
            return removed;
        }
        let stale = self.lock_graveyard().remove(&id)?.upgrade();
        if let Some(session) = &stale {
            session.mark_closed();
        }
        stale
    }

    /// Ids of all live sessions, ascending.
    pub fn ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.read_map().keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// All live sessions, ascending by id.
    pub fn all(&self) -> Vec<Arc<CollectionSession>> {
        let mut sessions: Vec<_> = self.read_map().values().cloned().collect();
        sessions.sort_unstable_by_key(|s| s.id());
        sessions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![("a", 3), ("b", 2)]).unwrap()
    }

    fn session(shards: usize) -> CollectionSession {
        CollectionSession::new(
            1,
            schema(),
            Mechanism::Deterministic { gamma: 19.0 },
            shards,
            7,
            4096,
        )
        .unwrap()
    }

    #[test]
    fn rejects_zero_shards_and_bad_gamma() {
        assert!(CollectionSession::new(
            1,
            schema(),
            Mechanism::Deterministic { gamma: 19.0 },
            0,
            7,
            4096
        )
        .is_err());
        assert!(CollectionSession::new(
            1,
            schema(),
            Mechanism::Deterministic { gamma: 0.5 },
            1,
            7,
            4096
        )
        .is_err());
    }

    #[test]
    fn round_robin_spreads_batches() {
        let s = session(3);
        for _ in 0..6 {
            s.submit_batch(&[vec![0, 0]], true).unwrap();
        }
        let stats = s.stats();
        assert_eq!(stats.total, 6);
        assert_eq!(stats.per_shard, vec![2, 2, 2]);
    }

    #[test]
    fn pre_perturbed_counts_pass_through_exactly() {
        let s = session(2);
        s.submit_batch_to_shard(0, &[vec![1, 1], vec![1, 1]], true)
            .unwrap();
        s.submit_batch_to_shard(1, &[vec![2, 0]], true).unwrap();
        let snap = s.snapshot();
        assert_eq!(snap.n(), 3);
        assert_eq!(snap.counts()[schema().encode(&[1, 1]).unwrap()], 2.0);
    }

    #[test]
    fn closed_and_cached_lu_reconstructions_agree() {
        let s = session(4);
        let records: Vec<Vec<u32>> = (0..3000)
            .map(|i| vec![i % 3, (i % 7 == 0) as u32])
            .collect();
        s.submit_batch(&records, false).unwrap();
        let closed = s
            .reconstruct(ReconstructionMethod::ClosedForm, false)
            .unwrap();
        let lu = s
            .reconstruct(ReconstructionMethod::CachedLu, false)
            .unwrap();
        assert_eq!(closed.n, 3000);
        for (a, b) in closed.estimates.iter().zip(&lu.estimates) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }

    #[test]
    fn lu_cache_is_hit_on_repeat_queries() {
        let s = session(1);
        s.submit_batch(&[vec![0, 0], vec![1, 1]], true).unwrap();
        let first = s
            .reconstruct(ReconstructionMethod::CachedLu, false)
            .unwrap();
        assert!(!first.lu_cache_hit);
        let second = s
            .reconstruct(ReconstructionMethod::CachedLu, false)
            .unwrap();
        assert!(second.lu_cache_hit);
    }

    #[test]
    fn dense_lu_refused_beyond_domain_limit() {
        let s = CollectionSession::new(
            1,
            schema(),
            Mechanism::Deterministic { gamma: 19.0 },
            1,
            7,
            4, // domain size is 6 > 4
        )
        .unwrap();
        assert!(s
            .reconstruct(ReconstructionMethod::CachedLu, false)
            .is_err());
        assert!(s.reconstruct(ReconstructionMethod::FreshLu, false).is_err());
        assert!(s
            .reconstruct(ReconstructionMethod::ClosedForm, false)
            .is_ok());
    }

    #[test]
    fn clamped_reconstruction_is_nonnegative_and_totals_n() {
        let s = session(2);
        let records: Vec<Vec<u32>> = (0..2000).map(|_| vec![0, 0]).collect();
        s.submit_batch(&records, false).unwrap();
        let rec = s
            .reconstruct(ReconstructionMethod::ClosedForm, true)
            .unwrap();
        assert!(rec.estimates.iter().all(|&e| e >= 0.0));
        assert!((rec.estimates.iter().sum::<f64>() - 2000.0).abs() < 1e-6);
    }

    #[test]
    fn randomized_mechanism_sessions_reconstruct_with_expected_matrix() {
        let s = CollectionSession::new(
            1,
            schema(),
            // alpha must stay below (n−1)x on this tiny 6-cell domain,
            // which caps the usable fraction at 5/19.
            Mechanism::Randomized {
                gamma: 19.0,
                alpha_fraction: 0.2,
            },
            2,
            9,
            4096,
        )
        .unwrap();
        let records: Vec<Vec<u32>> = (0..4000).map(|_| vec![2, 1]).collect();
        s.submit_batch(&records, false).unwrap();
        let rec = s
            .reconstruct(ReconstructionMethod::ClosedForm, true)
            .unwrap();
        let hot = schema().encode(&[2, 1]).unwrap();
        assert!(
            rec.estimates[hot] > 3000.0,
            "hot cell estimate {}",
            rec.estimates[hot]
        );
    }

    fn create_in(reg: &SessionRegistry, gamma: f64) -> Created {
        reg.create(schema(), Mechanism::Deterministic { gamma }, 1, 7, 4096)
            .unwrap()
    }

    #[test]
    fn registry_creates_gets_and_removes() {
        let reg = SessionRegistry::new();
        let a = reg
            .create(
                schema(),
                Mechanism::Deterministic { gamma: 19.0 },
                2,
                7,
                4096,
            )
            .unwrap()
            .session;
        let b = create_in(&reg, 9.0).session;
        assert_ne!(a.id(), b.id());
        assert_eq!(reg.ids(), vec![a.id(), b.id()]);
        assert_eq!(reg.get(a.id()).unwrap().num_shards(), 2);
        let removed = reg.remove(a.id()).expect("session was live");
        assert!(removed.is_closed() && removed.is_retired());
        assert!(reg.remove(a.id()).is_none());
        assert!(matches!(
            reg.get(a.id()),
            Err(ServiceError::UnknownSession(_))
        ));
    }

    #[test]
    fn registry_evicts_least_recently_used_at_capacity() {
        let reg = SessionRegistry::with_max_sessions(3);
        let s1 = create_in(&reg, 19.0).session;
        let s2 = create_in(&reg, 19.0).session;
        let s3 = create_in(&reg, 19.0).session;
        assert_eq!(reg.len(), 3);

        // Touch s1 so s2 becomes the LRU session.
        reg.get(s1.id()).unwrap();
        let created = create_in(&reg, 19.0);
        let s4 = created.session;
        assert_eq!(
            created.evicted.iter().map(|s| s.id()).collect::<Vec<_>>(),
            vec![s2.id()]
        );
        assert_eq!(reg.ids(), vec![s1.id(), s3.id(), s4.id()]);
        assert!(matches!(
            reg.get(s2.id()),
            Err(ServiceError::UnknownSession(_))
        ));

        // Without further touches, creation order is LRU order.
        let next = create_in(&reg, 19.0);
        assert_eq!(next.evicted[0].id(), s3.id());
    }

    #[test]
    fn retired_sessions_refuse_ingest_but_still_answer_queries() {
        let reg = SessionRegistry::with_max_sessions(1);
        let first = create_in(&reg, 19.0).session;
        first.submit_batch(&[vec![0, 0]], true).unwrap();
        // Evicting retires the session: a client still holding the Arc
        // (e.g. an in-flight submit) gets an error instead of an ack
        // that the eviction spill would have missed.
        let created = create_in(&reg, 19.0);
        assert_eq!(created.evicted[0].id(), first.id());
        assert!(first.is_retired());
        assert!(!first.is_closed());
        assert!(matches!(
            first.submit_batch(&[vec![1, 1]], true),
            Err(ServiceError::UnknownSession(_))
        ));
        // Reads still serve from the retired Arc.
        assert_eq!(first.stats().total, 1);
        assert!(first
            .reconstruct(ReconstructionMethod::ClosedForm, true)
            .is_ok());
    }

    #[test]
    fn deferred_eviction_keeps_victims_registered_until_settled() {
        let reg = SessionRegistry::with_max_sessions(1);
        let victim = create_in(&reg, 19.0).session;
        let created = reg
            .create_deferred(
                schema(),
                Mechanism::Deterministic { gamma: 19.0 },
                1,
                7,
                4096,
            )
            .unwrap();
        assert_eq!(created.evicted[0].id(), victim.id());
        // Victim: retired (refuses ingest) but still registered, so a
        // concurrent close can find it and mark it closed.
        assert!(victim.is_retired());
        assert!(reg.get(victim.id()).is_ok());
        // Abort (spill failed): victim serves again.
        reg.abort_eviction(&created.evicted[0]);
        assert!(!victim.is_retired());
        victim.submit_batch(&[vec![0, 0]], true).unwrap();
        // Commit (spill landed): victim leaves the registry.
        victim.retire();
        assert!(reg.commit_eviction(victim.id()));
        assert!(!reg.commit_eviction(victim.id()));
        assert!(reg.get(victim.id()).is_err());

        // A victim closed mid-spill stays closed: abort does not revive.
        let created = reg
            .create_deferred(
                schema(),
                Mechanism::Deterministic { gamma: 19.0 },
                1,
                7,
                4096,
            )
            .unwrap();
        let closing = &created.evicted[0];
        let closed = reg.remove(closing.id()).unwrap();
        reg.abort_eviction(closing);
        assert!(closed.is_closed() && closed.is_retired());
    }

    #[test]
    fn reserved_ids_are_never_reallocated() {
        // `Server::bind` reserves the ids of snapshots it does not
        // recover; new sessions must not collide with them (a collision
        // would overwrite the on-disk snapshot of a different session).
        let reg = SessionRegistry::new();
        reg.reserve_ids_through(5);
        assert_eq!(create_in(&reg, 19.0).session.id(), 6);
        // Reserving below the current counter is a no-op.
        reg.reserve_ids_through(2);
        assert_eq!(create_in(&reg, 19.0).session.id(), 7);
        // Saturates instead of wrapping to 0.
        reg.reserve_ids_through(u64::MAX);
    }

    #[test]
    fn closing_an_evicted_session_reaches_stale_arcs_via_the_graveyard() {
        // The persister can hold an Arc captured from `all()` before an
        // eviction; a close arriving after the eviction must still mark
        // the session closed so that stale holder's snapshot write
        // refuses instead of resurrecting an acknowledged close.
        let reg = SessionRegistry::with_max_sessions(1);
        let victim = create_in(&reg, 19.0).session; // stale Arc stand-in
        create_in(&reg, 19.0); // evicts + commits the victim
        assert!(reg.get(victim.id()).is_err(), "victim left the live table");
        assert!(!victim.is_closed());

        let closed = reg.remove(victim.id()).expect("graveyard hit");
        assert_eq!(closed.id(), victim.id());
        assert!(victim.is_closed(), "stale Arc observes the close");
        // Second close finds nothing (graveyard entry consumed).
        assert!(reg.remove(victim.id()).is_none());
    }

    #[test]
    fn registry_recovers_sessions_preserving_ids() {
        let reg = SessionRegistry::with_max_sessions(2);
        let recovered = Arc::new(
            CollectionSession::new(
                41,
                schema(),
                Mechanism::Deterministic { gamma: 19.0 },
                1,
                7,
                4096,
            )
            .unwrap(),
        );
        assert!(reg.insert_recovered(Arc::clone(&recovered)));
        // Duplicate ids are refused.
        assert!(!reg.insert_recovered(recovered));
        // New ids continue past the recovered one.
        let fresh = create_in(&reg, 19.0).session;
        assert_eq!(fresh.id(), 42);
        // At capacity, further recoveries are refused rather than
        // evicting live sessions.
        let extra = Arc::new(
            CollectionSession::new(
                99,
                schema(),
                Mechanism::Deterministic { gamma: 19.0 },
                1,
                7,
                4096,
            )
            .unwrap(),
        );
        assert!(!reg.insert_recovered(extra));
    }

    #[test]
    fn poisoned_shard_recovers_instead_of_bricking_the_session() {
        let s = Arc::new(session(2));
        s.submit_batch_to_shard(0, &[vec![0, 0], vec![1, 1]], true)
            .unwrap();
        // Panic on another thread while holding shard 0's lock,
        // poisoning the mutex.
        let poisoner = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                let _guard = s.shards[0].lock().unwrap();
                panic!("deliberate poison");
            })
        };
        assert!(poisoner.join().is_err(), "the poisoner must panic");
        assert!(s.shards[0].lock().is_err(), "the mutex must be poisoned");

        // Every later operation still serves: ingest on the poisoned
        // shard, stats, snapshot and reconstruction.
        s.submit_batch_to_shard(0, &[vec![2, 0]], true).unwrap();
        let stats = s.stats();
        assert_eq!(stats.total, 3);
        assert_eq!(stats.per_shard, vec![3, 0]);
        assert_eq!(s.snapshot().n(), 3);
        assert!(s
            .reconstruct(ReconstructionMethod::ClosedForm, true)
            .is_ok());
    }

    #[test]
    fn partial_batch_failure_reports_accepted_prefix() {
        let s = session(1);
        // Third record is invalid: the two before it stay counted and
        // the error says so.
        let err = s
            .submit_batch_to_shard(0, &[vec![0, 0], vec![1, 1], vec![9, 9], vec![2, 0]], true)
            .unwrap_err();
        match err {
            ServiceError::PartialBatch { accepted, .. } => assert_eq!(accepted, 2),
            other => panic!("expected PartialBatch, got {other:?}"),
        }
        assert_eq!(s.stats().total, 2);
        // Retrying only the remainder (per the contract) lands exactly
        // the valid records once.
        s.submit_batch_to_shard(0, &[vec![2, 0]], true).unwrap();
        assert_eq!(s.stats().total, 3);
    }

    #[test]
    fn replicated_submits_dedup_and_survive_dump_recover() {
        let s = session(3);
        let batch: Vec<Vec<u32>> = vec![vec![1, 1], vec![2, 0]];
        let refs: Vec<&[u32]> = batch.iter().map(Vec::as_slice).collect();
        assert!(s
            .submit_slices_repl(refs.iter().copied(), true, 7, 1)
            .unwrap());
        assert!(
            !s.submit_slices_repl(refs.iter().copied(), true, 7, 1)
                .unwrap(),
            "retry of the same (origin, seq) is skipped"
        );
        assert!(s
            .submit_slices_repl(refs.iter().copied(), true, 7, 2)
            .unwrap());
        assert_eq!(s.stats().total, 4, "two applied batches, one skipped");

        // seq routes deterministically: seq 1 -> shard 1, seq 2 -> shard 2.
        assert_eq!(s.repl_status(7), vec![0, 1, 2]);
        assert_eq!(s.repl_status(99), vec![0, 0, 0]);

        // Watermarks ride through dump/recover, so a forwarder retry
        // after the peer restarts is still rejected.
        let recovered = CollectionSession::recover(
            s.id(),
            schema(),
            s.mechanism(),
            s.seed(),
            4096,
            s.dump_shards(),
        )
        .unwrap();
        assert!(!recovered
            .submit_slices_repl(refs.iter().copied(), true, 7, 2)
            .unwrap());
        assert!(recovered
            .submit_slices_repl(refs.iter().copied(), true, 7, 5)
            .unwrap());
        assert_eq!(recovered.stats().total, 6);
    }

    #[test]
    fn merged_partition_reconstruction_matches_single_session() {
        // Two "owner" sessions holding disjoint partitions of a stream
        // reconstruct — after a coordinator-side merge — to exactly the
        // single-session estimates: the federated solve-once path.
        let whole = session(2);
        let left = session(2);
        let right = session(2);
        let records: Vec<Vec<u32>> = (0..1000).map(|i| vec![i % 3, i % 2]).collect();
        for (i, r) in records.iter().enumerate() {
            whole.submit_batch(std::slice::from_ref(r), true).unwrap();
            let owner = if i % 2 == 0 { &left } else { &right };
            owner.submit_batch(std::slice::from_ref(r), true).unwrap();
        }
        let mut merged = left.snapshot();
        merged.merge_checked(&right.snapshot()).unwrap();
        let fed = whole
            .reconstruct_counts(merged, ReconstructionMethod::CachedLu, false)
            .unwrap();
        let single = whole
            .reconstruct(ReconstructionMethod::CachedLu, false)
            .unwrap();
        assert_eq!(fed.n, 1000);
        assert_eq!(fed.estimates, single.estimates, "bitwise identical");

        // Schema mismatch is refused.
        let alien = CountAccumulator::new(Schema::new(vec![("z", 4)]).unwrap());
        assert!(whole
            .reconstruct_counts(alien, ReconstructionMethod::ClosedForm, false)
            .is_err());
    }

    #[test]
    fn explicit_id_creation_reserves_and_refuses_duplicates() {
        let reg = SessionRegistry::new();
        let fed = reg
            .create_deferred_with_id(
                42,
                schema(),
                Mechanism::Deterministic { gamma: 19.0 },
                1,
                7,
                4096,
            )
            .unwrap()
            .session;
        assert_eq!(fed.id(), 42);
        assert!(reg
            .create_deferred_with_id(
                42,
                schema(),
                Mechanism::Deterministic { gamma: 19.0 },
                1,
                7,
                4096,
            )
            .is_err());
        // Auto-allocated ids continue past the explicit one.
        assert_eq!(create_in(&reg, 19.0).session.id(), 43);
    }

    #[test]
    fn metrics_track_ingest_and_reconstructions() {
        let s = session(2);
        s.submit_batch(&[vec![0, 0], vec![1, 1]], true).unwrap();
        s.submit_batch(&[vec![2, 0]], true).unwrap();
        s.reconstruct(ReconstructionMethod::ClosedForm, true)
            .unwrap();
        s.reconstruct(ReconstructionMethod::ClosedForm, false)
            .unwrap();
        let report = s.metrics_report();
        assert_eq!(report.records_ingested, 3);
        assert_eq!(report.batches, 2);
        assert_eq!(report.reconstructions, 2);
        assert_eq!(report.query_latency.count, 2);
        let summary = s.summary();
        assert_eq!(summary.total, 3);
        assert_eq!(summary.reconstructions, 2);
        assert_eq!(summary.domain_size, 6);
    }

    #[test]
    fn dump_and_recover_roundtrip_preserves_counts_and_replay() {
        let original = session(2);
        let raw: Vec<Vec<u32>> = (0..500).map(|i| vec![i % 3, i % 2]).collect();
        original.submit_batch_to_shard(0, &raw, false).unwrap();
        original.submit_batch_to_shard(1, &raw, false).unwrap();

        let recovered = CollectionSession::recover(
            original.id(),
            schema(),
            original.mechanism(),
            original.seed(),
            4096,
            original.dump_shards(),
        )
        .unwrap();
        assert_eq!(recovered.snapshot().counts(), original.snapshot().counts());

        // Continued raw ingest matches an uninterrupted session.
        let more: Vec<Vec<u32>> = (0..300).map(|i| vec![(i + 2) % 3, i % 2]).collect();
        original.submit_batch_to_shard(0, &more, false).unwrap();
        recovered.submit_batch_to_shard(0, &more, false).unwrap();
        assert_eq!(recovered.snapshot().counts(), original.snapshot().counts());
        let a = original
            .reconstruct(ReconstructionMethod::ClosedForm, false)
            .unwrap();
        let b = recovered
            .reconstruct(ReconstructionMethod::ClosedForm, false)
            .unwrap();
        assert_eq!(a.estimates, b.estimates);
    }

    #[test]
    fn wire_method_names_roundtrip() {
        for m in [
            ReconstructionMethod::ClosedForm,
            ReconstructionMethod::CachedLu,
            ReconstructionMethod::FreshLu,
        ] {
            assert_eq!(ReconstructionMethod::from_wire(m.wire_name()).unwrap(), m);
        }
        assert!(ReconstructionMethod::from_wire("qr").is_err());
    }
}
