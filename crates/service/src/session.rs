//! Collection sessions and their registry.
//!
//! A [`CollectionSession`] is the server-side embodiment of one FRAPP
//! deployment: a schema, a perturbation mechanism at some privacy
//! level, and the (sharded) perturbed counts collected so far. Clients
//! stream records into it — pre-perturbed, or raw for server-side
//! perturbation — and issue reconstruction queries at any point; the
//! session answers from a snapshot of the merged shard counts using
//! either the O(n) gamma-diagonal closed form or a dense LU
//! factorization that is built once and cached for all later queries.

use crate::error::{Result, ServiceError};
use crate::shard::Shard;
use frapp_core::perturb::{GammaDiagonal, Perturber, RandomizedGammaDiagonal};
use frapp_core::reconstruct::{clamp_counts, GammaDiagonalReconstructor};
use frapp_core::{CountAccumulator, PrivacyRequirement, Schema};
use frapp_linalg::solver::LinearSolver;
use frapp_linalg::LuDecomposition;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

/// The perturbation mechanism a session applies server-side.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mechanism {
    /// The deterministic gamma-diagonal matrix (paper Section 3).
    Deterministic {
        /// Amplification bound `γ > 1`.
        gamma: f64,
    },
    /// The randomized gamma-diagonal matrix (paper Section 4), with
    /// `α` expressed as a fraction of its natural scale `γx`.
    Randomized {
        /// Amplification bound `γ > 1`.
        gamma: f64,
        /// `α / (γx) ∈ [0, 1]`.
        alpha_fraction: f64,
    },
}

impl Mechanism {
    /// The deterministic mechanism at the `γ` induced by a `(ρ1, ρ2)`
    /// privacy requirement.
    pub fn from_requirement(req: &PrivacyRequirement) -> Self {
        Mechanism::Deterministic { gamma: req.gamma() }
    }

    /// The amplification bound of the (expected) matrix.
    pub fn gamma(&self) -> f64 {
        match self {
            Mechanism::Deterministic { gamma } | Mechanism::Randomized { gamma, .. } => *gamma,
        }
    }
}

/// How a reconstruction query should solve `A X̂ = Y`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconstructionMethod {
    /// The O(n) Sherman–Morrison closed form (the default).
    ClosedForm,
    /// Dense LU, factored on first use and cached for the session's
    /// lifetime; `O(n²)` per query thereafter.
    CachedLu,
    /// Dense LU factored from scratch on every query. Exists to make
    /// the cache's benefit measurable (see `benches/service.rs`); not
    /// something a production client should ask for.
    FreshLu,
}

impl ReconstructionMethod {
    /// Parses the wire name (`closed` / `cached_lu` / `fresh_lu`).
    pub fn from_wire(name: &str) -> Result<Self> {
        match name {
            "closed" => Ok(ReconstructionMethod::ClosedForm),
            "cached_lu" => Ok(ReconstructionMethod::CachedLu),
            "fresh_lu" => Ok(ReconstructionMethod::FreshLu),
            other => Err(ServiceError::InvalidRequest(format!(
                "unknown reconstruction method `{other}` (expected closed|cached_lu|fresh_lu)"
            ))),
        }
    }

    /// The wire name.
    pub fn wire_name(&self) -> &'static str {
        match self {
            ReconstructionMethod::ClosedForm => "closed",
            ReconstructionMethod::CachedLu => "cached_lu",
            ReconstructionMethod::FreshLu => "fresh_lu",
        }
    }
}

/// The result of a reconstruction query.
#[derive(Debug, Clone)]
pub struct Reconstruction {
    /// Total records ingested at snapshot time.
    pub n: u64,
    /// The estimated original count vector `X̂`.
    pub estimates: Vec<f64>,
    /// Which solver produced the estimates.
    pub method: ReconstructionMethod,
    /// Whether the cached LU factorization already existed when the
    /// query arrived (always `false` for the other methods).
    pub lu_cache_hit: bool,
}

/// Point-in-time ingest statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionStats {
    /// Total records ingested.
    pub total: u64,
    /// Records ingested per shard.
    pub per_shard: Vec<u64>,
}

/// One schema + mechanism + sharded perturbed counts.
pub struct CollectionSession {
    id: u64,
    schema: Schema,
    mechanism: Mechanism,
    seed: u64,
    perturber: Arc<dyn Perturber>,
    closed_form: GammaDiagonalReconstructor,
    shards: Vec<Mutex<Shard>>,
    next_shard: AtomicUsize,
    lu_cache: OnceLock<Arc<LuDecomposition>>,
    max_dense_domain: usize,
}

impl std::fmt::Debug for CollectionSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CollectionSession")
            .field("id", &self.id)
            .field("mechanism", &self.mechanism)
            .field("shards", &self.shards.len())
            .field("domain_size", &self.schema.domain_size())
            .finish()
    }
}

impl CollectionSession {
    /// Builds a session. `num_shards` must be at least 1; the expensive
    /// per-mechanism sampler state is built once here and shared across
    /// all shards.
    pub fn new(
        id: u64,
        schema: Schema,
        mechanism: Mechanism,
        num_shards: usize,
        seed: u64,
        max_dense_domain: usize,
    ) -> Result<Self> {
        if num_shards == 0 {
            return Err(ServiceError::InvalidRequest(
                "a session needs at least one shard".into(),
            ));
        }
        let gd = GammaDiagonal::new(&schema, mechanism.gamma())?;
        let closed_form = GammaDiagonalReconstructor::new(&gd);
        let perturber: Arc<dyn Perturber> = match mechanism {
            Mechanism::Deterministic { .. } => Arc::new(gd),
            Mechanism::Randomized {
                gamma,
                alpha_fraction,
            } => Arc::new(RandomizedGammaDiagonal::with_alpha_fraction(
                &schema,
                gamma,
                alpha_fraction,
            )?),
        };
        let shards = (0..num_shards)
            .map(|i| Mutex::new(Shard::new(schema.clone(), seed, i)))
            .collect();
        Ok(CollectionSession {
            id,
            schema,
            mechanism,
            seed,
            perturber,
            closed_form,
            shards,
            next_shard: AtomicUsize::new(0),
            lu_cache: OnceLock::new(),
            max_dense_domain,
        })
    }

    /// The session id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The schema records must conform to.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The perturbation mechanism.
    pub fn mechanism(&self) -> Mechanism {
        self.mechanism
    }

    /// The session's base RNG seed (shard `i` derives its stream via
    /// [`crate::shard::shard_seed`]).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of ingest shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Ingests a batch on an automatically chosen shard (round-robin,
    /// so concurrent submitters spread across shard locks). Returns the
    /// shard index used.
    ///
    /// `pre_perturbed` declares whether the records already went
    /// through the mechanism client-side (the paper's deployment
    /// model) or should be perturbed here with the shard's RNG.
    pub fn submit_batch(&self, records: &[Vec<u32>], pre_perturbed: bool) -> Result<usize> {
        let idx = self.next_shard.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        self.submit_batch_to_shard(idx, records, pre_perturbed)?;
        Ok(idx)
    }

    /// Ingests a batch on a specific shard. Lets a client pin its
    /// stream to one shard, which (with the session seed) makes
    /// server-side perturbation bit-reproducible offline.
    ///
    /// Ingestion is record-at-a-time: if a record mid-batch fails
    /// validation, the error is returned and the records *before* it
    /// stay counted (exactly as if the client had sent them in a
    /// smaller batch). Clients that need all-or-nothing batches should
    /// validate against the schema before submitting.
    pub fn submit_batch_to_shard(
        &self,
        shard_index: usize,
        records: &[Vec<u32>],
        pre_perturbed: bool,
    ) -> Result<()> {
        let shard = self.shards.get(shard_index).ok_or_else(|| {
            ServiceError::InvalidRequest(format!(
                "shard {shard_index} out of range (session has {})",
                self.shards.len()
            ))
        })?;
        let mut shard = shard.lock().expect("shard mutex poisoned");
        for record in records {
            if pre_perturbed {
                shard.ingest_perturbed(record)?;
            } else {
                shard.ingest_raw(record, self.perturber.as_ref())?;
            }
        }
        Ok(())
    }

    /// Merges all shard counts into one snapshot accumulator.
    pub fn snapshot(&self) -> CountAccumulator {
        let mut acc = CountAccumulator::new(self.schema.clone());
        for shard in &self.shards {
            let shard = shard.lock().expect("shard mutex poisoned");
            shard
                .merge_into(&mut acc)
                .expect("shards share the session schema");
        }
        acc
    }

    /// Ingest statistics.
    pub fn stats(&self) -> SessionStats {
        let per_shard: Vec<u64> = self
            .shards
            .iter()
            .map(|s| s.lock().expect("shard mutex poisoned").ingested())
            .collect();
        SessionStats {
            total: per_shard.iter().sum(),
            per_shard,
        }
    }

    /// Refuses dense-LU work on domains past the configured limit.
    fn check_dense_domain(&self) -> Result<()> {
        if self.schema.domain_size() > self.max_dense_domain {
            return Err(ServiceError::InvalidRequest(format!(
                "domain size {} exceeds the dense-LU limit {}; use method `closed`",
                self.schema.domain_size(),
                self.max_dense_domain
            )));
        }
        Ok(())
    }

    /// The cached dense LU handle, building it on first use.
    fn cached_lu(&self) -> Result<(Arc<LuDecomposition>, bool)> {
        let hit = self.lu_cache.get().is_some();
        if !hit {
            self.check_dense_domain()?;
        }
        let lu = self.lu_cache.get_or_init(|| {
            let dense = GammaDiagonal::new(&self.schema, self.mechanism.gamma())
                .expect("validated at session construction")
                .as_uniform_diagonal()
                .to_dense();
            Arc::new(LuDecomposition::new(&dense).expect("gamma-diagonal matrices are invertible"))
        });
        Ok((Arc::clone(lu), hit))
    }

    /// Answers a reconstruction query from a snapshot of the current
    /// counts. `clamp` applies [`clamp_counts`] (non-negativity +
    /// rescale to `N`) to the estimates.
    pub fn reconstruct(&self, method: ReconstructionMethod, clamp: bool) -> Result<Reconstruction> {
        let snapshot = self.snapshot();
        let n = snapshot.n();
        let counts = snapshot.into_counts();
        let (mut estimates, lu_cache_hit) = match method {
            ReconstructionMethod::ClosedForm => (self.closed_form.reconstruct(&counts), false),
            ReconstructionMethod::CachedLu => {
                let (lu, hit) = self.cached_lu()?;
                (lu.solve_system(&counts)?, hit)
            }
            ReconstructionMethod::FreshLu => {
                self.check_dense_domain()?;
                let dense = GammaDiagonal::new(&self.schema, self.mechanism.gamma())?
                    .as_uniform_diagonal()
                    .to_dense();
                let lu = LuDecomposition::new(&dense)?;
                (lu.solve_system(&counts)?, false)
            }
        };
        if clamp {
            clamp_counts(&mut estimates, n as f64);
        }
        Ok(Reconstruction {
            n,
            estimates,
            method,
            lu_cache_hit,
        })
    }
}

/// The server's table of live sessions.
#[derive(Debug, Default)]
pub struct SessionRegistry {
    next_id: AtomicU64,
    sessions: RwLock<HashMap<u64, Arc<CollectionSession>>>,
}

impl SessionRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        SessionRegistry {
            next_id: AtomicU64::new(1),
            sessions: RwLock::new(HashMap::new()),
        }
    }

    /// Creates and registers a session, returning it.
    pub fn create(
        &self,
        schema: Schema,
        mechanism: Mechanism,
        num_shards: usize,
        seed: u64,
        max_dense_domain: usize,
    ) -> Result<Arc<CollectionSession>> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let session = Arc::new(CollectionSession::new(
            id,
            schema,
            mechanism,
            num_shards,
            seed,
            max_dense_domain,
        )?);
        self.sessions
            .write()
            .expect("registry lock poisoned")
            .insert(id, Arc::clone(&session));
        Ok(session)
    }

    /// Looks up a session by id.
    pub fn get(&self, id: u64) -> Result<Arc<CollectionSession>> {
        self.sessions
            .read()
            .expect("registry lock poisoned")
            .get(&id)
            .cloned()
            .ok_or(ServiceError::UnknownSession(id))
    }

    /// Removes a session, returning whether it existed.
    pub fn remove(&self, id: u64) -> bool {
        self.sessions
            .write()
            .expect("registry lock poisoned")
            .remove(&id)
            .is_some()
    }

    /// Ids of all live sessions, ascending.
    pub fn ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self
            .sessions
            .read()
            .expect("registry lock poisoned")
            .keys()
            .copied()
            .collect();
        ids.sort_unstable();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![("a", 3), ("b", 2)]).unwrap()
    }

    fn session(shards: usize) -> CollectionSession {
        CollectionSession::new(
            1,
            schema(),
            Mechanism::Deterministic { gamma: 19.0 },
            shards,
            7,
            4096,
        )
        .unwrap()
    }

    #[test]
    fn rejects_zero_shards_and_bad_gamma() {
        assert!(CollectionSession::new(
            1,
            schema(),
            Mechanism::Deterministic { gamma: 19.0 },
            0,
            7,
            4096
        )
        .is_err());
        assert!(CollectionSession::new(
            1,
            schema(),
            Mechanism::Deterministic { gamma: 0.5 },
            1,
            7,
            4096
        )
        .is_err());
    }

    #[test]
    fn round_robin_spreads_batches() {
        let s = session(3);
        for _ in 0..6 {
            s.submit_batch(&[vec![0, 0]], true).unwrap();
        }
        let stats = s.stats();
        assert_eq!(stats.total, 6);
        assert_eq!(stats.per_shard, vec![2, 2, 2]);
    }

    #[test]
    fn pre_perturbed_counts_pass_through_exactly() {
        let s = session(2);
        s.submit_batch_to_shard(0, &[vec![1, 1], vec![1, 1]], true)
            .unwrap();
        s.submit_batch_to_shard(1, &[vec![2, 0]], true).unwrap();
        let snap = s.snapshot();
        assert_eq!(snap.n(), 3);
        assert_eq!(snap.counts()[schema().encode(&[1, 1]).unwrap()], 2.0);
    }

    #[test]
    fn closed_and_cached_lu_reconstructions_agree() {
        let s = session(4);
        let records: Vec<Vec<u32>> = (0..3000)
            .map(|i| vec![i % 3, (i % 7 == 0) as u32])
            .collect();
        s.submit_batch(&records, false).unwrap();
        let closed = s
            .reconstruct(ReconstructionMethod::ClosedForm, false)
            .unwrap();
        let lu = s
            .reconstruct(ReconstructionMethod::CachedLu, false)
            .unwrap();
        assert_eq!(closed.n, 3000);
        for (a, b) in closed.estimates.iter().zip(&lu.estimates) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }

    #[test]
    fn lu_cache_is_hit_on_repeat_queries() {
        let s = session(1);
        s.submit_batch(&[vec![0, 0], vec![1, 1]], true).unwrap();
        let first = s
            .reconstruct(ReconstructionMethod::CachedLu, false)
            .unwrap();
        assert!(!first.lu_cache_hit);
        let second = s
            .reconstruct(ReconstructionMethod::CachedLu, false)
            .unwrap();
        assert!(second.lu_cache_hit);
    }

    #[test]
    fn dense_lu_refused_beyond_domain_limit() {
        let s = CollectionSession::new(
            1,
            schema(),
            Mechanism::Deterministic { gamma: 19.0 },
            1,
            7,
            4, // domain size is 6 > 4
        )
        .unwrap();
        assert!(s
            .reconstruct(ReconstructionMethod::CachedLu, false)
            .is_err());
        assert!(s.reconstruct(ReconstructionMethod::FreshLu, false).is_err());
        assert!(s
            .reconstruct(ReconstructionMethod::ClosedForm, false)
            .is_ok());
    }

    #[test]
    fn clamped_reconstruction_is_nonnegative_and_totals_n() {
        let s = session(2);
        let records: Vec<Vec<u32>> = (0..2000).map(|_| vec![0, 0]).collect();
        s.submit_batch(&records, false).unwrap();
        let rec = s
            .reconstruct(ReconstructionMethod::ClosedForm, true)
            .unwrap();
        assert!(rec.estimates.iter().all(|&e| e >= 0.0));
        assert!((rec.estimates.iter().sum::<f64>() - 2000.0).abs() < 1e-6);
    }

    #[test]
    fn randomized_mechanism_sessions_reconstruct_with_expected_matrix() {
        let s = CollectionSession::new(
            1,
            schema(),
            // alpha must stay below (n−1)x on this tiny 6-cell domain,
            // which caps the usable fraction at 5/19.
            Mechanism::Randomized {
                gamma: 19.0,
                alpha_fraction: 0.2,
            },
            2,
            9,
            4096,
        )
        .unwrap();
        let records: Vec<Vec<u32>> = (0..4000).map(|_| vec![2, 1]).collect();
        s.submit_batch(&records, false).unwrap();
        let rec = s
            .reconstruct(ReconstructionMethod::ClosedForm, true)
            .unwrap();
        let hot = schema().encode(&[2, 1]).unwrap();
        assert!(
            rec.estimates[hot] > 3000.0,
            "hot cell estimate {}",
            rec.estimates[hot]
        );
    }

    #[test]
    fn registry_creates_gets_and_removes() {
        let reg = SessionRegistry::new();
        let a = reg
            .create(
                schema(),
                Mechanism::Deterministic { gamma: 19.0 },
                2,
                7,
                4096,
            )
            .unwrap();
        let b = reg
            .create(
                schema(),
                Mechanism::Deterministic { gamma: 9.0 },
                1,
                8,
                4096,
            )
            .unwrap();
        assert_ne!(a.id(), b.id());
        assert_eq!(reg.ids(), vec![a.id(), b.id()]);
        assert_eq!(reg.get(a.id()).unwrap().num_shards(), 2);
        assert!(reg.remove(a.id()));
        assert!(!reg.remove(a.id()));
        assert!(matches!(
            reg.get(a.id()),
            Err(ServiceError::UnknownSession(_))
        ));
    }

    #[test]
    fn wire_method_names_roundtrip() {
        for m in [
            ReconstructionMethod::ClosedForm,
            ReconstructionMethod::CachedLu,
            ReconstructionMethod::FreshLu,
        ] {
            assert_eq!(ReconstructionMethod::from_wire(m.wire_name()).unwrap(), m);
        }
        assert!(ReconstructionMethod::from_wire("qr").is_err());
    }
}
