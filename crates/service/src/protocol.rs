//! The line-delimited JSON wire protocol.
//!
//! One request per line, one response per line, over a plain TCP
//! stream. Requests are objects with an `"op"` discriminator:
//!
//! ```text
//! {"op":"ping"}
//! {"op":"create_session","schema":[["age",8],["sex",2]],
//!  "mechanism":"det","gamma":19.0,"shards":4,"seed":7}
//! {"op":"create_session","schema":[["age",8]],"mechanism":"det",
//!  "rho1":0.05,"rho2":0.5}
//! {"op":"submit","session":1,"records":[[3,0],[7,1]],
//!  "pre_perturbed":false,"shard":0}
//! {"op":"reconstruct","session":1,"method":"closed","clamp":true}
//! {"op":"stats","session":1}
//! {"op":"metrics","session":1}
//! {"op":"list_sessions"}
//! {"op":"persist"}
//! {"op":"persist","session":1}
//! {"op":"close_session","session":1}
//! {"op":"shutdown"}
//! ```
//!
//! Responses always carry `"ok"`: `{"ok":true, ...}` on success,
//! `{"ok":false,"error":"..."}` on failure. The error never tears down
//! the connection — clients may pipeline further requests. A failed
//! `submit` additionally carries `"accepted"`: how many records at the
//! front of the batch were counted before the failure, so a retrying
//! client resubmits only the remainder (see
//! [`crate::client::Client::submit_batch`] for the full retry
//! contract).

use crate::error::{Result, ServiceError};
use crate::json::{self, object, Value};
use crate::metrics::{LatencySummary, MetricsReport};
use crate::session::{
    Mechanism, Reconstruction, ReconstructionMethod, SessionStats, SessionSummary,
};

/// A batch of records in one flat `u32` buffer.
///
/// The wire layer parses `"records":[[..],[..]]` straight into one
/// values vector plus an offsets vector (`offsets[i]..offsets[i+1]`
/// delimits record `i`), instead of allocating a `Vec<u32>` per record.
/// Records may be ragged — length validation happens against the
/// session schema at ingest, preserving the partial-batch contract.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordBatch {
    values: Vec<u32>,
    /// `len + 1` entries; `offsets[0] == 0`.
    offsets: Vec<usize>,
}

/// Same as [`RecordBatch::new`] — a derived `Default` would produce an
/// empty `offsets`, violating the `len + 1` invariant.
impl Default for RecordBatch {
    fn default() -> Self {
        Self::new()
    }
}

impl RecordBatch {
    /// An empty batch.
    pub fn new() -> Self {
        RecordBatch {
            values: Vec::new(),
            offsets: vec![0],
        }
    }

    /// Builds a batch from per-record rows (test/client convenience).
    pub fn from_rows(rows: &[Vec<u32>]) -> Self {
        let mut batch = RecordBatch::new();
        for row in rows {
            batch.push(row);
        }
        batch
    }

    /// Appends one record.
    pub fn push(&mut self, record: &[u32]) {
        self.values.extend_from_slice(record);
        self.offsets.push(self.values.len());
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the batch holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Record `i` as a slice.
    pub fn get(&self, i: usize) -> &[u32] {
        &self.values[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Iterates the records as slices.
    pub fn iter(&self) -> impl Iterator<Item = &[u32]> {
        self.offsets.windows(2).map(|w| &self.values[w[0]..w[1]])
    }
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Create a collection session.
    CreateSession {
        /// `(name, cardinality)` per attribute.
        schema: Vec<(String, u32)>,
        /// Perturbation mechanism for server-side perturbation and
        /// reconstruction.
        mechanism: Mechanism,
        /// Ingest shard count (server default when `None`).
        shards: Option<usize>,
        /// Base RNG seed (server default when `None`).
        seed: Option<u64>,
    },
    /// Ingest a batch of records.
    Submit {
        /// Target session id.
        session: u64,
        /// The records, as one flat buffer.
        records: RecordBatch,
        /// Whether the records were already perturbed client-side.
        pre_perturbed: bool,
        /// Pin the batch to a specific shard (round-robin when `None`).
        shard: Option<usize>,
    },
    /// Reconstruct the original distribution estimate.
    Reconstruct {
        /// Target session id.
        session: u64,
        /// Solver choice.
        method: ReconstructionMethod,
        /// Apply non-negativity clamping + rescale to `N`.
        clamp: bool,
    },
    /// Ingest statistics for a session.
    Stats {
        /// Target session id.
        session: u64,
    },
    /// Operational metrics for a session (ingest rate, reconstruction
    /// count, query-latency histogram).
    Metrics {
        /// Target session id.
        session: u64,
    },
    /// Ids and summaries of all live sessions.
    ListSessions,
    /// Snapshot one session (or all, when `session` is omitted) to the
    /// server's persistence directory.
    Persist {
        /// Target session id; `None` persists every live session.
        session: Option<u64>,
    },
    /// Drop a session and its counts.
    CloseSession {
        /// Target session id.
        session: u64,
    },
    /// Stop the server (used by tests and the load generator).
    Shutdown,
}

fn require<'v>(v: &'v Value, key: &str) -> Result<&'v Value> {
    v.get(key)
        .ok_or_else(|| ServiceError::InvalidRequest(format!("missing field `{key}`")))
}

fn field_u64(v: &Value, key: &str) -> Result<u64> {
    require(v, key)?.as_u64().ok_or_else(|| {
        ServiceError::InvalidRequest(format!("field `{key}` must be a non-negative integer"))
    })
}

fn field_f64(v: &Value, key: &str) -> Result<f64> {
    require(v, key)?
        .as_f64()
        .ok_or_else(|| ServiceError::InvalidRequest(format!("field `{key}` must be a number")))
}

fn optional_bool(v: &Value, key: &str, default: bool) -> Result<bool> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(default),
        Some(val) => val.as_bool().ok_or_else(|| {
            ServiceError::InvalidRequest(format!("field `{key}` must be a boolean"))
        }),
    }
}

fn parse_schema(v: &Value) -> Result<Vec<(String, u32)>> {
    let arr = require(v, "schema")?
        .as_array()
        .ok_or_else(|| ServiceError::InvalidRequest("`schema` must be an array".into()))?;
    arr.iter()
        .map(|attr| {
            let pair = attr.as_array().filter(|p| p.len() == 2).ok_or_else(|| {
                ServiceError::InvalidRequest(
                    "each schema attribute must be a [name, cardinality] pair".into(),
                )
            })?;
            let name = pair[0].as_str().ok_or_else(|| {
                ServiceError::InvalidRequest("attribute name must be a string".into())
            })?;
            let card = pair[1]
                .as_u64()
                .filter(|&c| c > 0 && c <= u32::MAX as u64)
                .ok_or_else(|| {
                    ServiceError::InvalidRequest(
                        "attribute cardinality must be a positive integer".into(),
                    )
                })?;
            Ok((name.to_owned(), card as u32))
        })
        .collect()
}

fn parse_mechanism(v: &Value) -> Result<Mechanism> {
    let kind = v.get("mechanism").and_then(Value::as_str).unwrap_or("det");
    let gamma = match v.get("gamma") {
        Some(g) => g
            .as_f64()
            .ok_or_else(|| ServiceError::InvalidRequest("`gamma` must be a number".into()))?,
        None => {
            // Fall back to a (rho1, rho2) amplification requirement.
            let rho1 = field_f64(v, "rho1")?;
            let rho2 = field_f64(v, "rho2")?;
            frapp_core::PrivacyRequirement::new(rho1, rho2)
                .map_err(ServiceError::from)?
                .gamma()
        }
    };
    match kind {
        "det" => Ok(Mechanism::Deterministic { gamma }),
        "ran" => {
            let alpha_fraction = match v.get("alpha_fraction") {
                None | Some(Value::Null) => 0.5,
                Some(a) => a.as_f64().ok_or_else(|| {
                    ServiceError::InvalidRequest("`alpha_fraction` must be a number".into())
                })?,
            };
            Ok(Mechanism::Randomized {
                gamma,
                alpha_fraction,
            })
        }
        other => Err(ServiceError::InvalidRequest(format!(
            "unknown mechanism `{other}` (expected det|ran)"
        ))),
    }
}

fn parse_records(v: &Value) -> Result<RecordBatch> {
    let arr = require(v, "records")?
        .as_array()
        .ok_or_else(|| ServiceError::InvalidRequest("`records` must be an array".into()))?;
    let mut batch = RecordBatch::new();
    let mut row = Vec::new();
    for rec in arr {
        let cells = rec
            .as_array()
            .ok_or_else(|| ServiceError::InvalidRequest("each record must be an array".into()))?;
        row.clear();
        for cell in cells {
            let c = cell
                .as_u64()
                .filter(|&c| c <= u32::MAX as u64)
                .ok_or_else(|| {
                    ServiceError::InvalidRequest(
                        "record values must be non-negative integers".into(),
                    )
                })?;
            row.push(c as u32);
        }
        batch.push(&row);
    }
    Ok(batch)
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request> {
    let v = json::parse(line)?;
    let op = v
        .get("op")
        .and_then(Value::as_str)
        .ok_or_else(|| ServiceError::InvalidRequest("missing string field `op`".into()))?;
    match op {
        "ping" => Ok(Request::Ping),
        "create_session" => Ok(Request::CreateSession {
            schema: parse_schema(&v)?,
            mechanism: parse_mechanism(&v)?,
            shards: match v.get("shards") {
                None | Some(Value::Null) => None,
                Some(s) => Some(s.as_usize().filter(|&s| s > 0).ok_or_else(|| {
                    ServiceError::InvalidRequest("`shards` must be a positive integer".into())
                })?),
            },
            seed: match v.get("seed") {
                None | Some(Value::Null) => None,
                Some(s) => Some(s.as_u64().ok_or_else(|| {
                    ServiceError::InvalidRequest("`seed` must be a non-negative integer".into())
                })?),
            },
        }),
        "submit" => Ok(Request::Submit {
            session: field_u64(&v, "session")?,
            records: parse_records(&v)?,
            pre_perturbed: optional_bool(&v, "pre_perturbed", false)?,
            shard: match v.get("shard") {
                None | Some(Value::Null) => None,
                Some(s) => Some(s.as_usize().ok_or_else(|| {
                    ServiceError::InvalidRequest("`shard` must be a non-negative integer".into())
                })?),
            },
        }),
        "reconstruct" => Ok(Request::Reconstruct {
            session: field_u64(&v, "session")?,
            method: match v.get("method") {
                None | Some(Value::Null) => ReconstructionMethod::ClosedForm,
                Some(m) => ReconstructionMethod::from_wire(m.as_str().ok_or_else(|| {
                    ServiceError::InvalidRequest("`method` must be a string".into())
                })?)?,
            },
            clamp: optional_bool(&v, "clamp", true)?,
        }),
        "stats" => Ok(Request::Stats {
            session: field_u64(&v, "session")?,
        }),
        "metrics" => Ok(Request::Metrics {
            session: field_u64(&v, "session")?,
        }),
        "list_sessions" => Ok(Request::ListSessions),
        "persist" => Ok(Request::Persist {
            session: match v.get("session") {
                None | Some(Value::Null) => None,
                Some(s) => Some(s.as_u64().ok_or_else(|| {
                    ServiceError::InvalidRequest("`session` must be a non-negative integer".into())
                })?),
            },
        }),
        "close_session" => Ok(Request::CloseSession {
            session: field_u64(&v, "session")?,
        }),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(ServiceError::InvalidRequest(format!(
            "unknown op `{other}`"
        ))),
    }
}

/// Writes `{"ok":true}` plus extra fields into a reusable buffer
/// (appended, not cleared).
pub fn write_ok_response(out: &mut String, extra: Vec<(&str, Value)>) {
    let mut pairs = vec![("ok", Value::Bool(true))];
    pairs.extend(extra);
    object(pairs).write_json(out);
}

/// `{"ok":true}` plus extra fields.
pub fn ok_response(extra: Vec<(&str, Value)>) -> String {
    let mut out = String::new();
    write_ok_response(&mut out, extra);
    out
}

/// `{"ok":false,"error":...}` for any service error. A
/// [`ServiceError::PartialBatch`] additionally carries `"accepted"` —
/// the number of records at the front of the failed batch that *were*
/// counted — so clients can retry just the remainder instead of
/// double-counting the prefix.
pub fn error_response(err: &ServiceError) -> String {
    let mut out = String::new();
    write_error_response(&mut out, err);
    out
}

/// [`error_response`] into a reusable buffer.
pub fn write_error_response(out: &mut String, err: &ServiceError) {
    let mut pairs = vec![("ok", false.into()), ("error", err.to_string().into())];
    if let ServiceError::PartialBatch { accepted, .. } = err {
        pairs.push(("accepted", (*accepted).into()));
    }
    object(pairs).write_json(out);
}

/// Writes the response payload for a successful `reconstruct`.
pub fn write_reconstruction_response(out: &mut String, rec: &Reconstruction) {
    write_ok_response(
        out,
        vec![
            ("n", rec.n.into()),
            ("method", rec.method.wire_name().into()),
            ("lu_cache_hit", rec.lu_cache_hit.into()),
            (
                "estimates",
                Value::Array(rec.estimates.iter().map(|&e| Value::Number(e)).collect()),
            ),
        ],
    )
}

/// Response payload for a successful `reconstruct`.
pub fn reconstruction_response(rec: &Reconstruction) -> String {
    let mut out = String::new();
    write_reconstruction_response(&mut out, rec);
    out
}

/// Writes the response payload for a successful `stats`.
pub fn write_stats_response(out: &mut String, stats: &SessionStats) {
    write_ok_response(
        out,
        vec![
            ("total", stats.total.into()),
            (
                "per_shard",
                Value::Array(stats.per_shard.iter().map(|&c| c.into()).collect()),
            ),
        ],
    )
}

/// Response payload for a successful `stats`.
pub fn stats_response(stats: &SessionStats) -> String {
    let mut out = String::new();
    write_stats_response(&mut out, stats);
    out
}

/// Response payload for a successful `metrics`. `total` is the
/// all-time record count (across restarts); the report's own counters
/// cover this process's lifetime.
pub fn metrics_response(session: u64, total: u64, report: &MetricsReport) -> String {
    let mut out = String::new();
    write_metrics_response(&mut out, session, total, report);
    out
}

/// A power-of-two histogram summary as a wire object. The field names
/// say `us` for compatibility; for `ingest_batch_size` the unit is
/// records per batch.
fn histogram_value(summary: &LatencySummary) -> Value {
    object(vec![
        ("count", summary.count.into()),
        ("mean_us", summary.mean_us.into()),
        ("max_us", summary.max_us.into()),
        (
            "buckets",
            Value::Array(
                summary
                    .buckets
                    .iter()
                    .map(|&(le, c)| Value::Array(vec![le.into(), c.into()]))
                    .collect(),
            ),
        ),
    ])
}

/// [`metrics_response`] into a reusable buffer.
pub fn write_metrics_response(out: &mut String, session: u64, total: u64, report: &MetricsReport) {
    write_ok_response(
        out,
        vec![
            ("session", session.into()),
            ("total", total.into()),
            ("records_ingested", report.records_ingested.into()),
            ("batches", report.batches.into()),
            ("reconstructions", report.reconstructions.into()),
            ("uptime_secs", report.uptime_secs.into()),
            ("ingest_rate", report.ingest_rate.into()),
            ("query_latency", histogram_value(&report.query_latency)),
            (
                "ingest_batch_size",
                histogram_value(&report.ingest_batch_size),
            ),
            ("submit_latency", histogram_value(&report.submit_latency)),
        ],
    )
}

/// Response payload for a successful `list_sessions`: the bare id array
/// (stable since PR 1) plus a `detail` array of per-session summaries.
pub fn list_response(summaries: &[SessionSummary]) -> String {
    let mut out = String::new();
    write_list_response(&mut out, summaries);
    out
}

/// [`list_response`] into a reusable buffer.
pub fn write_list_response(out: &mut String, summaries: &[SessionSummary]) {
    write_ok_response(
        out,
        vec![
            (
                "sessions",
                Value::Array(summaries.iter().map(|s| s.id.into()).collect()),
            ),
            (
                "detail",
                Value::Array(
                    summaries
                        .iter()
                        .map(|s| {
                            object(vec![
                                ("session", s.id.into()),
                                ("domain_size", s.domain_size.into()),
                                ("shards", s.shards.into()),
                                ("gamma", s.gamma.into()),
                                ("total", s.total.into()),
                                ("reconstructions", s.reconstructions.into()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_ping_and_shutdown() {
        assert_eq!(parse_request(r#"{"op":"ping"}"#).unwrap(), Request::Ping);
        assert_eq!(
            parse_request(r#"{"op":"shutdown"}"#).unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn parses_create_session_with_gamma() {
        let req = parse_request(
            r#"{"op":"create_session","schema":[["age",8],["sex",2]],
               "mechanism":"det","gamma":19.0,"shards":4,"seed":7}"#,
        )
        .unwrap();
        assert_eq!(
            req,
            Request::CreateSession {
                schema: vec![("age".into(), 8), ("sex".into(), 2)],
                mechanism: Mechanism::Deterministic { gamma: 19.0 },
                shards: Some(4),
                seed: Some(7),
            }
        );
    }

    #[test]
    fn parses_create_session_with_privacy_requirement() {
        let req =
            parse_request(r#"{"op":"create_session","schema":[["a",3]],"rho1":0.05,"rho2":0.5}"#)
                .unwrap();
        match req {
            Request::CreateSession {
                mechanism: Mechanism::Deterministic { gamma },
                ..
            } => assert!((gamma - 19.0).abs() < 1e-9, "gamma {gamma}"),
            other => panic!("unexpected parse: {other:?}"),
        }
    }

    #[test]
    fn parses_randomized_mechanism_with_default_alpha() {
        let req = parse_request(
            r#"{"op":"create_session","schema":[["a",3]],"mechanism":"ran","gamma":19.0}"#,
        )
        .unwrap();
        match req {
            Request::CreateSession {
                mechanism:
                    Mechanism::Randomized {
                        gamma,
                        alpha_fraction,
                    },
                ..
            } => {
                assert_eq!(gamma, 19.0);
                assert_eq!(alpha_fraction, 0.5);
            }
            other => panic!("unexpected parse: {other:?}"),
        }
    }

    #[test]
    fn parses_submit_with_defaults() {
        let req = parse_request(r#"{"op":"submit","session":3,"records":[[0,1],[2,0]]}"#).unwrap();
        assert_eq!(
            req,
            Request::Submit {
                session: 3,
                records: RecordBatch::from_rows(&[vec![0, 1], vec![2, 0]]),
                pre_perturbed: false,
                shard: None,
            }
        );
    }

    #[test]
    fn record_batch_flat_buffer_round_trips_rows() {
        let rows = vec![vec![0u32, 1], vec![2, 0, 5], vec![], vec![7]];
        let batch = RecordBatch::from_rows(&rows);
        assert_eq!(batch.len(), 4);
        assert!(!batch.is_empty());
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(batch.get(i), row.as_slice());
        }
        let collected: Vec<Vec<u32>> = batch.iter().map(<[u32]>::to_vec).collect();
        assert_eq!(collected, rows);
        assert!(RecordBatch::new().is_empty());
    }

    #[test]
    fn parses_reconstruct_defaults_to_clamped_closed_form() {
        let req = parse_request(r#"{"op":"reconstruct","session":1}"#).unwrap();
        assert_eq!(
            req,
            Request::Reconstruct {
                session: 1,
                method: ReconstructionMethod::ClosedForm,
                clamp: true,
            }
        );
    }

    #[test]
    fn parses_metrics_and_persist() {
        assert_eq!(
            parse_request(r#"{"op":"metrics","session":4}"#).unwrap(),
            Request::Metrics { session: 4 }
        );
        assert_eq!(
            parse_request(r#"{"op":"persist"}"#).unwrap(),
            Request::Persist { session: None }
        );
        assert_eq!(
            parse_request(r#"{"op":"persist","session":2}"#).unwrap(),
            Request::Persist { session: Some(2) }
        );
        assert!(parse_request(r#"{"op":"metrics"}"#).is_err());
        assert!(parse_request(r#"{"op":"persist","session":-1}"#).is_err());
    }

    #[test]
    fn partial_batch_errors_carry_accepted() {
        let err = ServiceError::PartialBatch {
            accepted: 3,
            source: Box::new(ServiceError::InvalidRequest("bad".into())),
        };
        let v = crate::json::parse(&error_response(&err)).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
        assert_eq!(v.get("accepted").and_then(Value::as_u64), Some(3));
        // Other errors do not claim an accepted count.
        let v = crate::json::parse(&error_response(&ServiceError::UnknownSession(1))).unwrap();
        assert!(v.get("accepted").is_none());
    }

    #[test]
    fn metrics_and_list_responses_are_parseable() {
        let report = crate::metrics::SessionMetrics::new().report();
        let v = crate::json::parse(&metrics_response(7, 42, &report)).unwrap();
        assert_eq!(v.get("session").and_then(Value::as_u64), Some(7));
        assert_eq!(v.get("total").and_then(Value::as_u64), Some(42));
        assert!(v.get("query_latency").is_some());

        let summaries = vec![SessionSummary {
            id: 7,
            domain_size: 6,
            shards: 2,
            gamma: 19.0,
            total: 42,
            reconstructions: 1,
        }];
        let v = crate::json::parse(&list_response(&summaries)).unwrap();
        assert_eq!(
            v.get("sessions").and_then(Value::as_array).unwrap()[0].as_u64(),
            Some(7)
        );
        let detail = v.get("detail").and_then(Value::as_array).unwrap();
        assert_eq!(
            detail[0].get("domain_size").and_then(Value::as_u64),
            Some(6)
        );
    }

    #[test]
    fn rejects_malformed_requests() {
        for bad in [
            "not json",
            r#"{"no_op":1}"#,
            r#"{"op":"warp"}"#,
            r#"{"op":"submit","records":[[0]]}"#,
            r#"{"op":"submit","session":1,"records":[[0,-1]]}"#,
            r#"{"op":"create_session","schema":[["a",0]]}"#,
            r#"{"op":"create_session","schema":[["a",3]],"mechanism":"qr","gamma":2}"#,
            r#"{"op":"create_session","schema":[["a",3]],"gamma":19,"shards":0}"#,
        ] {
            assert!(parse_request(bad).is_err(), "should reject {bad}");
        }
    }

    #[test]
    fn responses_are_parseable_json() {
        let ok = ok_response(vec![("session", 5u64.into())]);
        let v = crate::json::parse(&ok).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("session").and_then(Value::as_u64), Some(5));

        let err = error_response(&ServiceError::UnknownSession(9));
        let v = crate::json::parse(&err).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
        assert!(v
            .get("error")
            .and_then(Value::as_str)
            .unwrap()
            .contains("unknown session 9"));
    }
}
