//! The line-delimited JSON wire protocol.
//!
//! One request per line, one response per line, over a plain TCP
//! stream. Requests are objects with an `"op"` discriminator:
//!
//! ```text
//! {"op":"ping"}
//! {"op":"create_session","schema":[["age",8],["sex",2]],
//!  "mechanism":"det","gamma":19.0,"shards":4,"seed":7}
//! {"op":"create_session","schema":[["age",8]],"mechanism":"det",
//!  "rho1":0.05,"rho2":0.5}
//! {"op":"submit","session":1,"records":[[3,0],[7,1]],
//!  "pre_perturbed":false,"shard":0}
//! {"op":"submit","session":1,"records":[[3,0]],"ack":"deferred"}
//! {"op":"flush"}
//! {"op":"reconstruct","session":1,"method":"closed","clamp":true}
//! {"op":"stats","session":1}
//! {"op":"metrics","session":1}
//! {"op":"metrics"}
//! {"op":"list_sessions"}
//! {"op":"persist"}
//! {"op":"persist","session":1}
//! {"op":"close_session","session":1}
//! {"op":"cluster_status"}
//! {"op":"sync_session","session":1}
//! {"op":"repl_status","session":1,"origin":0}
//! {"op":"hello","framing":"binary"}
//! {"op":"shutdown"}
//! ```
//!
//! ## Federation fields
//!
//! When the server runs federated (`--peers`), peers talk the same
//! protocol with three extra fields. `create_session` accepts an
//! explicit `"session":N` (the coordinator's cluster-unique id, so
//! every node registers the same session under the same id). `submit`
//! accepts `"origin":N,"seq":N` on forwarded batches — the sending
//! node's index and its per-session forwarding sequence number, which
//! the receiving shard uses for exactly-once dedup across retries.
//! `close_session` accepts `"local":true` to close only on the
//! receiving node (the fan-out form; without it a federated server
//! closes cluster-wide). `sync_session` returns a node's local merged
//! partition counts; `repl_status` returns its per-shard replication
//! watermarks for an origin; `cluster_status` describes the topology
//! and per-peer link health. Standalone servers reject none of these
//! fields but treat every session as locally owned.
//!
//! Responses always carry `"ok"`: `{"ok":true, ...}` on success,
//! `{"ok":false,"error":"..."}` on failure. The error never tears down
//! the connection — clients may pipeline further requests. A failed
//! `submit` additionally carries `"accepted"`: how many records at the
//! front of the batch were counted before the failure, so a retrying
//! client resubmits only the remainder (see
//! [`crate::client::Client::submit_batch`] for the full retry
//! contract).
//!
//! ## Pipelined submits
//!
//! A `submit` with `"ack":"deferred"` is *not* answered: the server
//! ingests it and remembers the cumulative accepted count on the
//! connection, so a client can stream many batches without paying one
//! round-trip each. `{"op":"flush"}` answers with the watermark:
//! `{"ok":true,"accepted":N,"batches":B}` where `N` counts every record
//! accepted since the last flush. If any deferred batch failed, later
//! deferred batches are *dropped* (not ingested) until the flush, which
//! then reports `{"ok":false,"error":...,"accepted":N,"batches":B}` —
//! `accepted` is still a contiguous prefix of the submitted stream, so
//! the PR 2 retry contract lifts unchanged to pipelining: resubmit
//! everything after the first `N` records. Any synchronous op arriving
//! with deferred state pending carries `"deferred_accepted"` (and
//! `"deferred_error"`, if one is stashed) on its own response, so the
//! watermark is never silently lost. A `metrics` request *without* a
//! session id reports the server's per-transport counters instead of
//! session counters.
//!
//! The same ops are also exposed over HTTP/1.1 by
//! [`crate::http`] (except `shutdown` and deferred acks, which are
//! connection-oriented).

use crate::error::{Result, ServiceError};
use crate::jobs::{MineAlgo, MineSpec};
use crate::json::{self, object, Value};
use crate::metrics::{LatencySummary, MetricsReport, TransportReport};
use crate::session::{
    Mechanism, Reconstruction, ReconstructionMethod, SessionStats, SessionSummary,
};

/// A batch of records in one flat `u32` buffer.
///
/// The wire layer parses `"records":[[..],[..]]` straight into one
/// values vector plus an offsets vector (`offsets[i]..offsets[i+1]`
/// delimits record `i`), instead of allocating a `Vec<u32>` per record.
/// Records may be ragged — length validation happens against the
/// session schema at ingest, preserving the partial-batch contract.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordBatch {
    values: Vec<u32>,
    /// `len + 1` entries; `offsets[0] == 0`.
    offsets: Vec<usize>,
}

/// Same as [`RecordBatch::new`] — a derived `Default` would produce an
/// empty `offsets`, violating the `len + 1` invariant.
impl Default for RecordBatch {
    fn default() -> Self {
        Self::new()
    }
}

impl RecordBatch {
    /// An empty batch.
    pub fn new() -> Self {
        RecordBatch {
            values: Vec::new(),
            offsets: vec![0],
        }
    }

    /// Builds a batch from per-record rows (test/client convenience).
    pub fn from_rows(rows: &[Vec<u32>]) -> Self {
        let mut batch = RecordBatch::new();
        for row in rows {
            batch.push(row);
        }
        batch
    }

    /// Appends one record.
    pub fn push(&mut self, record: &[u32]) {
        self.values.extend_from_slice(record);
        self.offsets.push(self.values.len());
    }

    /// Appends one cell to the record currently being built (see
    /// [`Self::end_record`]) — the streaming construction the
    /// fast-path submit decoder uses.
    pub fn push_cell(&mut self, value: u32) {
        self.values.push(value);
    }

    /// Closes the record currently being built: everything pushed via
    /// [`Self::push_cell`] since the last `end_record` (or since
    /// construction) becomes one record.
    pub fn end_record(&mut self) {
        self.offsets.push(self.values.len());
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the batch holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Record `i` as a slice. Panics if `i >= len()`, like std `Index`.
    pub fn get(&self, i: usize) -> &[u32] {
        // analyze: allow(panic_path): documented std-Index semantics; wire paths use `iter`
        &self.values[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Iterates the records as slices.
    pub fn iter(&self) -> impl Iterator<Item = &[u32]> {
        self.offsets
            .iter()
            .zip(self.offsets.iter().skip(1))
            .map(|(&start, &end)| &self.values[start..end])
    }
}

/// A wire framing a connection can speak on the raw-TCP port.
///
/// Connections start in [`WireFraming::Json`] (newline-delimited JSON)
/// and may switch with `{"op":"hello","framing":"binary"}`; the hello
/// acknowledgement is sent in the *old* framing, and every subsequent
/// byte in both directions uses the new one. The binary framing is
/// speced normatively in `docs/PROTOCOL.md` and implemented by
/// [`crate::framing`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFraming {
    /// One JSON object per `\n`-terminated line (the default).
    Json,
    /// Length-prefixed binary frames (`opcode`, varint length, payload).
    Binary,
}

impl WireFraming {
    /// The wire-level name used in `hello` negotiation.
    pub fn wire_name(self) -> &'static str {
        match self {
            WireFraming::Json => "line",
            WireFraming::Binary => "binary",
        }
    }

    /// Parses a `hello` framing name.
    pub fn from_wire(name: &str) -> Result<Self> {
        match name {
            "line" | "json" => Ok(WireFraming::Json),
            "binary" => Ok(WireFraming::Binary),
            other => Err(ServiceError::InvalidRequest(format!(
                "unknown framing `{other}` (expected line|binary)"
            ))),
        }
    }
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Create a collection session.
    CreateSession {
        /// `(name, cardinality)` per attribute.
        schema: Vec<(String, u32)>,
        /// Perturbation mechanism for server-side perturbation and
        /// reconstruction.
        mechanism: Mechanism,
        /// Ingest shard count (server default when `None`).
        shards: Option<usize>,
        /// Base RNG seed (server default when `None`).
        seed: Option<u64>,
        /// Explicit session id (federation: the coordinator allocates a
        /// cluster-unique id and replicates the create under it).
        session: Option<u64>,
    },
    /// Ingest a batch of records.
    Submit {
        /// Target session id.
        session: u64,
        /// The records, as one flat buffer.
        records: RecordBatch,
        /// Whether the records were already perturbed client-side.
        pre_perturbed: bool,
        /// Pin the batch to a specific shard (round-robin when `None`).
        shard: Option<usize>,
        /// `"ack":"deferred"` — do not answer this submit; accumulate
        /// its accepted count into the connection's watermark instead
        /// (reported by `flush` or the next synchronous op).
        deferred: bool,
        /// Federation: the forwarding node's peer index. Present (with
        /// `seq`) only on batches replicated between nodes.
        origin: Option<u64>,
        /// Federation: the forwarder's per-session sequence number for
        /// this batch, used for exactly-once dedup on retries.
        seq: Option<u64>,
    },
    /// Report (and reset) the connection's deferred-submit watermark.
    Flush,
    /// Reconstruct the original distribution estimate.
    Reconstruct {
        /// Target session id.
        session: u64,
        /// Solver choice.
        method: ReconstructionMethod,
        /// Apply non-negativity clamping + rescale to `N`.
        clamp: bool,
        /// Federation: answer from the reachable owner partitions when
        /// some owners are down (the response is then tagged
        /// `"degraded":true` with a coverage report) instead of
        /// erroring. Ignored on single-node servers.
        allow_partial: bool,
    },
    /// Ingest statistics for a session.
    Stats {
        /// Target session id.
        session: u64,
        /// Federation: tolerate unreachable owners, as on
        /// [`Request::Reconstruct`].
        allow_partial: bool,
    },
    /// Operational metrics for a session (ingest rate, reconstruction
    /// count, query-latency histogram), or — with no session id — the
    /// server's per-transport counters.
    Metrics {
        /// Target session id; `None` asks for server transport metrics.
        session: Option<u64>,
    },
    /// Ids and summaries of all live sessions.
    ListSessions,
    /// Snapshot one session (or all, when `session` is omitted) to the
    /// server's persistence directory.
    Persist {
        /// Target session id; `None` persists every live session.
        session: Option<u64>,
    },
    /// Drop a session and its counts.
    CloseSession {
        /// Target session id.
        session: u64,
        /// Federation: close only on the receiving node. Set on the
        /// fanned-out form so peers do not re-federate the close.
        local: bool,
    },
    /// Federation: topology and per-peer link health.
    ClusterStatus,
    /// Federation: a node's local merged partition counts for one
    /// session (the reconstruct/stats fan-out primitive).
    SyncSession {
        /// Target session id.
        session: u64,
    },
    /// Federation: per-shard replication watermarks for an origin node
    /// (what a reconnecting forwarder uses to resend exactly the gap).
    ReplStatus {
        /// Target session id.
        session: u64,
        /// The forwarding node's peer index.
        origin: u64,
    },
    /// Negotiate the connection's wire framing (line protocol only; the
    /// acknowledgement is sent in the old framing before switching).
    Hello {
        /// The framing to switch to.
        framing: WireFraming,
    },
    /// Submit a background association-rule-mining job over the
    /// session's reconstructed distribution; answers immediately with a
    /// job id (see [`crate::jobs`]).
    MineRules {
        /// Target session id.
        session: u64,
        /// Algorithm and thresholds.
        spec: MineSpec,
    },
    /// Submit a background Bayes-classifier job; answers immediately
    /// with a job id.
    Classify {
        /// Target session id.
        session: u64,
        /// The class attribute to predict.
        target: AttrRef,
    },
    /// A job's current state and progress counters.
    JobStatus {
        /// Job id returned by `mine_rules` / `classify`.
        job: u64,
    },
    /// A finished job's result payload.
    JobResult {
        /// Job id.
        job: u64,
    },
    /// Cancel a job: immediately while queued, cooperatively (between
    /// mining levels) while running.
    JobCancel {
        /// Job id.
        job: u64,
    },
    /// Status summaries of every tracked job, ascending by id.
    ListJobs,
    /// Stop the server (used by tests and the load generator).
    Shutdown,
}

/// A reference to a schema attribute: by zero-based position, or by
/// name (resolved against the session's schema at execution time).
#[derive(Debug, Clone, PartialEq)]
pub enum AttrRef {
    /// Zero-based attribute index.
    Index(usize),
    /// Attribute name.
    Name(String),
}

fn require<'v>(v: &'v Value, key: &str) -> Result<&'v Value> {
    v.get(key)
        .ok_or_else(|| ServiceError::InvalidRequest(format!("missing field `{key}`")))
}

fn field_u64(v: &Value, key: &str) -> Result<u64> {
    require(v, key)?.as_u64().ok_or_else(|| {
        ServiceError::InvalidRequest(format!("field `{key}` must be a non-negative integer"))
    })
}

fn field_f64(v: &Value, key: &str) -> Result<f64> {
    require(v, key)?
        .as_f64()
        .ok_or_else(|| ServiceError::InvalidRequest(format!("field `{key}` must be a number")))
}

fn optional_bool(v: &Value, key: &str, default: bool) -> Result<bool> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(default),
        Some(val) => val.as_bool().ok_or_else(|| {
            ServiceError::InvalidRequest(format!("field `{key}` must be a boolean"))
        }),
    }
}

fn parse_schema(v: &Value) -> Result<Vec<(String, u32)>> {
    let arr = require(v, "schema")?
        .as_array()
        .ok_or_else(|| ServiceError::InvalidRequest("`schema` must be an array".into()))?;
    arr.iter()
        .map(|attr| {
            let pair = attr.as_array().filter(|p| p.len() == 2).ok_or_else(|| {
                ServiceError::InvalidRequest(
                    "each schema attribute must be a [name, cardinality] pair".into(),
                )
            })?;
            let name = pair.first().and_then(Value::as_str).ok_or_else(|| {
                ServiceError::InvalidRequest("attribute name must be a string".into())
            })?;
            let card = pair
                .get(1)
                .and_then(Value::as_u64)
                .filter(|&c| c > 0 && c <= u32::MAX as u64)
                .ok_or_else(|| {
                    ServiceError::InvalidRequest(
                        "attribute cardinality must be a positive integer".into(),
                    )
                })?;
            Ok((name.to_owned(), card as u32))
        })
        .collect()
}

fn parse_mechanism(v: &Value) -> Result<Mechanism> {
    let kind = v.get("mechanism").and_then(Value::as_str).unwrap_or("det");
    let gamma = match v.get("gamma") {
        Some(g) => g
            .as_f64()
            .ok_or_else(|| ServiceError::InvalidRequest("`gamma` must be a number".into()))?,
        None => {
            // Fall back to a (rho1, rho2) amplification requirement.
            let rho1 = field_f64(v, "rho1")?;
            let rho2 = field_f64(v, "rho2")?;
            frapp_core::PrivacyRequirement::new(rho1, rho2)
                .map_err(ServiceError::from)?
                .gamma()
        }
    };
    match kind {
        "det" => Ok(Mechanism::Deterministic { gamma }),
        "ran" => {
            let alpha_fraction = match v.get("alpha_fraction") {
                None | Some(Value::Null) => 0.5,
                Some(a) => a.as_f64().ok_or_else(|| {
                    ServiceError::InvalidRequest("`alpha_fraction` must be a number".into())
                })?,
            };
            Ok(Mechanism::Randomized {
                gamma,
                alpha_fraction,
            })
        }
        other => Err(ServiceError::InvalidRequest(format!(
            "unknown mechanism `{other}` (expected det|ran)"
        ))),
    }
}

fn parse_records(v: &Value) -> Result<RecordBatch> {
    let arr = require(v, "records")?
        .as_array()
        .ok_or_else(|| ServiceError::InvalidRequest("`records` must be an array".into()))?;
    let mut batch = RecordBatch::new();
    let mut row = Vec::new();
    for rec in arr {
        let cells = rec
            .as_array()
            .ok_or_else(|| ServiceError::InvalidRequest("each record must be an array".into()))?;
        row.clear();
        for cell in cells {
            let c = cell
                .as_u64()
                .filter(|&c| c <= u32::MAX as u64)
                .ok_or_else(|| {
                    ServiceError::InvalidRequest(
                        "record values must be non-negative integers".into(),
                    )
                })?;
            row.push(c as u32);
        }
        batch.push(&row);
    }
    Ok(batch)
}

fn optional_u64(v: &Value, key: &str) -> Result<Option<u64>> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(s) => s.as_u64().map(Some).ok_or_else(|| {
            ServiceError::InvalidRequest(format!("`{key}` must be a non-negative integer"))
        }),
    }
}

/// Builds a `create_session` request from its JSON fields (shared with
/// the HTTP front-end, where the same object is a `POST /sessions`
/// body).
pub(crate) fn parse_create_session(v: &Value) -> Result<Request> {
    Ok(Request::CreateSession {
        schema: parse_schema(v)?,
        mechanism: parse_mechanism(v)?,
        shards: match v.get("shards") {
            None | Some(Value::Null) => None,
            Some(s) => Some(s.as_usize().filter(|&s| s > 0).ok_or_else(|| {
                ServiceError::InvalidRequest("`shards` must be a positive integer".into())
            })?),
        },
        seed: optional_u64(v, "seed")?,
        session: optional_u64(v, "session")?,
    })
}

/// Builds a `submit` request for `session` from the batch fields
/// (shared with the HTTP front-end, where the session id comes from the
/// request path and the body carries only the batch). `allow_deferred`
/// is false for HTTP, whose request/response pairing cannot leave a
/// request unanswered.
pub(crate) fn parse_submit(v: &Value, session: u64, allow_deferred: bool) -> Result<Request> {
    let deferred = match v.get("ack").and_then(Value::as_str) {
        None | Some("sync") => false,
        Some("deferred") => true,
        Some(other) => {
            return Err(ServiceError::InvalidRequest(format!(
                "unknown ack mode `{other}` (expected sync|deferred)"
            )))
        }
    };
    if deferred && !allow_deferred {
        return Err(ServiceError::InvalidRequest(
            "deferred acks are not available on this transport; \
             use the line protocol for pipelined submits"
                .into(),
        ));
    }
    let origin = optional_u64(v, "origin")?;
    let seq = optional_u64(v, "seq")?;
    if origin.is_some() != seq.is_some() {
        return Err(ServiceError::InvalidRequest(
            "forwarded submits must carry both `origin` and `seq`".into(),
        ));
    }
    Ok(Request::Submit {
        session,
        records: parse_records(v)?,
        pre_perturbed: optional_bool(v, "pre_perturbed", false)?,
        shard: match v.get("shard") {
            None | Some(Value::Null) => None,
            Some(s) => Some(s.as_usize().ok_or_else(|| {
                ServiceError::InvalidRequest("`shard` must be a non-negative integer".into())
            })?),
        },
        deferred,
        origin,
        seq,
    })
}

/// Builds a `reconstruct` request from wire-level method/clamp/partial
/// values (shared with the HTTP front-end, where they arrive as query
/// parameters).
pub(crate) fn parse_reconstruct(
    session: u64,
    method: Option<&str>,
    clamp: Option<bool>,
    allow_partial: bool,
) -> Result<Request> {
    Ok(Request::Reconstruct {
        session,
        method: match method {
            None => ReconstructionMethod::ClosedForm,
            Some(m) => ReconstructionMethod::from_wire(m)?,
        },
        clamp: clamp.unwrap_or(true),
        allow_partial,
    })
}

/// Fast-path decoder for the *canonical* compact submit line the
/// bundled clients emit:
///
/// ```text
/// {"op":"submit","session":N,"records":[[..],..],"pre_perturbed":B
///  (,"shard":N)(,"ack":"deferred"|"sync")}
/// ```
///
/// Decodes straight into a flat [`RecordBatch`] with zero `Value`
/// allocations — on the pipelined ingest path the general JSON parser's
/// per-record `Vec<Value>` tree is the dominant server-side cost.
/// Returns `None` on *any* deviation (whitespace, reordered keys,
/// unknown fields, non-integer cells), in which case the caller falls
/// back to the general parser; this is an encoding of the common case,
/// not a second grammar.
pub fn parse_submit_line_fast(line: &str) -> Option<Request> {
    let b = line.as_bytes();
    let mut p = 0usize;
    fn eat(b: &[u8], p: &mut usize, lit: &[u8]) -> bool {
        if b[*p..].starts_with(lit) {
            *p += lit.len();
            true
        } else {
            false
        }
    }
    fn int(b: &[u8], p: &mut usize) -> Option<u64> {
        let start = *p;
        let mut v: u64 = 0;
        while let Some(d @ b'0'..=b'9') = b.get(*p) {
            // 19+ digits could overflow; that is not a canonical line.
            if *p - start >= 18 {
                return None;
            }
            v = v * 10 + u64::from(d - b'0');
            *p += 1;
        }
        (*p > start).then_some(v)
    }
    if !eat(b, &mut p, br#"{"op":"submit","session":"#) {
        return None;
    }
    let session = int(b, &mut p)?;
    if !eat(b, &mut p, br#","records":["#) {
        return None;
    }
    let mut records = RecordBatch::new();
    if !eat(b, &mut p, b"]") {
        loop {
            if !eat(b, &mut p, b"[") {
                return None;
            }
            if !eat(b, &mut p, b"]") {
                loop {
                    let v = int(b, &mut p)?;
                    if v > u64::from(u32::MAX) {
                        return None;
                    }
                    records.push_cell(v as u32);
                    if eat(b, &mut p, b",") {
                        continue;
                    }
                    if eat(b, &mut p, b"]") {
                        break;
                    }
                    return None;
                }
            }
            records.end_record();
            if eat(b, &mut p, b",") {
                continue;
            }
            if eat(b, &mut p, b"]") {
                break;
            }
            return None;
        }
    }
    let pre_perturbed = if eat(b, &mut p, br#","pre_perturbed":true"#) {
        true
    } else if eat(b, &mut p, br#","pre_perturbed":false"#) {
        false
    } else {
        return None;
    };
    let shard = if eat(b, &mut p, br#","shard":"#) {
        let s = int(b, &mut p)?;
        if s > usize::MAX as u64 {
            return None;
        }
        Some(s as usize)
    } else {
        None
    };
    let deferred = if eat(b, &mut p, br#","ack":"deferred""#) {
        true
    } else {
        // An explicit `"ack":"sync"` is canonical too.
        eat(b, &mut p, br#","ack":"sync""#);
        false
    };
    // Forwarded federation batches append `,"origin":N,"seq":N` —
    // canonical for the inter-node forwarder, which pipelines through
    // this same fast path on the receiving peer.
    let (origin, seq) = if eat(b, &mut p, br#","origin":"#) {
        let origin = int(b, &mut p)?;
        if !eat(b, &mut p, br#","seq":"#) {
            return None;
        }
        (Some(origin), Some(int(b, &mut p)?))
    } else {
        (None, None)
    };
    if !eat(b, &mut p, b"}") || p != b.len() {
        return None;
    }
    Some(Request::Submit {
        session,
        records,
        pre_perturbed,
        shard,
        deferred,
        origin,
        seq,
    })
}

/// Whether a parsed request object is a deferred-ack submit. The
/// dispatcher checks this *before* full field validation so that a
/// semantically invalid deferred submit stays quiet (stashing its error
/// for `flush`) instead of emitting a response line the pipelining
/// client is not reading.
pub fn is_deferred_submit(v: &Value) -> bool {
    v.get("op").and_then(Value::as_str) == Some("submit")
        && v.get("ack").and_then(Value::as_str) == Some("deferred")
}

/// Builds a request from a parsed JSON object (the line protocol's
/// whole line; the HTTP front-end routes paths to the same helpers this
/// calls).
pub fn request_from_value(v: &Value) -> Result<Request> {
    let op = v
        .get("op")
        .and_then(Value::as_str)
        .ok_or_else(|| ServiceError::InvalidRequest("missing string field `op`".into()))?;
    match op {
        "ping" => Ok(Request::Ping),
        "create_session" => parse_create_session(v),
        "submit" => parse_submit(v, field_u64(v, "session")?, true),
        "flush" => Ok(Request::Flush),
        "reconstruct" => {
            let method = match v.get("method") {
                None | Some(Value::Null) => None,
                Some(m) => Some(m.as_str().ok_or_else(|| {
                    ServiceError::InvalidRequest("`method` must be a string".into())
                })?),
            };
            parse_reconstruct(
                field_u64(v, "session")?,
                method,
                Some(optional_bool(v, "clamp", true)?),
                optional_bool(v, "allow_partial", false)?,
            )
        }
        "stats" => Ok(Request::Stats {
            session: field_u64(v, "session")?,
            allow_partial: optional_bool(v, "allow_partial", false)?,
        }),
        "metrics" => Ok(Request::Metrics {
            session: optional_u64(v, "session")?,
        }),
        "list_sessions" => Ok(Request::ListSessions),
        "persist" => Ok(Request::Persist {
            session: optional_u64(v, "session")?,
        }),
        "close_session" => Ok(Request::CloseSession {
            session: field_u64(v, "session")?,
            local: optional_bool(v, "local", false)?,
        }),
        "cluster_status" => Ok(Request::ClusterStatus),
        "sync_session" => Ok(Request::SyncSession {
            session: field_u64(v, "session")?,
        }),
        "repl_status" => Ok(Request::ReplStatus {
            session: field_u64(v, "session")?,
            origin: field_u64(v, "origin")?,
        }),
        "hello" => {
            let name = require(v, "framing")?.as_str().ok_or_else(|| {
                ServiceError::InvalidRequest("field `framing` must be a string".into())
            })?;
            Ok(Request::Hello {
                framing: WireFraming::from_wire(name)?,
            })
        }
        "mine_rules" => parse_mine_rules(v, field_u64(v, "session")?),
        "classify" => Ok(Request::Classify {
            session: field_u64(v, "session")?,
            target: parse_attr_ref(v, "target")?,
        }),
        "job_status" => Ok(Request::JobStatus {
            job: field_u64(v, "job")?,
        }),
        "job_result" => Ok(Request::JobResult {
            job: field_u64(v, "job")?,
        }),
        "job_cancel" => Ok(Request::JobCancel {
            job: field_u64(v, "job")?,
        }),
        "list_jobs" => Ok(Request::ListJobs),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(ServiceError::InvalidRequest(format!(
            "unknown op `{other}`"
        ))),
    }
}

fn optional_f64_or(v: &Value, key: &str, default: f64) -> Result<f64> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(default),
        Some(n) => n
            .as_f64()
            .ok_or_else(|| ServiceError::InvalidRequest(format!("field `{key}` must be a number"))),
    }
}

/// Builds a `mine_rules` request from a spec object (the line
/// protocol's whole line, or an HTTP body — the session id is passed
/// in because HTTP carries it in the path).
pub(crate) fn parse_mine_rules(v: &Value, session: u64) -> Result<Request> {
    let algo = match v.get("algo") {
        None | Some(Value::Null) => MineAlgo::default(),
        Some(a) => MineAlgo::from_wire(a.as_str().ok_or_else(|| {
            ServiceError::InvalidRequest("field `algo` must be a string".into())
        })?)?,
    };
    let defaults = MineSpec::default();
    Ok(Request::MineRules {
        session,
        spec: MineSpec {
            algo,
            min_support: optional_f64_or(v, "min_support", defaults.min_support)?,
            min_confidence: optional_f64_or(v, "min_confidence", defaults.min_confidence)?,
            max_length: optional_u64(v, "max_length")?.unwrap_or(defaults.max_length as u64)
                as usize,
        },
    })
}

/// Parses a `target` (or similar) field naming a schema attribute by
/// index or name.
pub(crate) fn parse_attr_ref(v: &Value, key: &str) -> Result<AttrRef> {
    let t = require(v, key)?;
    if let Some(i) = t.as_u64() {
        Ok(AttrRef::Index(i as usize))
    } else if let Some(name) = t.as_str() {
        Ok(AttrRef::Name(name.to_owned()))
    } else {
        Err(ServiceError::InvalidRequest(format!(
            "field `{key}` must be an attribute index or name"
        )))
    }
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request> {
    request_from_value(&json::parse(line)?)
}

/// Writes `{"ok":true}` plus extra fields into a reusable buffer
/// (appended, not cleared).
pub fn write_ok_response(out: &mut String, extra: Vec<(&str, Value)>) {
    let mut pairs = vec![("ok", Value::Bool(true))];
    pairs.extend(extra);
    object(pairs).write_json(out);
}

/// `{"ok":true}` plus extra fields.
pub fn ok_response(extra: Vec<(&str, Value)>) -> String {
    let mut out = String::new();
    write_ok_response(&mut out, extra);
    out
}

/// `{"ok":false,"error":...}` for any service error. A
/// [`ServiceError::PartialBatch`] additionally carries `"accepted"` —
/// the number of records at the front of the failed batch that *were*
/// counted — so clients can retry just the remainder instead of
/// double-counting the prefix.
pub fn error_response(err: &ServiceError) -> String {
    let mut out = String::new();
    write_error_response(&mut out, err);
    out
}

/// [`error_response`] into a reusable buffer.
pub fn write_error_response(out: &mut String, err: &ServiceError) {
    let mut pairs = vec![("ok", false.into()), ("error", err.to_string().into())];
    if let ServiceError::PartialBatch { accepted, .. } = err {
        pairs.push(("accepted", (*accepted).into()));
    }
    object(pairs).write_json(out);
}

/// Coverage report attached to a degraded (partial) federated read:
/// which owner partitions the merged answer actually covers. Only
/// present when at least one owner was skipped — a fully covered
/// answer is not "degraded" even if `allow_partial` was set.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PartialCoverage {
    /// Owner nodes the session's ingest partitions across.
    pub owners_total: usize,
    /// Owners whose partitions the answer includes.
    pub owners_reachable: usize,
    /// The skipped owners, as `(node index, address)`.
    pub missing: Vec<(usize, String)>,
}

/// The `"degraded":true,"coverage":{...}` tail of a partial response.
fn degraded_pairs(coverage: &PartialCoverage) -> Vec<(&'static str, Value)> {
    vec![
        ("degraded", true.into()),
        (
            "coverage",
            object(vec![
                ("owners_total", coverage.owners_total.into()),
                ("owners_reachable", coverage.owners_reachable.into()),
                (
                    "missing",
                    Value::Array(
                        coverage
                            .missing
                            .iter()
                            .map(|(node, addr)| {
                                object(vec![
                                    ("node", (*node).into()),
                                    ("addr", addr.as_str().into()),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
    ]
}

/// Writes the response payload for a successful `reconstruct`.
pub fn write_reconstruction_response(out: &mut String, rec: &Reconstruction) {
    write_reconstruction_response_with(out, rec, None)
}

/// [`write_reconstruction_response`], optionally tagged as a degraded
/// partial answer (federation `allow_partial` with unreachable
/// owners).
pub fn write_reconstruction_response_with(
    out: &mut String,
    rec: &Reconstruction,
    coverage: Option<&PartialCoverage>,
) {
    let mut pairs = vec![
        ("n", rec.n.into()),
        ("method", rec.method.wire_name().into()),
        ("lu_cache_hit", rec.lu_cache_hit.into()),
        (
            "estimates",
            Value::Array(rec.estimates.iter().map(|&e| Value::Number(e)).collect()),
        ),
    ];
    if let Some(c) = coverage {
        pairs.extend(degraded_pairs(c));
    }
    write_ok_response(out, pairs)
}

/// Response payload for a successful `reconstruct`.
pub fn reconstruction_response(rec: &Reconstruction) -> String {
    let mut out = String::new();
    write_reconstruction_response(&mut out, rec);
    out
}

/// Writes the response payload for a successful `stats`.
pub fn write_stats_response(out: &mut String, stats: &SessionStats) {
    write_stats_response_with(out, stats, None)
}

/// [`write_stats_response`], optionally tagged as a degraded partial
/// answer.
pub fn write_stats_response_with(
    out: &mut String,
    stats: &SessionStats,
    coverage: Option<&PartialCoverage>,
) {
    let mut pairs = vec![
        ("total", stats.total.into()),
        (
            "per_shard",
            Value::Array(stats.per_shard.iter().map(|&c| c.into()).collect()),
        ),
    ];
    if let Some(c) = coverage {
        pairs.extend(degraded_pairs(c));
    }
    write_ok_response(out, pairs)
}

/// Response payload for a successful `stats`.
pub fn stats_response(stats: &SessionStats) -> String {
    let mut out = String::new();
    write_stats_response(&mut out, stats);
    out
}

/// Response payload for a successful `metrics`. `total` is the
/// all-time record count (across restarts); the report's own counters
/// cover this process's lifetime.
pub fn metrics_response(session: u64, total: u64, report: &MetricsReport) -> String {
    let mut out = String::new();
    write_metrics_response(&mut out, session, total, report);
    out
}

/// A power-of-two histogram summary as a wire object. The field names
/// say `us` for compatibility; for `ingest_batch_size` the unit is
/// records per batch.
fn histogram_value(summary: &LatencySummary) -> Value {
    object(vec![
        ("count", summary.count.into()),
        ("mean_us", summary.mean_us.into()),
        ("max_us", summary.max_us.into()),
        (
            "buckets",
            Value::Array(
                summary
                    .buckets
                    .iter()
                    .map(|&(le, c)| Value::Array(vec![le.into(), c.into()]))
                    .collect(),
            ),
        ),
    ])
}

/// [`metrics_response`] into a reusable buffer.
pub fn write_metrics_response(out: &mut String, session: u64, total: u64, report: &MetricsReport) {
    write_ok_response(
        out,
        vec![
            ("session", session.into()),
            ("total", total.into()),
            ("records_ingested", report.records_ingested.into()),
            ("batches", report.batches.into()),
            ("reconstructions", report.reconstructions.into()),
            ("uptime_secs", report.uptime_secs.into()),
            ("ingest_rate", report.ingest_rate.into()),
            ("query_latency", histogram_value(&report.query_latency)),
            (
                "ingest_batch_size",
                histogram_value(&report.ingest_batch_size),
            ),
            ("submit_latency", histogram_value(&report.submit_latency)),
        ],
    )
}

/// Writes the response payload for a `flush`: the cumulative accepted
/// watermark across the connection's deferred submits since the last
/// flush. With a stashed deferred error the response is `ok: false` and
/// carries the error, but `accepted`/`batches` are reported either way
/// — `accepted` is always a contiguous prefix of the submitted stream
/// (ingest stops at the first deferred failure), so it doubles as the
/// retry offset.
pub fn write_flush_response(
    out: &mut String,
    accepted: u64,
    batches: u64,
    error: Option<&ServiceError>,
) {
    let mut pairs = match error {
        None => vec![("ok", true.into())],
        Some(e) => vec![("ok", false.into()), ("error", e.to_string().into())],
    };
    pairs.push(("accepted", accepted.into()));
    pairs.push(("batches", batches.into()));
    object(pairs).write_json(out);
}

/// Writes the response payload for a session-less `metrics` request:
/// the server's per-transport counters, the reactor event-loop
/// counters (all zero when the server runs thread-per-connection),
/// and — on a federated server — the per-peer replication counters.
pub fn write_transport_metrics_response(
    out: &mut String,
    report: &TransportReport,
    federation: Option<&[crate::metrics::PeerReplReport]>,
) {
    let mut pairs = vec![
        (
            "transport",
            object(vec![
                ("tcp_connections", report.tcp_connections.into()),
                ("http_connections", report.http_connections.into()),
                ("binary_connections", report.binary_connections.into()),
                ("tcp_requests", report.tcp_requests.into()),
                ("http_requests", report.http_requests.into()),
                ("binary_requests", report.binary_requests.into()),
                ("deferred_batches", report.deferred_batches.into()),
                ("sheds", report.sheds.into()),
                ("accept_errors", report.accept_errors.into()),
                ("idle_reaped", report.idle_reaped.into()),
                ("jobs_submitted", report.jobs_submitted.into()),
                ("jobs_completed", report.jobs_completed.into()),
                ("jobs_failed", report.jobs_failed.into()),
                ("jobs_cancelled", report.jobs_cancelled.into()),
                ("jobs_shed", report.jobs_shed.into()),
            ]),
        ),
        (
            "reactor",
            object(vec![
                ("registered_fds", report.reactor_registered_fds.into()),
                ("wakeups", report.reactor_wakeups.into()),
                ("partial_reads", report.reactor_partial_reads.into()),
                ("partial_writes", report.reactor_partial_writes.into()),
            ]),
        ),
    ];
    if let Some(peers) = federation {
        pairs.push((
            "federation",
            object(vec![(
                "peers",
                Value::Array(
                    peers
                        .iter()
                        .map(|p| {
                            object(vec![
                                ("node", p.node.into()),
                                ("addr", p.addr.as_str().into()),
                                ("forwarded_batches", p.forwarded_batches.into()),
                                ("forwarded_records", p.forwarded_records.into()),
                                ("acked_records", p.acked_records.into()),
                                ("retries", p.retries.into()),
                                ("peer_down", p.peer_down.into()),
                                ("history_batches", p.history_batches.into()),
                                ("breaker_trips", p.breaker_trips.into()),
                                ("health", p.health.as_str().into()),
                            ])
                        })
                        .collect(),
                ),
            )]),
        ));
    }
    write_ok_response(out, pairs)
}

/// Response payload for a successful `list_sessions`: the bare id array
/// (stable since PR 1) plus a `detail` array of per-session summaries.
pub fn list_response(summaries: &[SessionSummary]) -> String {
    let mut out = String::new();
    write_list_response(&mut out, summaries);
    out
}

/// [`list_response`] into a reusable buffer.
pub fn write_list_response(out: &mut String, summaries: &[SessionSummary]) {
    write_ok_response(
        out,
        vec![
            (
                "sessions",
                Value::Array(summaries.iter().map(|s| s.id.into()).collect()),
            ),
            (
                "detail",
                Value::Array(
                    summaries
                        .iter()
                        .map(|s| {
                            object(vec![
                                ("session", s.id.into()),
                                ("domain_size", s.domain_size.into()),
                                ("shards", s.shards.into()),
                                ("gamma", s.gamma.into()),
                                ("total", s.total.into()),
                                ("reconstructions", s.reconstructions.into()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_ping_and_shutdown() {
        assert_eq!(parse_request(r#"{"op":"ping"}"#).unwrap(), Request::Ping);
        assert_eq!(
            parse_request(r#"{"op":"shutdown"}"#).unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn parses_hello_framing_negotiation() {
        assert_eq!(
            parse_request(r#"{"op":"hello","framing":"binary"}"#).unwrap(),
            Request::Hello {
                framing: WireFraming::Binary
            }
        );
        // "line" and its alias "json" both name the default framing.
        for name in ["line", "json"] {
            assert_eq!(
                parse_request(&format!(r#"{{"op":"hello","framing":"{name}"}}"#)).unwrap(),
                Request::Hello {
                    framing: WireFraming::Json
                }
            );
        }
        assert!(parse_request(r#"{"op":"hello"}"#).is_err());
        assert!(parse_request(r#"{"op":"hello","framing":"carrier-pigeon"}"#).is_err());
        assert_eq!(WireFraming::Binary.wire_name(), "binary");
        assert_eq!(WireFraming::Json.wire_name(), "line");
    }

    #[test]
    fn parses_create_session_with_gamma() {
        let req = parse_request(
            r#"{"op":"create_session","schema":[["age",8],["sex",2]],
               "mechanism":"det","gamma":19.0,"shards":4,"seed":7}"#,
        )
        .unwrap();
        assert_eq!(
            req,
            Request::CreateSession {
                schema: vec![("age".into(), 8), ("sex".into(), 2)],
                mechanism: Mechanism::Deterministic { gamma: 19.0 },
                shards: Some(4),
                seed: Some(7),
                session: None,
            }
        );
        // The federated replica form carries an explicit id.
        let req = parse_request(
            r#"{"op":"create_session","schema":[["a",3]],"gamma":19.0,"session":42}"#,
        )
        .unwrap();
        assert!(matches!(
            req,
            Request::CreateSession {
                session: Some(42),
                ..
            }
        ));
    }

    #[test]
    fn parses_create_session_with_privacy_requirement() {
        let req =
            parse_request(r#"{"op":"create_session","schema":[["a",3]],"rho1":0.05,"rho2":0.5}"#)
                .unwrap();
        match req {
            Request::CreateSession {
                mechanism: Mechanism::Deterministic { gamma },
                ..
            } => assert!((gamma - 19.0).abs() < 1e-9, "gamma {gamma}"),
            other => panic!("unexpected parse: {other:?}"),
        }
    }

    #[test]
    fn parses_randomized_mechanism_with_default_alpha() {
        let req = parse_request(
            r#"{"op":"create_session","schema":[["a",3]],"mechanism":"ran","gamma":19.0}"#,
        )
        .unwrap();
        match req {
            Request::CreateSession {
                mechanism:
                    Mechanism::Randomized {
                        gamma,
                        alpha_fraction,
                    },
                ..
            } => {
                assert_eq!(gamma, 19.0);
                assert_eq!(alpha_fraction, 0.5);
            }
            other => panic!("unexpected parse: {other:?}"),
        }
    }

    #[test]
    fn parses_submit_with_defaults() {
        let req = parse_request(r#"{"op":"submit","session":3,"records":[[0,1],[2,0]]}"#).unwrap();
        assert_eq!(
            req,
            Request::Submit {
                session: 3,
                records: RecordBatch::from_rows(&[vec![0, 1], vec![2, 0]]),
                pre_perturbed: false,
                shard: None,
                deferred: false,
                origin: None,
                seq: None,
            }
        );
    }

    #[test]
    fn parses_federation_ops_and_forwarded_submits() {
        let req =
            parse_request(r#"{"op":"submit","session":3,"records":[[0,1]],"origin":2,"seq":17}"#)
                .unwrap();
        assert!(matches!(
            req,
            Request::Submit {
                origin: Some(2),
                seq: Some(17),
                ..
            }
        ));
        // origin and seq travel together or not at all.
        assert!(
            parse_request(r#"{"op":"submit","session":3,"records":[[0]],"origin":2}"#).is_err()
        );
        assert!(parse_request(r#"{"op":"submit","session":3,"records":[[0]],"seq":5}"#).is_err());

        assert_eq!(
            parse_request(r#"{"op":"cluster_status"}"#).unwrap(),
            Request::ClusterStatus
        );
        assert_eq!(
            parse_request(r#"{"op":"sync_session","session":4}"#).unwrap(),
            Request::SyncSession { session: 4 }
        );
        assert_eq!(
            parse_request(r#"{"op":"repl_status","session":4,"origin":1}"#).unwrap(),
            Request::ReplStatus {
                session: 4,
                origin: 1
            }
        );
        assert!(parse_request(r#"{"op":"repl_status","session":4}"#).is_err());

        assert_eq!(
            parse_request(r#"{"op":"close_session","session":4,"local":true}"#).unwrap(),
            Request::CloseSession {
                session: 4,
                local: true
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"close_session","session":4}"#).unwrap(),
            Request::CloseSession {
                session: 4,
                local: false
            }
        );
    }

    #[test]
    fn job_ops_parse_with_defaults_and_overrides() {
        match parse_request(r#"{"op":"mine_rules","session":3}"#).unwrap() {
            Request::MineRules { session, spec } => {
                assert_eq!(session, 3);
                assert_eq!(spec, MineSpec::default());
            }
            other => panic!("unexpected parse: {other:?}"),
        }
        let full = r#"{"op":"mine_rules","session":3,"algo":"fpgrowth",
                       "min_support":0.1,"min_confidence":0.9,"max_length":2}"#;
        match parse_request(full).unwrap() {
            Request::MineRules { spec, .. } => {
                assert_eq!(spec.algo, MineAlgo::FpGrowth);
                assert_eq!(spec.min_support, 0.1);
                assert_eq!(spec.min_confidence, 0.9);
                assert_eq!(spec.max_length, 2);
            }
            other => panic!("unexpected parse: {other:?}"),
        }
        assert!(parse_request(r#"{"op":"mine_rules","session":3,"algo":"svd"}"#).is_err());
        assert!(parse_request(r#"{"op":"mine_rules"}"#).is_err());

        assert_eq!(
            parse_request(r#"{"op":"classify","session":3,"target":2}"#).unwrap(),
            Request::Classify {
                session: 3,
                target: AttrRef::Index(2)
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"classify","session":3,"target":"income"}"#).unwrap(),
            Request::Classify {
                session: 3,
                target: AttrRef::Name("income".into())
            }
        );
        assert!(parse_request(r#"{"op":"classify","session":3}"#).is_err());
        assert!(parse_request(r#"{"op":"classify","session":3,"target":true}"#).is_err());

        assert_eq!(
            parse_request(r#"{"op":"job_status","job":7}"#).unwrap(),
            Request::JobStatus { job: 7 }
        );
        assert_eq!(
            parse_request(r#"{"op":"job_result","job":7}"#).unwrap(),
            Request::JobResult { job: 7 }
        );
        assert_eq!(
            parse_request(r#"{"op":"job_cancel","job":7}"#).unwrap(),
            Request::JobCancel { job: 7 }
        );
        assert_eq!(
            parse_request(r#"{"op":"list_jobs"}"#).unwrap(),
            Request::ListJobs
        );
        assert!(parse_request(r#"{"op":"job_status"}"#).is_err());
    }

    #[test]
    fn transport_metrics_response_reports_job_counters() {
        let report = TransportReport {
            jobs_submitted: 4,
            jobs_completed: 2,
            jobs_cancelled: 1,
            jobs_shed: 1,
            ..TransportReport::default()
        };
        let mut out = String::new();
        write_transport_metrics_response(&mut out, &report, None);
        assert!(out.contains("\"jobs_submitted\":4"), "{out}");
        assert!(out.contains("\"jobs_completed\":2"), "{out}");
        assert!(out.contains("\"jobs_failed\":0"), "{out}");
        assert!(out.contains("\"jobs_cancelled\":1"), "{out}");
        assert!(out.contains("\"jobs_shed\":1"), "{out}");
    }

    #[test]
    fn parses_deferred_submits_and_flush() {
        let req =
            parse_request(r#"{"op":"submit","session":3,"records":[[0,1]],"ack":"deferred"}"#)
                .unwrap();
        assert!(matches!(req, Request::Submit { deferred: true, .. }));
        // "sync" is the explicit spelling of the default.
        let req =
            parse_request(r#"{"op":"submit","session":3,"records":[[0,1]],"ack":"sync"}"#).unwrap();
        assert!(matches!(
            req,
            Request::Submit {
                deferred: false,
                ..
            }
        ));
        assert!(
            parse_request(r#"{"op":"submit","session":3,"records":[[0,1]],"ack":"maybe"}"#)
                .is_err()
        );
        assert_eq!(parse_request(r#"{"op":"flush"}"#).unwrap(), Request::Flush);
    }

    #[test]
    fn fast_submit_decoder_agrees_with_the_general_parser() {
        // Every canonical line the bundled client can emit decodes to
        // exactly what the general parser produces.
        for line in [
            r#"{"op":"submit","session":3,"records":[[0,1],[2,0]],"pre_perturbed":false}"#,
            r#"{"op":"submit","session":3,"records":[[0,1]],"pre_perturbed":true}"#,
            r#"{"op":"submit","session":0,"records":[],"pre_perturbed":true}"#,
            r#"{"op":"submit","session":3,"records":[[7]],"pre_perturbed":true,"shard":2}"#,
            r#"{"op":"submit","session":3,"records":[[1,2,3]],"pre_perturbed":false,"ack":"deferred"}"#,
            r#"{"op":"submit","session":3,"records":[[1]],"pre_perturbed":false,"ack":"sync"}"#,
            r#"{"op":"submit","session":9,"records":[[4294967295]],"pre_perturbed":true,"shard":0,"ack":"deferred"}"#,
            r#"{"op":"submit","session":3,"records":[[0,1]],"pre_perturbed":true,"ack":"deferred","origin":2,"seq":9}"#,
            r#"{"op":"submit","session":3,"records":[[0,1]],"pre_perturbed":true,"origin":0,"seq":1}"#,
        ] {
            let fast = parse_submit_line_fast(line)
                .unwrap_or_else(|| panic!("fast path must accept {line}"));
            assert_eq!(fast, parse_request(line).unwrap(), "line: {line}");
        }
    }

    #[test]
    fn fast_submit_decoder_falls_back_on_any_deviation() {
        for line in [
            // Whitespace, key order, extra keys: all fall back.
            r#"{"op":"submit", "session":3,"records":[[0]],"pre_perturbed":true}"#,
            r#"{"op":"submit","records":[[0]],"session":3,"pre_perturbed":true}"#,
            r#"{"op":"submit","session":3,"records":[[0]],"pre_perturbed":true,"extra":1}"#,
            // Non-integers and overflow.
            r#"{"op":"submit","session":3,"records":[[1.5]],"pre_perturbed":true}"#,
            r#"{"op":"submit","session":3,"records":[[4294967296]],"pre_perturbed":true}"#,
            r#"{"op":"submit","session":3,"records":[[-1]],"pre_perturbed":true}"#,
            // Other ops and malformed tails.
            r#"{"op":"stats","session":3}"#,
            r#"{"op":"submit","session":3,"records":[[0]],"pre_perturbed":true,"ack":"maybe"}"#,
            r#"{"op":"submit","session":3,"records":[[0]]}"#,
        ] {
            assert!(
                parse_submit_line_fast(line).is_none(),
                "fast path must reject {line}"
            );
        }
    }

    #[test]
    fn record_batch_streaming_construction_matches_push() {
        let mut streamed = RecordBatch::new();
        streamed.push_cell(1);
        streamed.push_cell(2);
        streamed.end_record();
        streamed.end_record(); // empty record
        streamed.push_cell(7);
        streamed.end_record();
        assert_eq!(
            streamed,
            RecordBatch::from_rows(&[vec![1, 2], vec![], vec![7]])
        );
    }

    #[test]
    fn deferred_submit_detection_sees_through_invalid_bodies() {
        // A deferred submit with a bad record must still be *detected*
        // as deferred (so the dispatcher stays quiet and stashes the
        // error) even though full parsing fails.
        let v = crate::json::parse(r#"{"op":"submit","session":1,"records":"x","ack":"deferred"}"#)
            .unwrap();
        assert!(is_deferred_submit(&v));
        assert!(request_from_value(&v).is_err());
        let v = crate::json::parse(r#"{"op":"stats","session":1,"ack":"deferred"}"#).unwrap();
        assert!(!is_deferred_submit(&v));
    }

    #[test]
    fn flush_and_transport_responses_are_parseable() {
        let mut out = String::new();
        write_flush_response(&mut out, 128, 2, None);
        let v = crate::json::parse(&out).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("accepted").and_then(Value::as_u64), Some(128));
        assert_eq!(v.get("batches").and_then(Value::as_u64), Some(2));

        out.clear();
        let err = ServiceError::UnknownSession(9);
        write_flush_response(&mut out, 64, 3, Some(&err));
        let v = crate::json::parse(&out).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
        assert_eq!(v.get("accepted").and_then(Value::as_u64), Some(64));
        assert!(v
            .get("error")
            .and_then(Value::as_str)
            .unwrap()
            .contains("unknown session"));

        out.clear();
        let report = TransportReport {
            tcp_requests: 5,
            sheds: 1,
            ..TransportReport::default()
        };
        write_transport_metrics_response(&mut out, &report, None);
        let v = crate::json::parse(&out).unwrap();
        let t = v.get("transport").unwrap();
        assert_eq!(t.get("tcp_requests").and_then(Value::as_u64), Some(5));
        assert_eq!(t.get("sheds").and_then(Value::as_u64), Some(1));
        assert_eq!(t.get("http_requests").and_then(Value::as_u64), Some(0));
        // The reactor section rides along (zeros under
        // thread-per-connection).
        let r = v.get("reactor").unwrap();
        assert_eq!(r.get("registered_fds").and_then(Value::as_u64), Some(0));
        assert_eq!(r.get("wakeups").and_then(Value::as_u64), Some(0));
        // Non-federated servers omit the federation section entirely.
        assert!(v.get("federation").is_none());

        out.clear();
        let peer = crate::metrics::PeerReplReport {
            node: 1,
            addr: "127.0.0.1:7001".to_owned(),
            forwarded_batches: 4,
            forwarded_records: 40,
            acked_records: 40,
            retries: 2,
            peer_down: 1,
            history_batches: 3,
            breaker_trips: 1,
            health: crate::metrics::PeerHealth::Degraded,
        };
        write_transport_metrics_response(&mut out, &report, Some(std::slice::from_ref(&peer)));
        let v = crate::json::parse(&out).unwrap();
        let peers = v
            .get("federation")
            .and_then(|f| f.get("peers"))
            .and_then(Value::as_array)
            .unwrap();
        assert_eq!(peers.len(), 1);
        assert_eq!(peers[0].get("node").and_then(Value::as_u64), Some(1));
        assert_eq!(
            peers[0].get("forwarded_records").and_then(Value::as_u64),
            Some(40)
        );
        assert_eq!(peers[0].get("peer_down").and_then(Value::as_u64), Some(1));
        assert_eq!(
            peers[0].get("history_batches").and_then(Value::as_u64),
            Some(3)
        );
        assert_eq!(
            peers[0].get("breaker_trips").and_then(Value::as_u64),
            Some(1)
        );
        assert_eq!(
            peers[0].get("health").and_then(Value::as_str),
            Some("degraded")
        );
    }

    #[test]
    fn record_batch_flat_buffer_round_trips_rows() {
        let rows = vec![vec![0u32, 1], vec![2, 0, 5], vec![], vec![7]];
        let batch = RecordBatch::from_rows(&rows);
        assert_eq!(batch.len(), 4);
        assert!(!batch.is_empty());
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(batch.get(i), row.as_slice());
        }
        let collected: Vec<Vec<u32>> = batch.iter().map(<[u32]>::to_vec).collect();
        assert_eq!(collected, rows);
        assert!(RecordBatch::new().is_empty());
    }

    #[test]
    fn parses_reconstruct_defaults_to_clamped_closed_form() {
        let req = parse_request(r#"{"op":"reconstruct","session":1}"#).unwrap();
        assert_eq!(
            req,
            Request::Reconstruct {
                session: 1,
                method: ReconstructionMethod::ClosedForm,
                clamp: true,
                allow_partial: false,
            }
        );
    }

    #[test]
    fn parses_allow_partial_on_reconstruct_and_stats() {
        let req =
            parse_request(r#"{"op":"reconstruct","session":1,"allow_partial":true}"#).unwrap();
        assert!(matches!(
            req,
            Request::Reconstruct {
                allow_partial: true,
                ..
            }
        ));
        assert_eq!(
            parse_request(r#"{"op":"stats","session":1,"allow_partial":true}"#).unwrap(),
            Request::Stats {
                session: 1,
                allow_partial: true
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"stats","session":1}"#).unwrap(),
            Request::Stats {
                session: 1,
                allow_partial: false
            }
        );
        assert!(parse_request(r#"{"op":"stats","session":1,"allow_partial":3}"#).is_err());
    }

    #[test]
    fn degraded_responses_carry_coverage() {
        let coverage = PartialCoverage {
            owners_total: 2,
            owners_reachable: 1,
            missing: vec![(1, "127.0.0.1:7001".to_owned())],
        };
        let stats = SessionStats {
            total: 10,
            per_shard: vec![10],
        };
        let mut out = String::new();
        write_stats_response_with(&mut out, &stats, Some(&coverage));
        let v = crate::json::parse(&out).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("degraded").and_then(Value::as_bool), Some(true));
        let c = v.get("coverage").unwrap();
        assert_eq!(c.get("owners_total").and_then(Value::as_u64), Some(2));
        assert_eq!(c.get("owners_reachable").and_then(Value::as_u64), Some(1));
        let missing = c.get("missing").and_then(Value::as_array).unwrap();
        assert_eq!(missing[0].get("node").and_then(Value::as_u64), Some(1));
        assert_eq!(
            missing[0].get("addr").and_then(Value::as_str),
            Some("127.0.0.1:7001")
        );
        // A fully covered answer is never tagged.
        out.clear();
        write_stats_response_with(&mut out, &stats, None);
        let v = crate::json::parse(&out).unwrap();
        assert!(v.get("degraded").is_none());
        assert!(v.get("coverage").is_none());
    }

    #[test]
    fn parses_metrics_and_persist() {
        assert_eq!(
            parse_request(r#"{"op":"metrics","session":4}"#).unwrap(),
            Request::Metrics { session: Some(4) }
        );
        // A session-less metrics request asks for transport counters.
        assert_eq!(
            parse_request(r#"{"op":"metrics"}"#).unwrap(),
            Request::Metrics { session: None }
        );
        assert_eq!(
            parse_request(r#"{"op":"persist"}"#).unwrap(),
            Request::Persist { session: None }
        );
        assert_eq!(
            parse_request(r#"{"op":"persist","session":2}"#).unwrap(),
            Request::Persist { session: Some(2) }
        );
        assert!(parse_request(r#"{"op":"metrics","session":-1}"#).is_err());
        assert!(parse_request(r#"{"op":"persist","session":-1}"#).is_err());
    }

    #[test]
    fn partial_batch_errors_carry_accepted() {
        let err = ServiceError::PartialBatch {
            accepted: 3,
            source: Box::new(ServiceError::InvalidRequest("bad".into())),
        };
        let v = crate::json::parse(&error_response(&err)).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
        assert_eq!(v.get("accepted").and_then(Value::as_u64), Some(3));
        // Other errors do not claim an accepted count.
        let v = crate::json::parse(&error_response(&ServiceError::UnknownSession(1))).unwrap();
        assert!(v.get("accepted").is_none());
    }

    #[test]
    fn metrics_and_list_responses_are_parseable() {
        let report = crate::metrics::SessionMetrics::new().report();
        let v = crate::json::parse(&metrics_response(7, 42, &report)).unwrap();
        assert_eq!(v.get("session").and_then(Value::as_u64), Some(7));
        assert_eq!(v.get("total").and_then(Value::as_u64), Some(42));
        assert!(v.get("query_latency").is_some());

        let summaries = vec![SessionSummary {
            id: 7,
            domain_size: 6,
            shards: 2,
            gamma: 19.0,
            total: 42,
            reconstructions: 1,
        }];
        let v = crate::json::parse(&list_response(&summaries)).unwrap();
        assert_eq!(
            v.get("sessions").and_then(Value::as_array).unwrap()[0].as_u64(),
            Some(7)
        );
        let detail = v.get("detail").and_then(Value::as_array).unwrap();
        assert_eq!(
            detail[0].get("domain_size").and_then(Value::as_u64),
            Some(6)
        );
    }

    #[test]
    fn rejects_malformed_requests() {
        for bad in [
            "not json",
            r#"{"no_op":1}"#,
            r#"{"op":"warp"}"#,
            r#"{"op":"submit","records":[[0]]}"#,
            r#"{"op":"submit","session":1,"records":[[0,-1]]}"#,
            r#"{"op":"create_session","schema":[["a",0]]}"#,
            r#"{"op":"create_session","schema":[["a",3]],"mechanism":"qr","gamma":2}"#,
            r#"{"op":"create_session","schema":[["a",3]],"gamma":19,"shards":0}"#,
        ] {
            assert!(parse_request(bad).is_err(), "should reject {bad}");
        }
    }

    #[test]
    fn responses_are_parseable_json() {
        let ok = ok_response(vec![("session", 5u64.into())]);
        let v = crate::json::parse(&ok).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("session").and_then(Value::as_u64), Some(5));

        let err = error_response(&ServiceError::UnknownSession(9));
        let v = crate::json::parse(&err).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
        assert!(v
            .get("error")
            .and_then(Value::as_str)
            .unwrap()
            .contains("unknown session 9"));
    }
}
