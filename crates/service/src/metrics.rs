//! Per-session operational metrics.
//!
//! Every [`crate::session::CollectionSession`] owns a [`SessionMetrics`]
//! that the hot paths update with plain relaxed atomics — an ingest
//! batch costs two `fetch_add`s, a reconstruction one `fetch_add` plus a
//! histogram bucket increment — so metering never serializes the
//! lock-striped ingest path. The `metrics` protocol op snapshots the
//! counters into a [`MetricsReport`].
//!
//! Query latency is kept as a power-of-two histogram over microseconds
//! (bucket `k` counts latencies in `[2^(k-1), 2^k)` µs), which is exact
//! enough to separate the O(n) closed form from a cold LU factorization
//! while costing one atomic increment per observation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Number of histogram buckets. The last bucket (`>= 2^30` µs ≈ 18 min)
/// absorbs any overflow.
const LATENCY_BUCKETS: usize = 32;

/// A lock-free power-of-two latency histogram over microseconds.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }

    /// The bucket index for a latency of `us` microseconds: 0 for
    /// sub-microsecond, otherwise the bit width of `us` (so bucket `k`
    /// covers `[2^(k-1), 2^k)`), clamped into the last bucket.
    fn bucket_index(us: u64) -> usize {
        if us == 0 {
            0
        } else {
            ((64 - us.leading_zeros()) as usize).min(LATENCY_BUCKETS - 1)
        }
    }

    /// Records one observation.
    pub fn observe(&self, elapsed: Duration) {
        let us = elapsed.as_micros().min(u64::MAX as u128) as u64;
        self.buckets[Self::bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// A point-in-time copy of the histogram.
    pub fn snapshot(&self) -> LatencySummary {
        let count = self.count.load(Ordering::Relaxed);
        let sum_us = self.sum_us.load(Ordering::Relaxed);
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(k, c)| {
                let c = c.load(Ordering::Relaxed);
                // Bucket k covers [2^(k-1), 2^k) µs; report the
                // exclusive upper bound. Empty buckets are elided.
                (c > 0).then_some((1u64 << k, c))
            })
            .collect();
        LatencySummary {
            count,
            mean_us: if count > 0 {
                sum_us as f64 / count as f64
            } else {
                0.0
            },
            max_us: self.max_us.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A snapshot of a [`LatencyHistogram`].
#[derive(Debug, Clone, PartialEq)]
pub struct LatencySummary {
    /// Total observations.
    pub count: u64,
    /// Mean latency in microseconds.
    pub mean_us: f64,
    /// Largest observed latency in microseconds.
    pub max_us: u64,
    /// Non-empty `(upper_bound_us, count)` buckets, ascending; an
    /// observation lands in the first bucket whose bound exceeds it.
    pub buckets: Vec<(u64, u64)>,
}

/// Live counters for one collection session.
///
/// `records_ingested` / `batches` count work done by *this process*
/// since the session was created or recovered — the total across
/// restarts lives in the persisted counts and is reported by `stats`.
#[derive(Debug)]
pub struct SessionMetrics {
    started: Instant,
    records_ingested: AtomicU64,
    batches: AtomicU64,
    reconstructions: AtomicU64,
    query_latency: LatencyHistogram,
}

impl Default for SessionMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl SessionMetrics {
    /// Fresh counters, with the rate clock starting now.
    pub fn new() -> Self {
        SessionMetrics {
            started: Instant::now(),
            records_ingested: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            reconstructions: AtomicU64::new(0),
            query_latency: LatencyHistogram::new(),
        }
    }

    /// Counts `records` ingested records in one batch. Called with the
    /// *accepted* count, so a partially failed batch is metered by what
    /// actually landed.
    pub fn record_ingest(&self, records: u64) {
        self.records_ingested.fetch_add(records, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one reconstruction query and its latency.
    pub fn record_reconstruction(&self, elapsed: Duration) {
        self.reconstructions.fetch_add(1, Ordering::Relaxed);
        self.query_latency.observe(elapsed);
    }

    /// A point-in-time report of all counters.
    pub fn report(&self) -> MetricsReport {
        let uptime_secs = self.started.elapsed().as_secs_f64();
        let records_ingested = self.records_ingested.load(Ordering::Relaxed);
        MetricsReport {
            records_ingested,
            batches: self.batches.load(Ordering::Relaxed),
            reconstructions: self.reconstructions.load(Ordering::Relaxed),
            uptime_secs,
            ingest_rate: if uptime_secs > 0.0 {
                records_ingested as f64 / uptime_secs
            } else {
                0.0
            },
            query_latency: self.query_latency.snapshot(),
        }
    }
}

/// A snapshot of one session's [`SessionMetrics`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsReport {
    /// Records ingested by this process since create/recovery.
    pub records_ingested: u64,
    /// Ingest batches handled.
    pub batches: u64,
    /// Reconstruction queries answered.
    pub reconstructions: u64,
    /// Seconds since the session was created or recovered here.
    pub uptime_secs: f64,
    /// `records_ingested / uptime_secs`.
    pub ingest_rate: f64,
    /// Reconstruction-query latency distribution.
    pub query_latency: LatencySummary,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_power_of_two_log() {
        assert_eq!(LatencyHistogram::bucket_index(0), 0);
        assert_eq!(LatencyHistogram::bucket_index(1), 1);
        assert_eq!(LatencyHistogram::bucket_index(2), 2);
        assert_eq!(LatencyHistogram::bucket_index(3), 2);
        assert_eq!(LatencyHistogram::bucket_index(4), 3);
        assert_eq!(LatencyHistogram::bucket_index(1023), 10);
        assert_eq!(LatencyHistogram::bucket_index(1024), 11);
        assert_eq!(
            LatencyHistogram::bucket_index(u64::MAX),
            LATENCY_BUCKETS - 1
        );
    }

    #[test]
    fn histogram_tracks_count_mean_max_and_buckets() {
        let h = LatencyHistogram::new();
        h.observe(Duration::from_micros(3));
        h.observe(Duration::from_micros(5));
        h.observe(Duration::from_micros(100));
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.max_us, 100);
        assert!((s.mean_us - 36.0).abs() < 1e-9);
        // 3 µs → bucket (4, 1); 5 µs → (8, 1); 100 µs → (128, 1).
        assert_eq!(s.buckets, vec![(4, 1), (8, 1), (128, 1)]);
        assert_eq!(s.buckets.iter().map(|(_, c)| c).sum::<u64>(), s.count);
    }

    #[test]
    fn session_metrics_report_accumulates() {
        let m = SessionMetrics::new();
        m.record_ingest(100);
        m.record_ingest(50);
        m.record_reconstruction(Duration::from_micros(10));
        let r = m.report();
        assert_eq!(r.records_ingested, 150);
        assert_eq!(r.batches, 2);
        assert_eq!(r.reconstructions, 1);
        assert_eq!(r.query_latency.count, 1);
        assert!(r.uptime_secs >= 0.0);
        assert!(r.ingest_rate >= 0.0);
    }

    #[test]
    fn empty_metrics_report_is_all_zero() {
        let r = SessionMetrics::new().report();
        assert_eq!(r.records_ingested, 0);
        assert_eq!(r.reconstructions, 0);
        assert_eq!(r.query_latency.count, 0);
        assert_eq!(r.query_latency.mean_us, 0.0);
        assert!(r.query_latency.buckets.is_empty());
    }
}
